//! Durability: write-ahead logging and manifest recovery on real files.
//!
//! FloDB's benchmarks run WAL-less like the paper's setup, but the store
//! supports full durability: updates append to a commit log before being
//! acknowledged (§2.1), flushes and compactions record version edits in a
//! LevelDB-style MANIFEST, and `FloDb::open` reconstructs both the disk
//! layout and the lost memory component after a crash.
//!
//! Run with: `cargo run --release --example durability`

use std::sync::Arc;

use flodb::storage::{Env, FsEnv};
use flodb::{FloDb, FloDbOptions, KvStore, WalMode};

fn open(dir: &std::path::Path) -> FloDb {
    let mut opts = FloDbOptions::default_in_memory();
    opts.env = Arc::new(FsEnv::new(dir).expect("create store directory"));
    // `sync: true` fsyncs every batch — full durability, higher latency.
    opts.wal = WalMode::Enabled { sync: false };
    FloDb::open(opts).expect("open FloDB")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("flodb-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("store directory: {}", dir.display());

    // --- Generation 1: write, flush some, crash ----------------------------
    {
        let db = open(&dir);
        for i in 0..10_000u64 {
            db.put(format!("account:{i:06}").as_bytes(), &(i * 100).to_le_bytes()).expect("write acknowledged");
        }
        db.flush_all(); // Everything on disk; manifest records the layout.
        // A late burst that only reaches the WAL and memory component:
        for i in 0..100u64 {
            db.put(
                format!("account:{i:06}").as_bytes(),
                &(999_999u64).to_le_bytes(),
            )
            .expect("write acknowledged");
        }
        db.delete(b"account:000042").expect("write acknowledged");
        println!("generation 1: 10k accounts flushed, 100 updates + 1 delete unflushed");
        // Simulated crash: drop without flushing the tail.
    }

    // --- Generation 2: recover and verify ----------------------------------
    {
        let db = open(&dir);
        let updated = db.get(b"account:000007").expect("recovered");
        assert_eq!(u64::from_le_bytes(updated.try_into().unwrap()), 999_999);
        let old = db.get(b"account:005000").expect("recovered");
        assert_eq!(u64::from_le_bytes(old.try_into().unwrap()), 500_000);
        assert_eq!(db.get(b"account:000042"), None, "tombstone replayed");
        let survivors = db.scan(b"account:", b"account:~");
        assert_eq!(survivors.len(), 9_999);
        println!(
            "generation 2: recovered {} accounts; WAL tail and tombstone intact",
            survivors.len()
        );
        db.put(b"account:new", b"post-recovery write").expect("write acknowledged");
    }

    // --- Generation 3: recovery is idempotent across restarts --------------
    {
        let db = open(&dir);
        assert!(db.get(b"account:new").is_some());
        let files = db.disk_stats().files_per_level;
        println!("generation 3: files per level after two recoveries: {files:?}");
    }

    // Show what actually lives on disk.
    let env = FsEnv::new(&dir).unwrap();
    let mut names = env.list().unwrap();
    names.sort();
    let (logs, rest): (Vec<&String>, Vec<&String>) =
        names.iter().partition(|n| n.ends_with(".log"));
    let (manifests, tables): (Vec<&String>, Vec<&String>) =
        rest.into_iter().partition(|n| n.starts_with("MANIFEST"));
    println!(
        "\non-disk: {} sstables, {} manifest generation(s), {} live log(s)",
        tables.len(),
        manifests.len(),
        logs.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("done; store directory removed");
}
