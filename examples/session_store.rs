//! Session store: the skewed, write-intensive workload from the paper's
//! introduction ("maintaining session states in user-facing applications").
//!
//! A small fraction of sessions is hot — the paper evaluates "2% of the
//! dataset is accessed by 98% of operations" (§5.4). FloDB updates values
//! **in place**, so rewriting a hot session does not consume fresh memory;
//! the multi-versioned baselines append a new version per update and fill
//! their memory component with duplicates, forcing flush after flush
//! (Figure 16). This example runs the same session churn against FloDB and
//! the RocksDB baseline and compares how often each had to go to disk.
//!
//! Run with: `cargo run --release --example session_store`

use std::sync::Arc;
use std::time::Instant;

use flodb::baselines::{BaselineOptions, RocksDbStore};
use flodb::{FloDb, FloDbOptions, KvStore};

/// Total sessions tracked.
const SESSIONS: u64 = 50_000;
/// Fraction of sessions that are hot.
const HOT_FRACTION: f64 = 0.02;
/// Probability an update targets the hot set.
const HOT_PROBABILITY: f64 = 0.98;
/// Session updates to apply per worker.
const UPDATES_PER_WORKER: u64 = 100_000;
/// Concurrent application threads.
const WORKERS: u64 = 4;

/// A session record: user id, last-seen counter, opaque payload.
fn session_value(user: u64, hits: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(64);
    v.extend_from_slice(&user.to_be_bytes());
    v.extend_from_slice(&hits.to_be_bytes());
    v.resize(64, 0xAB);
    v
}

fn session_key(id: u64) -> [u8; 8] {
    // Scatter ids across the key space so Membuffer partitions (selected
    // by the key's top bits, §4.3) share the load.
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes()
}

/// Applies the skewed session churn and reports (seconds, flushes).
fn churn(store: Arc<dyn KvStore>, label: &str) -> (f64, u64) {
    let hot = ((SESSIONS as f64) * HOT_FRACTION) as u64;
    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            // Cheap xorshift so the example has no RNG dependency.
            let mut state = 0x243F_6A88_85A3_08D3u64 ^ (w + 1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..UPDATES_PER_WORKER {
                let r = next();
                let id = if (r % 1000) as f64 / 1000.0 < HOT_PROBABILITY {
                    r % hot // Hot set: first `hot` session ids.
                } else {
                    hot + r % (SESSIONS - hot)
                };
                store.put(&session_key(id), &session_value(id, i)).expect("write acknowledged");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    store.quiesce();
    let flushes = store.stats().persists;
    let total = UPDATES_PER_WORKER * WORKERS;
    println!(
        "{label:<22} {total} updates in {secs:5.2}s  ({:7.0} ops/s)  memtable flushes: {flushes}",
        total as f64 / secs
    );
    (secs, flushes)
}

fn main() {
    println!(
        "session churn: {SESSIONS} sessions, {:.0}% of updates hit {:.0}% of sessions, \
         {WORKERS} workers x {UPDATES_PER_WORKER} updates\n",
        HOT_PROBABILITY * 100.0,
        HOT_FRACTION * 100.0
    );

    // FloDB: in-place updates; the hot set stays resident in the memory
    // component and almost nothing reaches disk.
    let flodb = FloDb::open(FloDbOptions::default_in_memory()).expect("open FloDB");
    let (flodb_secs, flodb_flushes) = churn(Arc::new(flodb), "FloDB");

    // RocksDB baseline: multi-versioned memtable — every update appends a
    // fresh version, so the same churn keeps filling memory and flushing.
    let rocks = RocksDbStore::open(BaselineOptions::default_in_memory());
    let (rocks_secs, rocks_flushes) = churn(Arc::new(rocks), "RocksDB (baseline)");

    println!();
    if flodb_flushes < rocks_flushes {
        println!(
            "in-place updates avoided {}x the flushes of multi-versioning \
             ({flodb_flushes} vs {rocks_flushes})",
            if flodb_flushes == 0 {
                rocks_flushes
            } else {
                rocks_flushes / flodb_flushes.max(1)
            }
        );
    }
    println!(
        "throughput ratio FloDB / RocksDB-baseline: {:.1}x",
        rocks_secs / flodb_secs
    );
}
