//! Quickstart: open a FloDB store, write, read, scan, and inspect what the
//! two-tier memory component did behind the scenes.
//!
//! Run with: `cargo run --release --example quickstart`

use flodb::{FloDb, FloDbOptions, KvStore};

fn main() {
    // The paper's default shape — 128 MB memory component split 1/4
    // Membuffer (fast hash table) + 3/4 Memtable (sorted skiplist) — over
    // an in-memory simulated disk. Swap `opts.env` for `FsEnv` to store
    // real files.
    let opts = FloDbOptions::default_in_memory();
    let db = FloDb::open(opts).expect("open FloDB");

    // --- Point operations -------------------------------------------------
    db.put(b"city:paris", b"2161000").expect("write acknowledged");
    db.put(b"city:belgrade", b"1197000") // EuroSys '17 host city.
        .expect("write acknowledged");
    db.put(b"city:lausanne", b"140000").expect("write acknowledged");
    println!(
        "get city:belgrade -> {}",
        String::from_utf8_lossy(&db.get(b"city:belgrade").unwrap())
    );

    // Updates are IN PLACE (§3.2): rewriting a key does not consume new
    // memory-component space, which is what lets FloDB capture skewed
    // workloads entirely in memory (Figure 16).
    for population in [140001u64, 140002, 140003] {
        db.put(b"city:lausanne", population.to_string().as_bytes()).expect("write acknowledged");
    }
    println!(
        "get city:lausanne -> {} (after 3 in-place updates)",
        String::from_utf8_lossy(&db.get(b"city:lausanne").unwrap())
    );

    // Deletes insert a tombstone that shadows every older level.
    db.delete(b"city:paris").expect("write acknowledged");
    assert_eq!(db.get(b"city:paris"), None);
    println!("city:paris deleted");

    // --- Scans -------------------------------------------------------------
    // Scans are serializable (point-in-time): the master scan drains the
    // Membuffer into the sorted Memtable first, so even entries that only
    // ever lived in the hash table appear, in key order.
    for i in 0..10u32 {
        db.put(format!("sensor:{i:04}").as_bytes(), b"ok").expect("write acknowledged");
    }
    let readings = db.scan(b"sensor:", b"sensor:~");
    println!("scan sensor:* -> {} entries, sorted:", readings.len());
    for (key, value) in readings.iter().take(3) {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(key),
            String::from_utf8_lossy(value)
        );
    }

    // --- A burst of writes, then a look inside -----------------------------
    // 50k scattered keys: most complete in the Membuffer at hash-table
    // latency; background drain threads move them into the skiplist with
    // multi-inserts; the persist thread flushes full Memtables to disk.
    for i in 0..50_000u64 {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes();
        db.put(&key, &i.to_le_bytes()).expect("write acknowledged");
    }
    db.quiesce(); // Wait for drains / flushes / compactions to settle.

    let stats = db.stats();
    println!("\n--- flodb stats ---");
    println!("puts                 {}", stats.puts);
    println!(
        "membuffer fast-path  {} ({:.1}% of writes)",
        stats.fast_level_writes,
        100.0 * stats.fast_level_writes as f64 / (stats.puts + stats.deletes) as f64
    );
    println!("memtable persists    {}", stats.persists);
    println!("scan restarts        {}", stats.scan_restarts);
    println!("fallback scans       {}", stats.fallback_scans);

    let disk = db.disk_stats();
    println!("\n--- disk component ---");
    println!("flushes              {}", disk.flushes);
    println!("compactions          {}", disk.compactions);
    println!(
        "live sstables        {}",
        disk.files_per_level.iter().sum::<usize>()
    );
    println!("files per level      {:?}", disk.files_per_level);
}
