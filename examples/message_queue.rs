//! Message queue: the high-update-rate workload from the paper's
//! introduction ("message queues that undergo a high number of updates").
//!
//! Producers append messages under ordered keys `(topic, seqno)`;
//! consumers poll their topic with a range scan, process a batch, and
//! delete what they consumed. This exercises exactly the concurrency FloDB
//! was built for: writes complete in the Membuffer while serializable
//! scans proceed over the sorted Memtable and disk (§3.2), never blocking
//! one another.
//!
//! Run with: `cargo run --release --example message_queue`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb::{FloDb, FloDbOptions, KvStore};

const TOPICS: u64 = 4;
const PRODUCERS_PER_TOPIC: u64 = 2;
const RUN: Duration = Duration::from_secs(3);
/// Messages a consumer takes per poll.
const BATCH: usize = 100;

/// Queue keys sort by (topic, sequence-number): `q/<topic>/<seqno>`.
fn message_key(topic: u64, seqno: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(18);
    k.extend_from_slice(b"q/");
    k.extend_from_slice(&topic.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(&seqno.to_be_bytes());
    k
}

fn topic_range(topic: u64) -> (Vec<u8>, Vec<u8>) {
    (message_key(topic, 0), message_key(topic, u64::MAX))
}

fn main() {
    let mut opts = FloDbOptions::default_in_memory();
    // Exactly-once consumption needs every scan to see all completed
    // deletes. Default FloDB scans are serializable but may piggyback on a
    // slightly stale snapshot (§4.4) — fine for analytics, wrong for a
    // queue, where a stale view re-delivers a just-consumed message. The
    // paper's prescription: "if a more strict scan consistency is required
    // at the application-level... scan piggybacking can be disabled".
    opts.linearizable_scans = true;
    let db: Arc<FloDb> = Arc::new(FloDb::open(opts).expect("open FloDB"));
    let stop = Arc::new(AtomicBool::new(false));
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));

    // Per-topic monotonic sequence numbers shared by its producers.
    let cursors: Arc<Vec<AtomicU64>> =
        Arc::new((0..TOPICS).map(|_| AtomicU64::new(0)).collect());

    let mut handles = Vec::new();

    // --- Producers: high-rate appends, absorbed by the Membuffer ----------
    for topic in 0..TOPICS {
        for p in 0..PRODUCERS_PER_TOPIC {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let produced = Arc::clone(&produced);
            let cursors = Arc::clone(&cursors);
            handles.push(std::thread::spawn(move || {
                let mut body = [0u8; 128];
                while !stop.load(Ordering::Relaxed) {
                    let seqno = cursors[topic as usize].fetch_add(1, Ordering::Relaxed);
                    body[..8].copy_from_slice(&seqno.to_be_bytes());
                    body[8..16].copy_from_slice(&p.to_be_bytes());
                    db.put(&message_key(topic, seqno), &body).expect("write acknowledged");
                    produced.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
    }

    // --- Consumers: serializable range scans + batch deletes --------------
    for topic in 0..TOPICS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let consumed = Arc::clone(&consumed);
        handles.push(std::thread::spawn(move || {
            let (low, high) = topic_range(topic);
            let mut last_seen: Option<Vec<u8>> = None;
            while !stop.load(Ordering::Relaxed) {
                // The scan sees a consistent point-in-time snapshot: the
                // master scan drains pending Membuffer writes first, and a
                // concurrent in-place overwrite inside the range forces a
                // restart (Algorithm 3), so a batch is never half-old.
                let batch = db.scan(&low, &high);
                if batch.is_empty() {
                    std::thread::yield_now();
                    continue;
                }
                for (key, body) in batch.iter().take(BATCH) {
                    // "Process" the message: verify producer framing.
                    assert_eq!(&body[..8], &key[11..19], "seqno framing corrupt");
                    // FIFO check: keys must arrive in ascending order.
                    if let Some(prev) = &last_seen {
                        assert!(key > prev, "queue order violated");
                    }
                    last_seen = Some(key.clone());
                    db.delete(key).expect("write acknowledged");
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let start = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();

    let p = produced.load(Ordering::Relaxed);
    let c = consumed.load(Ordering::Relaxed);
    println!("topics {TOPICS}, producers {}, consumers {TOPICS}", TOPICS * PRODUCERS_PER_TOPIC);
    println!("produced {p} msgs ({:9.0}/s)", p as f64 / secs);
    println!("consumed {c} msgs ({:9.0}/s)", c as f64 / secs);

    let stats = db.stats();
    println!("\nscans {} | restarts {} | fallbacks {}", stats.scans, stats.scan_restarts, stats.fallback_scans);
    println!(
        "membuffer fast-path writes: {:.1}%",
        100.0 * stats.fast_level_writes as f64 / (stats.puts + stats.deletes) as f64
    );

    // Drain the backlog and verify every topic ends empty or with exactly
    // the unconsumed tail.
    db.quiesce();
    let mut backlog = 0;
    for topic in 0..TOPICS {
        let (low, high) = topic_range(topic);
        backlog += db.scan(&low, &high).len() as u64;
    }
    assert_eq!(p - c, backlog, "produced - consumed must equal backlog");
    println!("backlog verified: {backlog} messages awaiting consumers");
}
