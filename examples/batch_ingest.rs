//! Batch ingest: atomic multi-operation commits with [`WriteBatch`].
//!
//! A `WriteBatch` buffers puts and deletes and `KvStore::write` commits
//! them as one unit. On FloDB the whole batch is encoded into a single
//! group-commit submission, so it lands in **one** WAL frame and crash
//! recovery replays it all-or-nothing — a crash can never resurrect half
//! a transfer. The batch itself is plain data and reusable: fill, commit,
//! `clear()`, repeat, with no per-loop allocation for the op buffer.
//!
//! Run with: `cargo run --release --example batch_ingest`

use std::ops::ControlFlow;
use std::sync::Arc;

use flodb::storage::FsEnv;
use flodb::{Error, FloDb, FloDbOptions, KvStore, WalMode, WriteBatch};

fn open(dir: &std::path::Path) -> Result<FloDb, Error> {
    let mut opts = FloDbOptions::default_in_memory();
    opts.env = Arc::new(FsEnv::new(dir).expect("create store directory"));
    opts.wal = WalMode::Enabled { sync: false };
    Ok(FloDb::open(opts)?)
}

fn main() -> Result<(), Error> {
    let dir = std::env::temp_dir().join(format!("flodb-batch-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("store directory: {}", dir.display());

    // --- Generation 1: ingest in reusable batches, then crash ---------------
    {
        let db = open(&dir)?;
        // A ledger: every batch moves 1 unit from the treasury to one
        // account and bumps a row count — three ops that must land (and
        // recover) together or not at all.
        db.put(b"treasury", &1_000_000u64.to_le_bytes())?;
        let mut batch = WriteBatch::new();
        for i in 0..1_000u64 {
            batch.put(
                format!("account:{i:04}").as_bytes(),
                &1u64.to_le_bytes(),
            );
            batch.put(b"treasury", &(1_000_000 - (i + 1)).to_le_bytes());
            batch.put(b"rows", &(i + 1).to_le_bytes());
            db.write(&batch)?;
            batch.clear(); // Capacity retained; next loop reuses it.
        }
        println!("generation 1: 1000 transfer batches committed (3 ops each)");
        // Simulated crash: drop without flushing.
    }

    // --- Generation 2: recovery kept every batch whole ----------------------
    {
        let db = open(&dir)?;
        let rows = u64::from_le_bytes(
            db.get(b"rows").expect("rows recovered")[..8].try_into().unwrap(),
        );
        let treasury = u64::from_le_bytes(
            db.get(b"treasury").expect("treasury recovered")[..8]
                .try_into()
                .unwrap(),
        );
        // The invariant each batch maintains survives the crash: the
        // treasury decremented exactly once per recovered row.
        assert_eq!(treasury, 1_000_000 - rows, "batches recovered atomically");
        println!("generation 2: {rows} rows, treasury {treasury} — invariant holds");

        // Streaming scans: count a prefix without materializing the range,
        // stopping as soon as we have seen enough.
        let mut first_ten = Vec::new();
        db.scan_with(b"account:", b"account:~", &mut |key, _value| {
            first_ten.push(String::from_utf8_lossy(key).into_owned());
            if first_ten.len() == 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        println!("generation 2: first accounts by key: {:?} ...", &first_ten[..3]);
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("done; store directory removed");
    Ok(())
}
