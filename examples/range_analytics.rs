//! Range analytics: serializable scans running concurrently with a write
//! stream — the workload of the paper's Figures 13-14.
//!
//! Ingest threads append time-ordered samples (`metric/<series>/<tick>`)
//! while analytics threads continuously aggregate sliding windows with
//! range scans. FloDB lets both proceed in parallel: writes land in the
//! Membuffer, scans run over the Memtable and disk, and per-entry sequence
//! numbers catch any in-place update that would make a window
//! inconsistent (Algorithm 3 restarts the scan). Concurrent scans
//! piggyback on one master's drain, spreading its cost (§4.4).
//!
//! Run with: `cargo run --release --example range_analytics`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb::{FloDb, FloDbOptions, KvStore};

const SERIES: u64 = 8;
const INGEST_THREADS: u64 = 4;
const ANALYTICS_THREADS: u64 = 4;
const WINDOW: u64 = 256; // Ticks per aggregation window.
const RUN: Duration = Duration::from_secs(3);

fn sample_key(series: u64, tick: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(24);
    k.extend_from_slice(b"metric/");
    k.extend_from_slice(&series.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(&tick.to_be_bytes());
    k
}

fn main() {
    let db: Arc<FloDb> =
        Arc::new(FloDb::open(FloDbOptions::default_in_memory()).expect("open FloDB"));
    let stop = Arc::new(AtomicBool::new(false));
    let ticks: Arc<Vec<AtomicU64>> =
        Arc::new((0..SERIES).map(|_| AtomicU64::new(0)).collect());
    let windows_aggregated = Arc::new(AtomicU64::new(0));
    let points_read = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // --- Ingest: each thread feeds its share of the series ----------------
    for w in 0..INGEST_THREADS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let ticks = Arc::clone(&ticks);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let series = (w + n * INGEST_THREADS) % SERIES;
                let tick = ticks[series as usize].fetch_add(1, Ordering::Relaxed);
                // The value is the sample payload: f64 reading + tick echo.
                let reading = ((tick % 1000) as f64).to_bits();
                let mut v = [0u8; 16];
                v[..8].copy_from_slice(&reading.to_be_bytes());
                v[8..].copy_from_slice(&tick.to_be_bytes());
                db.put(&sample_key(series, tick), &v).expect("write acknowledged");
                n += 1;
            }
        }));
    }

    // --- Analytics: sliding-window aggregation via scans ------------------
    for a in 0..ANALYTICS_THREADS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let ticks = Arc::clone(&ticks);
        let windows_aggregated = Arc::clone(&windows_aggregated);
        let points_read = Arc::clone(&points_read);
        handles.push(std::thread::spawn(move || {
            let mut round = a;
            while !stop.load(Ordering::Relaxed) {
                let series = round % SERIES;
                round += 1;
                let head = ticks[series as usize].load(Ordering::Relaxed);
                if head < WINDOW {
                    std::thread::yield_now();
                    continue;
                }
                let lo_tick = head - WINDOW;
                let window = db.scan(
                    &sample_key(series, lo_tick),
                    &sample_key(series, head - 1),
                );
                // Scans are serializable, not linearizable: a piggybacking
                // scan may serve a snapshot from slightly before this
                // window's ticks landed (§4.4), in which case the window is
                // simply not visible yet — skip and retry. Whatever IS
                // visible must be a consistent prefix: gap-free ticks.
                if window.is_empty() {
                    std::thread::yield_now();
                    continue;
                }
                let mut sum = 0.0f64;
                let mut prev_tick: Option<u64> = None;
                for (_, v) in &window {
                    sum += f64::from_bits(u64::from_be_bytes(v[..8].try_into().unwrap()));
                    let tick = u64::from_be_bytes(v[8..].try_into().unwrap());
                    if let Some(p) = prev_tick {
                        assert_eq!(tick, p + 1, "window must be gap-free");
                    }
                    prev_tick = Some(tick);
                }
                std::hint::black_box(sum / window.len() as f64);
                windows_aggregated.fetch_add(1, Ordering::Relaxed);
                points_read.fetch_add(window.len() as u64, Ordering::Relaxed);
            }
        }));
    }

    let start = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();

    let ingested: u64 = ticks.iter().map(|t| t.load(Ordering::Relaxed)).sum();
    let windows = windows_aggregated.load(Ordering::Relaxed);
    let points = points_read.load(Ordering::Relaxed);
    println!("{SERIES} series, {INGEST_THREADS} ingest + {ANALYTICS_THREADS} analytics threads, {RUN:?}");
    println!("ingested   {ingested:>10} samples  ({:9.0}/s)", ingested as f64 / secs);
    println!("aggregated {windows:>10} windows  ({:9.0}/s)", windows as f64 / secs);
    println!(
        "key throughput (points read via scans): {:.2} Mkeys/s",
        points as f64 / secs / 1e6
    );

    let stats = db.stats();
    let flodb = db.flodb_stats();
    println!("\nmaster scans     {}", flodb.master_scans.load(Ordering::Relaxed));
    println!("piggyback scans  {}", flodb.piggyback_scans.load(Ordering::Relaxed));
    println!("scan restarts    {}", stats.scan_restarts);
    println!("fallback scans   {} (expected ~0, <1% in the paper)", stats.fallback_scans);
}
