//! Sharded ingest: one keyspace partitioned across N FloDB instances with
//! [`ShardedFloDb`].
//!
//! The router hashes every key to one of N shards, each a full FloDB
//! (own Membuffer, Memtable, WAL and background threads) in its own
//! `shard-NN/` directory. Point ops touch one shard; a `WriteBatch`
//! splits into per-shard sub-batches, each committed as one WAL frame in
//! its shard's log; scans fan out to all shards and merge in key order.
//! The shard count and hash seed are **sticky** — recorded in a
//! `SHARDING` file on first open, and a mismatched reopen is a typed
//! error rather than silently misrouted reads.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use std::ops::ControlFlow;
use std::sync::Arc;

use flodb::storage::FsEnv;
use flodb::{Error, KvStore, OpenError, ShardedFloDb, ShardedOptions, WriteBatch};
use flodb::{FloDbOptions, WalMode};

const SHARDS: u32 = 4;

fn options(dir: &std::path::Path, shards: u32) -> ShardedOptions {
    let mut base = FloDbOptions::default_in_memory();
    base.env = Arc::new(FsEnv::new(dir).expect("create store directory"));
    base.wal = WalMode::Enabled { sync: false };
    ShardedOptions::new(shards, base)
}

fn main() -> Result<(), Error> {
    let dir = std::env::temp_dir().join(format!("flodb-sharded-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("store directory: {} ({SHARDS} shards)", dir.display());

    // --- Generation 1: ingest through the router, then crash ----------------
    {
        let db = ShardedFloDb::open(options(&dir, SHARDS))?;
        // Point writes route by key hash; the caller never sees shards.
        for i in 0..10_000u64 {
            db.put(format!("event:{i:06}").as_bytes(), &i.to_le_bytes())?;
        }
        // A batch splits across shards: each shard's slice commits as one
        // frame in that shard's WAL, so recovery keeps every slice whole
        // (a crash may lose whole slices, never fractions of one).
        let mut batch = WriteBatch::new();
        for user in 0..100u64 {
            batch.put(format!("user:{user:04}").as_bytes(), b"active");
        }
        db.write(&batch)?;
        let per_shard = db.per_shard_stats();
        let spread: Vec<u64> = per_shard.iter().map(|s| s.puts).collect();
        println!("generation 1: 10100 puts spread across shards as {spread:?}");
        // Simulated crash: drop without flushing.
    }

    // --- Generation 2: every shard recovered; reads and scans fan out -------
    {
        let db = ShardedFloDb::open(options(&dir, SHARDS))?;
        assert_eq!(db.get(b"event:000000"), Some(0u64.to_le_bytes().to_vec()));
        assert_eq!(db.get(b"user:0042").as_deref(), Some(b"active".as_slice()));
        // The fan-out scan merges all shards back into one key order.
        let mut count = 0u64;
        let mut last = Vec::new();
        db.scan_with(b"event:", b"event:~", &mut |key, _value| {
            assert!(key > &last[..], "merged scan must be key-ordered");
            last = key.to_vec();
            count += 1;
            ControlFlow::Continue(())
        });
        println!("generation 2: scan merged {count} events in key order");
        assert_eq!(count, 10_000);
    }

    // --- The layout is sticky: a different shard count refuses to open ------
    match ShardedFloDb::open(options(&dir, SHARDS + 1)) {
        Err(OpenError::ShardMismatch { on_disk, requested }) => {
            println!(
                "reopen with {} shards refused: store was created with {}",
                requested.0, on_disk.0
            );
        }
        Ok(_) => unreachable!("mismatched layout must not open"),
        Err(e) => return Err(e.into()),
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("done; store directory removed");
    Ok(())
}
