//! Workload generation and measurement for the FloDB evaluation (§5).
//!
//! Reproduces the paper's experimental methodology:
//!
//! - **Key distributions** ([`keys`]): uniform random keys over a dataset,
//!   the hot-set skew of §5.4 ("2% of the dataset is accessed by 98% of
//!   operations"), and a YCSB-style zipfian.
//! - **Operation mixes** ([`mix`]): read-only, write-only (50% inserts /
//!   50% deletes), balanced mixed (50/25/25), one-writer-many-readers, and
//!   scan-write mixes with configurable scan ratio and range (§5.2).
//! - **The driver** ([`driver`]): N threads issuing operations drawn from
//!   the mix "continually", measuring operation and key throughput and
//!   (optionally) per-operation latency percentiles, LevelDB
//!   `db_bench`-style.
//! - **Database initialization** ([`init`]): random-order fill of half the
//!   dataset for mixed workloads, sequential fill for read-only (§5.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod histogram;
pub mod init;
pub mod keys;
pub mod mix;

pub use driver::{run_workload, RunReport, WorkloadConfig};
pub use init::build_flodb_store;
pub use histogram::Histogram;
pub use keys::KeyDistribution;
pub use mix::{OpKind, OperationMix};
