//! Operation mixes matching the paper's workloads (§5.2).

use rand::Rng;

/// The kind of one generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Put of a fresh value.
    Insert,
    /// Delete (tombstone).
    Delete,
    /// Range scan of the configured length.
    Scan,
}

/// A probability mix over operation kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationMix {
    /// P(read).
    pub read: f64,
    /// P(insert).
    pub insert: f64,
    /// P(delete).
    pub delete: f64,
    /// P(scan).
    pub scan: f64,
}

impl OperationMix {
    /// Read-only (Figure 10).
    pub fn read_only() -> Self {
        Self {
            read: 1.0,
            insert: 0.0,
            delete: 0.0,
            scan: 0.0,
        }
    }

    /// Write-only: 50% inserts, 50% deletes (Figure 9).
    pub fn write_only() -> Self {
        Self {
            read: 0.0,
            insert: 0.5,
            delete: 0.5,
            scan: 0.0,
        }
    }

    /// Balanced mixed: 50% reads, 25% inserts, 25% deletes (Figure 11).
    pub fn mixed_balanced() -> Self {
        Self {
            read: 0.5,
            insert: 0.25,
            delete: 0.25,
            scan: 0.0,
        }
    }

    /// Mixed 50% reads / 50% updates (Figure 16's skewed experiment).
    pub fn read_update() -> Self {
        Self {
            read: 0.5,
            insert: 0.5,
            delete: 0.0,
            scan: 0.0,
        }
    }

    /// Scan-write: `scan_ratio` scans, the rest updates (Figures 13-14;
    /// the paper's default is 5% scans / 95% updates).
    pub fn scan_write(scan_ratio: f64) -> Self {
        Self {
            read: 0.0,
            insert: 1.0 - scan_ratio,
            delete: 0.0,
            scan: scan_ratio,
        }
    }

    /// Validates that probabilities are sane and sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [self.read, self.insert, self.delete, self.scan];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("mix probabilities must be in [0,1]".into());
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("mix probabilities sum to {sum}, not 1"));
        }
        Ok(())
    }

    /// Draws an operation kind.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> OpKind {
        let x: f64 = rng.gen();
        if x < self.read {
            OpKind::Read
        } else if x < self.read + self.insert {
            OpKind::Insert
        } else if x < self.read + self.insert + self.delete {
            OpKind::Delete
        } else {
            OpKind::Scan
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn presets_are_valid() {
        for mix in [
            OperationMix::read_only(),
            OperationMix::write_only(),
            OperationMix::mixed_balanced(),
            OperationMix::read_update(),
            OperationMix::scan_write(0.05),
            OperationMix::scan_write(0.5),
        ] {
            mix.validate().unwrap();
        }
    }

    #[test]
    fn invalid_mixes_are_rejected() {
        let bad = OperationMix {
            read: 0.5,
            insert: 0.2,
            delete: 0.0,
            scan: 0.0,
        };
        assert!(bad.validate().is_err());
        let bad = OperationMix {
            read: -0.1,
            insert: 1.1,
            delete: 0.0,
            scan: 0.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let mix = OperationMix::mixed_balanced();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u64; 4];
        let n = 100_000;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                OpKind::Read => counts[0] += 1,
                OpKind::Insert => counts[1] += 1,
                OpKind::Delete => counts[2] += 1,
                OpKind::Scan => counts[3] += 1,
            }
        }
        let read_frac = counts[0] as f64 / n as f64;
        assert!((0.48..0.52).contains(&read_frac));
        assert_eq!(counts[3], 0);
    }

    #[test]
    fn scan_write_ratio() {
        let mix = OperationMix::scan_write(0.05);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let scans = (0..n)
            .filter(|_| mix.sample(&mut rng) == OpKind::Scan)
            .count();
        let frac = scans as f64 / n as f64;
        assert!((0.04..0.06).contains(&frac));
    }
}
