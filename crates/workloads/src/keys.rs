//! Key distributions over a dataset of `n` 8-byte keys.

use rand::Rng;

/// A distribution over the key space `0..n`, encoded as 8-byte big-endian
/// keys (the paper's key size, §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely (§5.2 default).
    Uniform {
        /// Dataset size in keys.
        n: u64,
    },
    /// Hot-set skew: `hot_ops` of operations target the first
    /// `hot_fraction` of the key space (§5.4 uses 0.98 / 0.02).
    HotSet {
        /// Dataset size in keys.
        n: u64,
        /// Fraction of the key space that is hot.
        hot_fraction: f64,
        /// Probability an operation targets the hot set.
        hot_ops: f64,
    },
    /// YCSB-style zipfian over `0..n` with skew `theta` (0.99 classic).
    Zipfian {
        /// Dataset size in keys.
        n: u64,
        /// Skew parameter in `(0, 1)`.
        theta: f64,
    },
}

impl KeyDistribution {
    /// The paper's skewed workload: 2% of keys get 98% of accesses.
    pub fn paper_skew(n: u64) -> Self {
        Self::HotSet {
            n,
            hot_fraction: 0.02,
            hot_ops: 0.98,
        }
    }

    /// Dataset size.
    pub fn n(&self) -> u64 {
        match self {
            Self::Uniform { n } | Self::HotSet { n, .. } | Self::Zipfian { n, .. } => *n,
        }
    }

    /// Draws a key index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match *self {
            Self::Uniform { n } => rng.gen_range(0..n),
            Self::HotSet {
                n,
                hot_fraction,
                hot_ops,
            } => {
                let hot_n = ((n as f64 * hot_fraction) as u64).max(1);
                if rng.gen_bool(hot_ops) {
                    // Hot keys are spread across the key space (stride) so
                    // they do not all share a Membuffer partition prefix;
                    // the partition-skew effect still shows at small
                    // Membuffer sizes because hot keys repeat heavily.
                    let i = rng.gen_range(0..hot_n);
                    (i * (n / hot_n)).min(n - 1)
                } else {
                    rng.gen_range(0..n)
                }
            }
            Self::Zipfian { n, theta } => zipfian_sample(rng, n, theta),
        }
    }

    /// Encodes a key index as an 8-byte big-endian key.
    #[inline]
    pub fn encode(index: u64) -> [u8; 8] {
        index.to_be_bytes()
    }
}

/// Approximate zipfian sampling (Gray et al., as used by YCSB), with the
/// zeta(n) constant approximated in closed form so billion-key spaces do
/// not require an O(n) precomputation.
fn zipfian_sample<R: Rng>(rng: &mut R, n: u64, theta: f64) -> u64 {
    debug_assert!((0.0..1.0).contains(&theta));
    let zetan = approx_zeta(n, theta);
    let zeta2 = 1.0 + 0.5f64.powf(theta);
    let alpha = 1.0 / (1.0 - theta);
    let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
    let u: f64 = rng.gen();
    let uz = u * zetan;
    if uz < 1.0 {
        return 0;
    }
    if uz < 1.0 + 0.5f64.powf(theta) {
        return 1;
    }
    ((n as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64).min(n - 1)
}

/// Closed-form approximation of the generalized harmonic number
/// `zeta(n, theta)` via the integral bound.
fn approx_zeta(n: u64, theta: f64) -> f64 {
    // zeta(n) ~= 1 + integral_1^n x^-theta dx = 1 + (n^(1-theta) - 1)/(1-theta)
    1.0 + ((n as f64).powf(1.0 - theta) - 1.0) / (1.0 - theta)
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn uniform_covers_space() {
        let d = KeyDistribution::Uniform { n: 100 };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 95);
    }

    #[test]
    fn hotset_concentrates_accesses() {
        let d = KeyDistribution::paper_skew(10_000);
        let mut rng = SmallRng::seed_from_u64(7);
        let hot_n = 200u64; // 2% of 10k.
        let stride = 10_000 / hot_n;
        let mut hot_hits = 0;
        let total = 100_000;
        for _ in 0..total {
            let k = d.sample(&mut rng);
            if k.is_multiple_of(stride) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / total as f64;
        assert!(frac > 0.9, "hot fraction {frac} too low");
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let d = KeyDistribution::Zipfian {
            n: 1000,
            theta: 0.99,
        };
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = d.sample(&mut rng);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Rank 0 must dominate the tail decisively.
        assert!(counts[0] > counts[500] * 10);
    }

    #[test]
    fn encoding_is_ordered() {
        assert!(KeyDistribution::encode(1) < KeyDistribution::encode(2));
        assert!(KeyDistribution::encode(255) < KeyDistribution::encode(256));
    }
}
