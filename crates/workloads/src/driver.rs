//! The multi-threaded measurement driver.
//!
//! "Each experiment consists of a number of threads concurrently
//! performing operations on the data store — searching, inserting or
//! deleting keys — continually. Each operation is chosen at random,
//! according to the given workload probability distribution, and performed
//! on a key drawn uniformly at random" (§5.2). Scans count toward key
//! throughput with their full range length, as in Golan-Gueta et al.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb_core::KvStore;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::histogram::Histogram;
use crate::keys::KeyDistribution;
use crate::mix::{OpKind, OperationMix};

/// Configuration of one measured run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of the run (ignored if `ops_per_thread` set).
    pub duration: Duration,
    /// Fixed operation count per thread instead of a timed run.
    pub ops_per_thread: Option<u64>,
    /// Operation mix.
    pub mix: OperationMix,
    /// Key distribution.
    pub keys: KeyDistribution,
    /// Value payload size (the paper uses 256 B).
    pub value_bytes: usize,
    /// Keys per scan (the paper's default scan range is 100 keys).
    pub scan_len: u64,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
    /// Record per-operation latency histograms.
    pub measure_latency: bool,
    /// Thread 0 writes, all others read (the Figure 12 workload),
    /// overriding `mix` per-thread.
    pub single_writer: bool,
    /// Shard count the store under test is built with; 1 = unsharded.
    /// Consumed by store construction ([`crate::init::build_flodb_store`])
    /// — the driver loop itself is store-agnostic and just records the
    /// knob so reports can label sharded runs.
    pub shards: u32,
}

impl WorkloadConfig {
    /// A short default run, to be customized per experiment.
    pub fn new(threads: usize, mix: OperationMix, keys: KeyDistribution) -> Self {
        Self {
            threads,
            duration: Duration::from_secs(2),
            ops_per_thread: None,
            mix,
            keys,
            value_bytes: 256,
            scan_len: 100,
            seed: 0xF10D_B,
            measure_latency: false,
            single_writer: false,
            shards: 1,
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time measured.
    pub elapsed: Duration,
    /// Total operations completed.
    pub total_ops: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes (inserts + deletes) completed.
    pub writes: u64,
    /// Scans completed.
    pub scans: u64,
    /// Keys touched (reads + writes + keys returned by scans).
    pub keys_accessed: u64,
    /// Writes the store rejected (`WriteError`). A worker that sees one
    /// stops — a store latched by poison or degradation rejects every
    /// later write, so spinning on it would only inflate the error count
    /// — and the run completes with whatever the healthy workers did. A
    /// benchmark must end with this at 0; the fault suites are the place
    /// where it is allowed to be nonzero.
    pub write_failures: u64,
    /// Read latency histogram (if measured).
    pub read_latency: Histogram,
    /// Write latency histogram (if measured).
    pub write_latency: Histogram,
    /// Scan latency histogram (if measured).
    pub scan_latency: Histogram,
}

impl RunReport {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }

    /// Keys accessed per second (the metric of Figures 13-14).
    pub fn keys_per_sec(&self) -> f64 {
        self.keys_accessed as f64 / self.elapsed.as_secs_f64()
    }
}

struct ThreadResult {
    ops: u64,
    reads: u64,
    writes: u64,
    scans: u64,
    keys_accessed: u64,
    write_failures: u64,
    read_latency: Histogram,
    write_latency: Histogram,
    scan_latency: Histogram,
}

/// Runs `cfg` against `store` and reports throughput.
pub fn run_workload(store: &Arc<dyn KvStore>, cfg: &WorkloadConfig) -> RunReport {
    cfg.mix.validate().expect("invalid operation mix");
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..cfg.threads {
        let store = Arc::clone(store);
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            worker(t, &*store, &cfg, &stop)
        }));
    }
    if cfg.ops_per_thread.is_none() {
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);
    }
    let mut report = RunReport {
        elapsed: Duration::ZERO,
        total_ops: 0,
        reads: 0,
        writes: 0,
        scans: 0,
        keys_accessed: 0,
        write_failures: 0,
        read_latency: Histogram::new(),
        write_latency: Histogram::new(),
        scan_latency: Histogram::new(),
    };
    for h in handles {
        let r = h.join().expect("worker panicked");
        report.total_ops += r.ops;
        report.reads += r.reads;
        report.writes += r.writes;
        report.scans += r.scans;
        report.keys_accessed += r.keys_accessed;
        report.write_failures += r.write_failures;
        report.read_latency.merge(&r.read_latency);
        report.write_latency.merge(&r.write_latency);
        report.scan_latency.merge(&r.scan_latency);
    }
    report.elapsed = start.elapsed();
    report
}

fn worker(
    thread_id: usize,
    store: &dyn KvStore,
    cfg: &WorkloadConfig,
    stop: &AtomicBool,
) -> ThreadResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed + thread_id as u64);
    let value = vec![0x5Au8; cfg.value_bytes];
    let n = cfg.keys.n();
    let mut result = ThreadResult {
        ops: 0,
        reads: 0,
        writes: 0,
        scans: 0,
        keys_accessed: 0,
        write_failures: 0,
        read_latency: Histogram::new(),
        write_latency: Histogram::new(),
        scan_latency: Histogram::new(),
    };
    let budget = cfg.ops_per_thread.unwrap_or(u64::MAX);
    while result.ops < budget {
        if cfg.ops_per_thread.is_none() && stop.load(Ordering::Acquire) {
            break;
        }
        let kind = if cfg.single_writer {
            if thread_id == 0 {
                OpKind::Insert
            } else {
                OpKind::Read
            }
        } else {
            cfg.mix.sample(&mut rng)
        };
        let key_idx = cfg.keys.sample(&mut rng);
        let key = KeyDistribution::encode(key_idx);
        let t0 = cfg.measure_latency.then(Instant::now);
        match kind {
            OpKind::Read => {
                let _ = store.get(&key);
                result.reads += 1;
                result.keys_accessed += 1;
                if let Some(t0) = t0 {
                    result.read_latency.record(t0.elapsed().as_nanos() as u64);
                }
            }
            OpKind::Insert => {
                // A rejected write means the store latched itself closed
                // (poison/degraded); stop this worker rather than panic
                // across the thread boundary — the report carries the
                // count (`RunReport::write_failures`).
                if store.put(&key, &value).is_err() {
                    result.write_failures += 1;
                    break;
                }
                result.writes += 1;
                result.keys_accessed += 1;
                if let Some(t0) = t0 {
                    result.write_latency.record(t0.elapsed().as_nanos() as u64);
                }
            }
            OpKind::Delete => {
                if store.delete(&key).is_err() {
                    result.write_failures += 1;
                    break;
                }
                result.writes += 1;
                result.keys_accessed += 1;
                if let Some(t0) = t0 {
                    result.write_latency.record(t0.elapsed().as_nanos() as u64);
                }
            }
            OpKind::Scan => {
                let low = key_idx.min(n.saturating_sub(cfg.scan_len));
                let high = (low + cfg.scan_len).min(n) - 1;
                // Stream the range: the driver only counts keys, so the
                // visitor form avoids materializing every hit.
                let mut returned = 0u64;
                store.scan_with(
                    &KeyDistribution::encode(low),
                    &KeyDistribution::encode(high),
                    &mut |_, _| {
                        returned += 1;
                        ControlFlow::Continue(())
                    },
                );
                result.scans += 1;
                result.keys_accessed += returned;
                if let Some(t0) = t0 {
                    result.scan_latency.record(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        result.ops += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Mutex;

    use flodb_core::WriteError;

    use super::*;

    /// An in-memory reference store for driver tests.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvStore for MapStore {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
            self.map
                .lock()
                .unwrap()
                .insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
            self.map.lock().unwrap().remove(key);
            Ok(())
        }
        fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
            self.map.lock().unwrap().get(key).cloned()
        }
        fn scan_with(
            &self,
            low: &[u8],
            high: &[u8],
            visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
        ) {
            let map = self.map.lock().unwrap();
            let mut out: Vec<(Vec<u8>, Vec<u8>)> = map
                .iter()
                .filter(|(k, _)| k.as_slice() >= low && k.as_slice() <= high)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            out.sort();
            for (key, value) in &out {
                if visitor(key, value).is_break() {
                    break;
                }
            }
        }
        fn name(&self) -> &'static str {
            "map"
        }
    }

    #[test]
    fn fixed_ops_run_completes_exactly() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let mut cfg = WorkloadConfig::new(
            2,
            OperationMix::mixed_balanced(),
            KeyDistribution::Uniform { n: 1000 },
        );
        cfg.ops_per_thread = Some(500);
        let report = run_workload(&store, &cfg);
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.reads + report.writes + report.scans, 1000);
        assert!(report.ops_per_sec() > 0.0);
    }

    #[test]
    fn timed_run_stops() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let mut cfg = WorkloadConfig::new(
            2,
            OperationMix::write_only(),
            KeyDistribution::Uniform { n: 100 },
        );
        cfg.duration = Duration::from_millis(100);
        let report = run_workload(&store, &cfg);
        assert!(report.total_ops > 0);
        assert!(report.elapsed < Duration::from_secs(5));
        assert_eq!(report.reads, 0);
    }

    /// A store whose write path latched closed: every put/delete is
    /// rejected, the shape of a poisoned or degraded FloDB.
    struct RejectingStore(MapStore);

    impl KvStore for RejectingStore {
        fn put(&self, _key: &[u8], _value: &[u8]) -> Result<(), WriteError> {
            Err(WriteError::Poisoned(Arc::new(
                flodb_storage::StorageError::Corruption("latched".into()),
            )))
        }
        fn delete(&self, _key: &[u8]) -> Result<(), WriteError> {
            Err(WriteError::Poisoned(Arc::new(
                flodb_storage::StorageError::Corruption("latched".into()),
            )))
        }
        fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
            self.0.get(key)
        }
        fn scan_with(
            &self,
            low: &[u8],
            high: &[u8],
            visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
        ) {
            self.0.scan_with(low, high, visitor)
        }
        fn name(&self) -> &'static str {
            "rejecting"
        }
    }

    #[test]
    fn rejected_writes_end_the_run_cleanly() {
        let store: Arc<dyn KvStore> = Arc::new(RejectingStore(MapStore::default()));
        let mut cfg = WorkloadConfig::new(
            2,
            OperationMix::write_only(),
            KeyDistribution::Uniform { n: 100 },
        );
        cfg.ops_per_thread = Some(1_000_000);
        // Must return (no panic propagated, no spin on the dead store),
        // with every worker's stop accounted for.
        let report = run_workload(&store, &cfg);
        assert_eq!(report.write_failures, 2);
        assert_eq!(report.writes, 0);
    }

    #[test]
    fn single_writer_mode_partitions_roles() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let mut cfg = WorkloadConfig::new(
            4,
            OperationMix::read_only(),
            KeyDistribution::Uniform { n: 100 },
        );
        cfg.ops_per_thread = Some(100);
        cfg.single_writer = true;
        let report = run_workload(&store, &cfg);
        assert_eq!(report.writes, 100, "exactly one writer thread");
        assert_eq!(report.reads, 300);
    }

    #[test]
    fn scans_count_keys_accessed() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        // Preload every key so scans return full ranges.
        for i in 0..200u64 {
            store.put(&i.to_be_bytes(), b"v").unwrap();
        }
        let mut cfg = WorkloadConfig::new(
            1,
            OperationMix::scan_write(1.0),
            KeyDistribution::Uniform { n: 200 },
        );
        cfg.ops_per_thread = Some(10);
        cfg.scan_len = 50;
        let report = run_workload(&store, &cfg);
        assert_eq!(report.scans, 10);
        assert!(
            report.keys_accessed >= 10 * 40,
            "scans must contribute their range: {}",
            report.keys_accessed
        );
    }

    #[test]
    fn latency_measurement_populates_histograms() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let mut cfg = WorkloadConfig::new(
            1,
            OperationMix::mixed_balanced(),
            KeyDistribution::Uniform { n: 100 },
        );
        cfg.ops_per_thread = Some(1000);
        cfg.measure_latency = true;
        let report = run_workload(&store, &cfg);
        assert!(report.read_latency.count() > 0);
        assert!(report.write_latency.count() > 0);
        assert!(report.read_latency.median_ns() > 0);
    }
}
