//! Database initialization, per §5.2.
//!
//! "For the mixed workloads, key-value tuples covering half of the dataset
//! are inserted in random order in the database. For the read-only
//! workload, the same data is inserted in sorted order" (so the on-disk
//! layout is optimal for all systems and the compaction algorithm's effect
//! is minimized).

use std::sync::Arc;

use flodb_core::{FloDbOptions, KvStore, OpenError, ShardedFloDb, ShardedOptions};

/// Builds the FloDB store a workload run targets: a plain
/// [`flodb_core::FloDb`] at `shards == 1`, a [`ShardedFloDb`] router
/// otherwise. This is how the harness's and bench matrix's `shards` knob
/// (see [`crate::WorkloadConfig::shards`]) turns into a store, so sharded
/// paths run under the exact same driver as unsharded ones.
///
/// # Errors
///
/// Whatever the underlying open reports ([`OpenError`]).
pub fn build_flodb_store(shards: u32, base: FloDbOptions) -> Result<Arc<dyn KvStore>, OpenError> {
    if shards <= 1 {
        Ok(Arc::new(flodb_core::FloDb::open(base)?))
    } else {
        Ok(Arc::new(ShardedFloDb::open(ShardedOptions::new(
            shards, base,
        ))?))
    }
}

/// A Feistel-free random permutation of `0..n` via a multiplicative hash:
/// visits every even-indexed key exactly once, in scattered order.
fn permuted(i: u64, n: u64) -> u64 {
    // Odd multiplier is invertible mod 2^64; fold into range by modulo.
    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i >> 3)) % n
}

/// Inserts half the dataset (`n / 2` distinct keys) in random order.
///
/// Returns the number of puts issued (may exceed distinct keys: the
/// permutation is not bijective after the modulo, so some keys repeat,
/// matching a realistic random-order load).
pub fn fill_random(store: &dyn KvStore, n: u64, value_bytes: usize) -> u64 {
    let value = vec![0xABu8; value_bytes];
    let target = n / 2;
    for i in 0..target {
        let key = permuted(i, n);
        store
            .put(&key.to_be_bytes(), &value)
            .expect("init write not acknowledged");
    }
    target
}

/// Inserts half the dataset in sorted key order (even keys), creating the
/// optimal on-disk structure for read-only experiments.
pub fn fill_sequential(store: &dyn KvStore, n: u64, value_bytes: usize) -> u64 {
    let value = vec![0xCDu8; value_bytes];
    let mut inserted = 0;
    let mut key = 0;
    while key < n {
        store
            .put(&key.to_be_bytes(), &value)
            .expect("init write not acknowledged");
        key += 2;
        inserted += 1;
    }
    inserted
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use std::ops::ControlFlow;

    use flodb_core::{KvStore, WriteError};

    use super::*;

    #[derive(Default)]
    struct RecordingStore {
        keys: Mutex<Vec<u64>>,
    }

    impl KvStore for RecordingStore {
        fn put(&self, key: &[u8], _value: &[u8]) -> Result<(), WriteError> {
            self.keys
                .lock()
                .unwrap()
                .push(u64::from_be_bytes(key.try_into().unwrap()));
            Ok(())
        }
        fn delete(&self, _: &[u8]) -> Result<(), WriteError> {
            Ok(())
        }
        fn get(&self, _: &[u8]) -> Option<Vec<u8>> {
            None
        }
        fn scan_with(
            &self,
            _: &[u8],
            _: &[u8],
            _: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
        ) {
        }
        fn name(&self) -> &'static str {
            "recording"
        }
    }

    #[test]
    fn sequential_fill_is_sorted() {
        let store = RecordingStore::default();
        let n = fill_sequential(&store, 100, 8);
        assert_eq!(n, 50);
        let keys = store.keys.lock().unwrap();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn random_fill_is_not_sorted_but_in_range() {
        let store = RecordingStore::default();
        let n = fill_random(&store, 1000, 8);
        assert_eq!(n, 500);
        let keys = store.keys.lock().unwrap();
        assert!(keys.iter().all(|&k| k < 1000));
        // A sorted outcome over 500 pseudo-random keys is implausible.
        assert!(keys.windows(2).any(|w| w[0] > w[1]));
    }
}
