//! Log-linear latency histograms (median / p99 reporting, Figures 3-4).
//!
//! The implementation moved into the engine
//! ([`flodb_core::telemetry::Histogram`]) so in-engine stage timers and
//! workload-side measurement share one bucket layout — merged, diffed and
//! summarized identically on both sides. This module re-exports it for
//! source compatibility; workload drivers keep recording per-thread and
//! merging at the end exactly as before.

pub use flodb_core::telemetry::Histogram;
