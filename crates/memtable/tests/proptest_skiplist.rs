//! Property-based tests: the skiplist must behave like a reference
//! `BTreeMap` that keeps, per key, the value with the largest sequence
//! number.

use std::collections::BTreeMap;

use flodb_memtable::{BatchEntry, SkipList};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u8, value: u8 },
    Delete { key: u8 },
    MultiInsert { pairs: Vec<(u8, u8)> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(key, value)| Op::Insert { key, value }),
        any::<u8>().prop_map(|key| Op::Delete { key }),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 1..8)
            .prop_map(|pairs| Op::MultiInsert { pairs }),
    ]
}

fn k(key: u8) -> Box<[u8]> {
    Box::new([key])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential operations on the skiplist match a model map.
    #[test]
    fn matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let list = SkipList::new();
        // Model: key -> (seq, Option<value>).
        let mut model: BTreeMap<u8, (u64, Option<u8>)> = BTreeMap::new();
        let mut seq = 0u64;

        for op in ops {
            match op {
                Op::Insert { key, value } => {
                    seq += 1;
                    list.insert(&k(key), Some(&[value]), seq);
                    model.insert(key, (seq, Some(value)));
                }
                Op::Delete { key } => {
                    seq += 1;
                    list.insert(&k(key), None, seq);
                    model.insert(key, (seq, None));
                }
                Op::MultiInsert { pairs } => {
                    let mut batch = Vec::new();
                    for (key, value) in pairs {
                        seq += 1;
                        batch.push(BatchEntry {
                            key: k(key),
                            value: Some(Box::from([value].as_slice())),
                            seq,
                        });
                        // The batch is applied with per-element seqs; the
                        // largest seq per key wins, matching sort order
                        // stability in the list.
                        let entry = model.entry(key).or_insert((0, None));
                        if seq >= entry.0 {
                            *entry = (seq, Some(value));
                        }
                    }
                    list.multi_insert(batch);
                }
            }
        }

        prop_assert_eq!(list.len(), model.len());
        for (key, (mseq, mval)) in &model {
            let got = list.get(&k(*key)).expect("model key must exist");
            prop_assert_eq!(got.seq, *mseq);
            let expected: Option<Box<[u8]>> = mval.map(|v| Box::from([v].as_slice()));
            prop_assert_eq!(got.value, expected);
        }
        // Iteration order must equal the model's sorted key order.
        let collected = list.collect_entries();
        let keys: Vec<u8> = collected.iter().map(|(key, _)| key[0]).collect();
        let model_keys: Vec<u8> = model.keys().copied().collect();
        prop_assert_eq!(keys, model_keys);
    }

    /// Iteration is always sorted and deduplicated, whatever the inserts.
    #[test]
    fn iteration_sorted_unique(keys in proptest::collection::vec(any::<u16>(), 1..300)) {
        let list = SkipList::new();
        for (i, key) in keys.iter().enumerate() {
            list.insert(&key.to_be_bytes(), Some(b"v"), i as u64 + 1);
        }
        let entries = list.collect_entries();
        for window in entries.windows(2) {
            prop_assert!(window[0].0 < window[1].0, "unsorted or duplicate keys");
        }
    }

    /// Multi-insert and a sequence of single inserts are observationally
    /// equivalent.
    #[test]
    fn multi_insert_equivalence(pairs in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60)) {
        let single = SkipList::new();
        let multi = SkipList::new();
        let mut batch = Vec::new();
        for (i, (key, value)) in pairs.iter().enumerate() {
            let seq = i as u64 + 1;
            single.insert(&k(*key), Some(&[*value]), seq);
            batch.push(BatchEntry { key: k(*key), value: Some(Box::from([*value].as_slice())), seq });
        }
        multi.multi_insert(batch);
        prop_assert_eq!(single.len(), multi.len());
        prop_assert_eq!(single.collect_entries(), multi.collect_entries());
    }
}
