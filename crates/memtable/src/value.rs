//! Versioned values: a (sequence number, value-or-tombstone) pair stored
//! behind a single atomic pointer.

/// A value together with the sequence number it was written at.
///
/// The paper's Algorithm 3 detects scan/update races by comparing an entry's
/// sequence number against the scan's snapshot. Storing the pair in one
/// heap allocation and swapping a single pointer makes the (value, seq)
/// update atomic: a concurrent reader either sees the old pair or the new
/// pair, never a mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// Global sequence number assigned when this value was written.
    pub seq: u64,
    /// The payload; `None` is a delete tombstone.
    pub value: Option<Box<[u8]>>,
}

impl VersionedValue {
    /// Creates a put value.
    pub fn put(seq: u64, value: impl Into<Box<[u8]>>) -> Self {
        Self {
            seq,
            value: Some(value.into()),
        }
    }

    /// Creates a delete tombstone.
    pub fn tombstone(seq: u64) -> Self {
        Self { seq, value: None }
    }

    /// Returns whether this is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Returns the payload length in bytes (0 for tombstones).
    pub fn payload_len(&self) -> usize {
        self.value.as_deref().map_or(0, <[u8]>::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_tombstone() {
        let v = VersionedValue::put(3, vec![1u8, 2]);
        assert!(!v.is_tombstone());
        assert_eq!(v.payload_len(), 2);
        assert_eq!(v.seq, 3);

        let t = VersionedValue::tombstone(4);
        assert!(t.is_tombstone());
        assert_eq!(t.payload_len(), 0);
    }
}
