//! Ordered iteration over the skiplist (used by scans and by persisting).

use flodb_sync::shim::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Guard, Shared};

use crate::skiplist::{Node, SkipList};
use crate::value::VersionedValue;

/// A forward iterator over a [`SkipList`], in key order.
///
/// The iterator is a LevelDB-style cursor: position it with
/// [`SkipListIter::seek`] or [`SkipListIter::seek_to_first`], then read
/// `key`/`value` while [`SkipListIter::valid`] and advance with
/// [`SkipListIter::next`]. Because FloDB never removes skiplist nodes, the
/// cursor remains valid across arbitrary concurrent inserts and in-place
/// updates: it always observes a key subset that is sound for the scan
/// algorithm (fresh concurrent inserts may or may not be seen, and their
/// sequence numbers tell the scanner whether a restart is needed).
///
/// The iterator owns an epoch pin for its whole lifetime, which is what
/// keeps concurrently replaced values alive until [`SkipListIter::value`]
/// has cloned them. The flip side is that a live iterator stalls epoch
/// advancement, delaying (never preventing) reclamation of everything
/// retired after it was created — drop iterators promptly.
///
/// # Examples
///
/// ```
/// use flodb_memtable::SkipList;
///
/// let list = SkipList::new();
/// list.insert(b"a", Some(b"1"), 1);
/// list.insert(b"c", Some(b"3"), 2);
///
/// let mut iter = list.iter();
/// iter.seek(b"b");
/// assert!(iter.valid());
/// assert_eq!(iter.key(), b"c");
/// ```
pub struct SkipListIter<'a> {
    list: &'a SkipList,
    /// Owned pin: value loads must be epoch-protected because in-place
    /// updates retire old values.
    guard: Guard,
    /// Current node; null when exhausted or unpositioned.
    current: *const Node,
}

impl<'a> SkipListIter<'a> {
    pub(crate) fn new(list: &'a SkipList) -> Self {
        Self {
            list,
            guard: epoch::pin(),
            current: std::ptr::null(),
        }
    }

    /// Returns whether the cursor is positioned on an entry.
    pub fn valid(&self) -> bool {
        !self.current.is_null()
    }

    /// Positions the cursor on the first entry.
    pub fn seek_to_first(&mut self) {
        // SAFETY: The head node is valid for the list's lifetime, and level
        // 0 pointers always reference live nodes.
        self.current = unsafe {
            (*self.list.head_raw()).tower[0]
                .load(Ordering::Acquire, &self.guard)
                .as_raw()
        };
    }

    /// Positions the cursor on the first entry with `key >= target`.
    pub fn seek(&mut self, target: &[u8]) {
        let head = self.list.head_raw();
        // SAFETY: Head and all reachable nodes are live for the list's
        // lifetime (no removal).
        unsafe {
            let mut pred = head;
            for level in (0..crate::skiplist::MAX_HEIGHT).rev() {
                let mut curr: Shared<'_, Node> =
                    (*pred).tower[level].load(Ordering::Acquire, &self.guard);
                while let Some(c) = curr.as_ref() {
                    if c.key.as_ref() < target {
                        pred = curr.as_raw();
                        curr = c.tower[level].load(Ordering::Acquire, &self.guard);
                    } else {
                        break;
                    }
                }
                if level == 0 {
                    self.current = curr.as_raw();
                }
            }
        }
    }

    /// Advances to the next entry in key order.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        // SAFETY: `current` is a live node (no removal while list alive).
        self.current = unsafe {
            (*self.current).tower[0]
                .load(Ordering::Acquire, &self.guard)
                .as_raw()
        };
    }

    /// Returns the current key.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn key(&self) -> &[u8] {
        assert!(self.valid(), "key() on invalid iterator");
        // SAFETY: `current` is a live node.
        unsafe { (*self.current).key.as_ref() }
    }

    /// Returns a snapshot of the current entry's versioned value.
    ///
    /// The (value, seq) pair is read through a single atomic pointer, so it
    /// is internally consistent even under concurrent in-place updates.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn value(&self) -> VersionedValue {
        assert!(self.valid(), "value() on invalid iterator");
        // SAFETY: `current` is a live node; its value pointer is non-null
        // for published nodes and protected by `self.guard`.
        unsafe {
            let v = (*self.current).value.load(Ordering::Acquire, &self.guard);
            v.deref().clone()
        }
    }
}

impl SkipList {
    /// Creates an iterator over this list.
    pub fn iter(&self) -> SkipListIter<'_> {
        SkipListIter::new(self)
    }

    /// Collects all live entries `(key, value)` in order, skipping nothing.
    ///
    /// Tombstones are included (`value == None`): the disk component needs
    /// them to shadow older on-disk versions.
    pub fn collect_entries(&self) -> Vec<(Box<[u8]>, VersionedValue)> {
        let mut out = Vec::with_capacity(self.len());
        let mut it = self.iter();
        it.seek_to_first();
        while it.valid() {
            out.push((Box::from(it.key()), it.value()));
            it.next();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Box<[u8]> {
        Box::new(n.to_be_bytes())
    }

    #[test]
    fn iterate_in_order() {
        let l = SkipList::new();
        for key in [5u64, 1, 9, 3, 7] {
            l.insert(&k(key), Some(&key.to_be_bytes()), key);
        }
        let mut it = l.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push(u64::from_be_bytes(it.key().try_into().unwrap()));
            it.next();
        }
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn seek_finds_lower_bound() {
        let l = SkipList::new();
        for key in [10u64, 20, 30] {
            l.insert(&k(key), Some(b"v"), key);
        }
        let mut it = l.iter();
        it.seek(&k(15));
        assert!(it.valid());
        assert_eq!(it.key(), k(20).as_ref());

        it.seek(&k(20));
        assert_eq!(it.key(), k(20).as_ref());

        it.seek(&k(31));
        assert!(!it.valid());
    }

    #[test]
    fn empty_iteration() {
        let l = SkipList::new();
        let mut it = l.iter();
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(b"x");
        assert!(!it.valid());
    }

    #[test]
    fn value_snapshot_is_consistent() {
        let l = SkipList::new();
        l.insert(&k(1), Some(b"a"), 7);
        let mut it = l.iter();
        it.seek_to_first();
        let v = it.value();
        assert_eq!(v.seq, 7);
        assert_eq!(v.value.as_deref(), Some(&b"a"[..]));
    }

    #[test]
    fn collect_entries_includes_tombstones() {
        let l = SkipList::new();
        l.insert(&k(1), Some(b"a"), 1);
        l.insert(&k(2), None, 2);
        let entries = l.collect_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[1].1.is_tombstone());
    }

    #[test]
    fn iterator_survives_concurrent_inserts() {
        use std::sync::Arc;
        let l = Arc::new(SkipList::new());
        for key in (0..1000u64).step_by(2) {
            l.insert(&k(key), Some(b"v"), key + 1);
        }
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                for key in (1..1000u64).step_by(2) {
                    l.insert(&k(key), Some(b"w"), 2000 + key);
                }
            })
        };
        // Iterate while the writer inserts odd keys: order must hold and
        // every even key must be seen.
        let mut it = l.iter();
        it.seek_to_first();
        let mut prev: Option<u64> = None;
        let mut evens = 0;
        while it.valid() {
            let cur = u64::from_be_bytes(it.key().try_into().unwrap());
            if let Some(p) = prev {
                assert!(cur > p, "iterator went backwards: {p} -> {cur}");
            }
            if cur % 2 == 0 {
                evens += 1;
            }
            prev = Some(cur);
            it.next();
        }
        assert_eq!(evens, 500, "a pre-existing key was skipped");
        writer.join().unwrap();
    }
}
