//! The concurrent lock-free skiplist with multi-insert (Algorithm 1).
//!
//! The structure follows the lock-free skiplist of Herlihy & Shavit [29]
//! as simplified by FloDB's "no concurrent removal" guarantee: towers are
//! linked bottom-up with CAS, searches are wait-free, and no node is ever
//! unlinked while the list is alive.
//!
//! # Memory reclamation
//!
//! Two object classes have different lifetimes here:
//!
//! - **Nodes** are never unlinked, so they live exactly as long as the
//!   list and are freed wholesale in `Drop` (which in FloDB happens after
//!   the immutable Memtable is persisted and its last scan snapshot is
//!   released).
//! - **Values** ([`VersionedValue`]) are replaced in place by concurrent
//!   updates. The displaced value is retired through
//!   `Guard::defer_destroy` *after* the successful CAS that unlinked it,
//!   under the updater's pin, and the epoch collector frees it only once
//!   every thread pinned at retire time has unpinned. Correspondingly,
//!   every read of a node's value pointer (`get`, the iterator, the drain
//!   path) happens under a pin and dereferences only while that guard is
//!   alive — see `ARCHITECTURE.md` for the full invariant list.

use flodb_sync::shim::atomic::{AtomicIsize, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use crate::height::random_height;
use crate::value::VersionedValue;

/// Maximum tower height; with branching factor 4 this comfortably indexes
/// billions of entries.
pub const MAX_HEIGHT: usize = 16;

/// Approximate fixed per-node overhead used for memory accounting
/// (allocation headers, tower pointers, key/value boxes).
const NODE_OVERHEAD: usize = 64;

/// One element of a multi-insert batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// The key.
    pub key: Box<[u8]>,
    /// `Some(payload)` for a put, `None` for a delete tombstone.
    pub value: Option<Box<[u8]>>,
    /// Global sequence number assigned by the drainer.
    pub seq: u64,
}

pub(crate) struct Node {
    pub(crate) key: Box<[u8]>,
    pub(crate) value: Atomic<VersionedValue>,
    pub(crate) height: usize,
    pub(crate) tower: Box<[Atomic<Node>]>,
}

impl Node {
    fn new(key: Box<[u8]>, value: Owned<VersionedValue>, height: usize) -> Owned<Self> {
        let tower = (0..height).map(|_| Atomic::null()).collect();
        Owned::new(Self {
            key,
            value: Atomic::from(value),
            height,
            tower,
        })
    }

    fn head() -> Owned<Self> {
        let tower = (0..MAX_HEIGHT).map(|_| Atomic::null()).collect();
        Owned::new(Self {
            key: Box::new([]),
            value: Atomic::null(),
            height: MAX_HEIGHT,
            tower,
        })
    }
}

/// A concurrent, lock-free, insert-only skiplist keyed by byte strings.
///
/// Supports concurrent [`SkipList::insert`], [`SkipList::multi_insert`],
/// [`SkipList::get`] and iteration. Re-inserting an existing key replaces
/// its [`VersionedValue`] in place, keeping whichever value carries the
/// larger sequence number, so the structure holds exactly one version per
/// key (FloDB's in-place update semantics, §3.2).
///
/// # Examples
///
/// ```
/// use flodb_memtable::SkipList;
///
/// let list = SkipList::new();
/// list.insert(b"b", Some(b"2"), 1);
/// list.insert(b"a", Some(b"1"), 2);
/// assert_eq!(list.get(b"a").unwrap().value.as_deref(), Some(&b"1"[..]));
/// assert_eq!(list.len(), 2);
/// ```
pub struct SkipList {
    head: *const Node,
    entries: AtomicUsize,
    bytes: AtomicIsize,
}

// SAFETY: All shared mutation goes through atomics; node and value
// lifetimes are managed by crossbeam-epoch and the list's own Drop. The raw
// head pointer is only written once at construction.
unsafe impl Send for SkipList {}
// SAFETY: See above; `&SkipList` only exposes lock-free concurrent methods.
unsafe impl Sync for SkipList {}

impl SkipList {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        let guard = epoch::pin();
        let head = Node::head().into_shared(&guard).as_raw();
        Self {
            head,
            entries: AtomicUsize::new(0),
            bytes: AtomicIsize::new(0),
        }
    }

    #[inline]
    fn head_shared<'g>(&self, _guard: &'g Guard) -> Shared<'g, Node> {
        // `head` was created from an `Owned` at construction and is freed
        // only in `Drop`, so it is valid for the list's lifetime; tying the
        // `Shared` to a guard lifetime keeps all uses epoch-disciplined.
        Shared::from(self.head as *const _)
    }

    /// Returns the number of distinct keys in the list.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Returns whether the list contains no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the approximate memory footprint in bytes.
    ///
    /// Repeated in-place updates of a key do not grow this figure (beyond a
    /// payload-size delta), which is what lets FloDB capture skewed
    /// workloads in memory (§5.4).
    pub fn approximate_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed).max(0) as usize
    }

    /// Inserts or updates `key`, returning `true` if a new node was linked
    /// and `false` if an existing entry was updated in place.
    ///
    /// `value == None` writes a delete tombstone. If the key already holds a
    /// value with a *larger* sequence number, the existing value is kept:
    /// sequence numbers, not arrival order, decide freshness.
    pub fn insert(&self, key: &[u8], value: Option<&[u8]>, seq: u64) -> bool {
        let guard = epoch::pin();
        let head = self.head_shared(&guard);
        let mut preds = [head; MAX_HEIGHT];
        let mut succs = [head; MAX_HEIGHT];
        let vv = Owned::new(VersionedValue {
            seq,
            value: value.map(Box::from),
        });
        self.insert_with_preds(key, vv, &mut preds, &mut succs, &guard)
    }

    /// Inserts a sorted batch, reusing the search path between consecutive
    /// elements (the paper's multi-insert, Algorithm 1).
    ///
    /// The batch is sorted internally by key; callers need not pre-sort.
    /// Returns the number of *new* nodes linked (elements that updated an
    /// existing key in place are not counted).
    pub fn multi_insert(&self, mut batch: Vec<BatchEntry>) -> usize {
        batch.sort_by(|a, b| a.key.cmp(&b.key));
        let guard = epoch::pin();
        let head = self.head_shared(&guard);
        // The predecessor arrays persist across elements: this is the
        // path-reuse that makes multi-insert fast on small neighborhoods.
        let mut preds = [head; MAX_HEIGHT];
        let mut succs = [head; MAX_HEIGHT];
        let mut inserted = 0;
        for entry in batch {
            let vv = Owned::new(VersionedValue {
                seq: entry.seq,
                value: entry.value,
            });
            if self.insert_with_preds(&entry.key, vv, &mut preds, &mut succs, &guard) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Looks up `key`, returning a clone of its current versioned value.
    ///
    /// Tombstones are returned as `Some(VersionedValue { value: None, .. })`
    /// so callers can distinguish "deleted here" from "not present".
    pub fn get(&self, key: &[u8]) -> Option<VersionedValue> {
        let guard = epoch::pin();
        let mut pred = self.head_shared(&guard);
        for level in (0..MAX_HEIGHT).rev() {
            // SAFETY: `pred` is the head or a node reached via a validly
            // linked tower pointer; nodes are never unlinked or freed while
            // the list is alive.
            let mut curr = unsafe { pred.deref() }.tower[level].load(Ordering::Acquire, &guard);
            // SAFETY: As above; `curr` comes from a live tower pointer.
            while let Some(c) = unsafe { curr.as_ref() } {
                match c.key.as_ref().cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        curr = c.tower[level].load(Ordering::Acquire, &guard);
                    }
                    std::cmp::Ordering::Equal => {
                        let v = c.value.load(Ordering::Acquire, &guard);
                        // SAFETY: A published node's value pointer is never
                        // null and is protected by `guard` against
                        // reclamation after a concurrent in-place update.
                        return Some(unsafe { v.deref() }.clone());
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        None
    }

    /// `FindFromPreds` (Algorithm 1, lines 1-18).
    ///
    /// Positions `preds`/`succs` around `key` at every level, starting the
    /// descent not from the head but from the stored predecessors of the
    /// previous call whenever they are further along. Returns whether an
    /// exact match was found (in which case `succs[0]` is that node).
    fn find_from_preds<'g>(
        &self,
        key: &[u8],
        preds: &mut [Shared<'g, Node>; MAX_HEIGHT],
        succs: &mut [Shared<'g, Node>; MAX_HEIGHT],
        guard: &'g Guard,
    ) -> bool {
        let head = self.head_shared(guard);
        let mut pred = head;
        for level in (0..MAX_HEIGHT).rev() {
            // Jump ahead to the stored predecessor when it is strictly
            // further along than the current one (the path-reuse core).
            let stored = preds[level];
            if stored != head && stored != pred {
                // SAFETY: Stored predecessors are live nodes (never freed
                // while the list is alive).
                let stored_key = unsafe { stored.deref() }.key.as_ref();
                let advance = if pred == head {
                    true
                } else {
                    // SAFETY: As above.
                    stored_key > unsafe { pred.deref() }.key.as_ref()
                };
                // Only usable if it is still a predecessor of `key`.
                if advance && stored_key < key {
                    pred = stored;
                }
            }
            // SAFETY: `pred` is head or a live node.
            let mut curr = unsafe { pred.deref() }.tower[level].load(Ordering::Acquire, guard);
            // SAFETY: `curr` is always read from a live tower pointer.
            while let Some(c) = unsafe { curr.as_ref() } {
                if c.key.as_ref() >= key {
                    break;
                }
                pred = curr;
                curr = c.tower[level].load(Ordering::Acquire, guard);
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        // SAFETY: `succs[0]` is null or a live node.
        matches!(unsafe { succs[0].as_ref() }, Some(c) if c.key.as_ref() == key)
    }

    /// Shared insert path for `insert` and `multi_insert`
    /// (Algorithm 1, lines 24-42).
    fn insert_with_preds<'g>(
        &self,
        key: &[u8],
        vv: Owned<VersionedValue>,
        preds: &mut [Shared<'g, Node>; MAX_HEIGHT],
        succs: &mut [Shared<'g, Node>; MAX_HEIGHT],
        guard: &'g Guard,
    ) -> bool {
        // Exactly one of `vv` / `new_node` holds the pending value at any
        // point in the loop: the value moves into the node when it is
        // allocated and is stolen back if the key turns out to exist.
        let mut vv = Some(vv);
        let mut new_node: Option<Owned<Node>> = None;
        let mut node_bytes = 0usize;
        loop {
            if self.find_from_preds(key, preds, succs, guard) {
                // Key exists: update in place (SWAP in the pseudocode).
                let owned_vv = match new_node.take() {
                    Some(mut node) => {
                        let atomic = std::mem::replace(&mut node.value, Atomic::null());
                        // SAFETY: `node` was never published, so we hold
                        // the only pointer to its value.
                        unsafe { atomic.into_owned() }
                    }
                    None => vv.take().expect("value still pending"),
                };
                // SAFETY: `succs[0]` is a live node (exact match).
                let node_ref = unsafe { succs[0].deref() };
                self.update_in_place(node_ref, owned_vv, guard);
                return false;
            }

            let node = match new_node.take() {
                Some(n) => n,
                None => {
                    let owned_vv = vv.take().expect("value still pending");
                    let height = random_height();
                    node_bytes =
                        key.len() + owned_vv.payload_len() + NODE_OVERHEAD + 8 * height;
                    Node::new(Box::from(key), owned_vv, height)
                }
            };
            let height = node.height;

            // Point the new tower at the successors before publishing.
            for (level, succ) in succs.iter().enumerate().take(height) {
                node.tower[level].store(*succ, Ordering::Relaxed);
            }

            // Publish at level 0; this is the linearization point.
            // ORDERING: SeqCst on success keeps node publication in one
            // total order with the seq-stamp issuance and the scan
            // protocol's pause/quiesce loads; Release would publish the
            // tower but leave the insert unordered against those flags.
            // SAFETY: `preds[0]` is head or a live node.
            let pred0 = unsafe { preds[0].deref() };
            match pred0.tower[0].compare_exchange(
                succs[0],
                node,
                Ordering::SeqCst, // ORDERING: see publication comment above
                Ordering::Acquire,
                guard,
            ) {
                Ok(node_shared) => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    self.bytes.fetch_add(node_bytes as isize, Ordering::Relaxed);
                    self.link_upper_levels(key, node_shared, height, preds, succs, guard);
                    return true;
                }
                Err(e) => {
                    // Another insert got there first; keep the allocated
                    // node and retry with a fresh view.
                    new_node = Some(e.new);
                }
            }
        }
    }

    /// Links levels `1..height` of a freshly published node.
    fn link_upper_levels<'g>(
        &self,
        key: &[u8],
        node_shared: Shared<'g, Node>,
        height: usize,
        preds: &mut [Shared<'g, Node>; MAX_HEIGHT],
        succs: &mut [Shared<'g, Node>; MAX_HEIGHT],
        guard: &'g Guard,
    ) {
        // SAFETY: The node was just published and is never reclaimed while
        // the list is alive.
        let node_ref = unsafe { node_shared.deref() };
        for level in 1..height {
            loop {
                // ORDERING: same total order as the level-0 publication
                // CAS — upper-level links are an index over already-live
                // nodes, and keeping them SC avoids reasoning about mixed
                // orders on the same tower slots.
                // SAFETY: `preds[level]` is head or a live node.
                let pred = unsafe { preds[level].deref() };
                if pred.tower[level]
                    .compare_exchange(
                        succs[level],
                        node_shared,
                        Ordering::SeqCst, // ORDERING: see comment above
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
                // Competing inserts moved the neighborhood: refresh the
                // view and retarget this level (Algorithm 1, line 41).
                self.find_from_preds(key, preds, succs, guard);
                if succs[level] == node_shared {
                    // Already linked at this level by a competing retry.
                    break;
                }
                node_ref.tower[level].store(succs[level], Ordering::Release);
            }
        }
    }

    /// CAS loop replacing a node's value if the incoming one is as fresh or
    /// fresher (by sequence number).
    fn update_in_place(&self, node: &Node, mut vv: Owned<VersionedValue>, guard: &Guard) {
        loop {
            let cur = node.value.load(Ordering::Acquire, guard);
            // SAFETY: Published nodes always hold a non-null value, and
            // `guard` protects it from reclamation.
            let cur_ref = unsafe { cur.deref() };
            if cur_ref.seq > vv.seq {
                // The resident value is fresher; drop ours.
                return;
            }
            let delta = vv.payload_len() as isize - cur_ref.payload_len() as isize;
            // ORDERING: value replacement is a linearization point readers
            // race with; SeqCst keeps it in the same total order as node
            // publication so a scan's snapshot cannot observe a newer
            // value yet miss an older insert.
            match node
                .value
                .compare_exchange(cur, vv, Ordering::SeqCst, Ordering::Acquire, guard) // ORDERING: see comment above
            {
                Ok(_) => {
                    self.bytes.fetch_add(delta, Ordering::Relaxed);
                    // SAFETY: `cur` has been unlinked by the successful CAS,
                    // so no new reader can acquire it; concurrent readers
                    // that already loaded it are pinned, and the collector
                    // waits for them before running the destructor.
                    unsafe { guard.defer_destroy(cur) };
                    return;
                }
                Err(e) => vv = e.new,
            }
        }
    }

    pub(crate) fn head_raw(&self) -> *const Node {
        self.head
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        // SAFETY: We have exclusive access (`&mut self`); no guards can be
        // active on this list, so walking and freeing without protection is
        // sound. Values replaced earlier were handed to the epoch collector
        // and are freed independently.
        unsafe {
            let guard = epoch::unprotected();
            let head = Shared::<'_, Node>::from(self.head as *const _);
            let mut curr = head.deref().tower[0].load(Ordering::Relaxed, guard);
            drop(head.into_owned());
            while let Some(node) = curr.as_ref() {
                let next = node.tower[0].load(Ordering::Relaxed, guard);
                let value = node.value.load(Ordering::Relaxed, guard);
                if !value.is_null() {
                    drop(value.into_owned());
                }
                drop(curr.into_owned());
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("entries", &self.len())
            .field("approx_bytes", &self.approximate_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::thread;

    use super::*;

    fn k(n: u64) -> Box<[u8]> {
        Box::new(n.to_be_bytes())
    }

    #[test]
    fn empty_list() {
        let l = SkipList::new();
        assert!(l.is_empty());
        assert_eq!(l.get(b"missing"), None);
    }

    #[test]
    fn insert_and_get() {
        let l = SkipList::new();
        assert!(l.insert(b"a", Some(b"1"), 1));
        assert!(l.insert(b"b", Some(b"2"), 2));
        assert_eq!(l.get(b"a").unwrap().value.as_deref(), Some(&b"1"[..]));
        assert_eq!(l.get(b"b").unwrap().seq, 2);
        assert_eq!(l.get(b"c"), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn in_place_update_keeps_len_and_freshest() {
        let l = SkipList::new();
        assert!(l.insert(b"k", Some(b"old"), 1));
        assert!(!l.insert(b"k", Some(b"new"), 2));
        assert_eq!(l.len(), 1);
        let v = l.get(b"k").unwrap();
        assert_eq!(v.value.as_deref(), Some(&b"new"[..]));
        assert_eq!(v.seq, 2);

        // A stale write (smaller seq) must not clobber a fresher value.
        assert!(!l.insert(b"k", Some(b"stale"), 1));
        assert_eq!(l.get(b"k").unwrap().value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn tombstones_are_stored() {
        let l = SkipList::new();
        l.insert(b"k", Some(b"v"), 1);
        l.insert(b"k", None, 2);
        let v = l.get(b"k").unwrap();
        assert!(v.is_tombstone());
        assert_eq!(v.seq, 2);
    }

    #[test]
    fn ordered_after_random_inserts() {
        let l = SkipList::new();
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random order.
        let mut x = 12345u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = x % 500;
            l.insert(&k(key), Some(&i.to_be_bytes()), i + 1);
            model.insert(key, i + 1);
        }
        assert_eq!(l.len(), model.len());
        for (key, seq) in model {
            assert_eq!(l.get(&k(key)).unwrap().seq, seq);
        }
    }

    #[test]
    fn multi_insert_sorts_and_inserts() {
        let l = SkipList::new();
        let batch = vec![
            BatchEntry { key: k(3), value: Some(Box::from(&b"3"[..])), seq: 1 },
            BatchEntry { key: k(1), value: Some(Box::from(&b"1"[..])), seq: 2 },
            BatchEntry { key: k(2), value: None, seq: 3 },
        ];
        assert_eq!(l.multi_insert(batch), 3);
        assert_eq!(l.len(), 3);
        assert!(l.get(&k(2)).unwrap().is_tombstone());
    }

    #[test]
    fn multi_insert_updates_existing_in_place() {
        let l = SkipList::new();
        l.insert(&k(1), Some(b"old"), 1);
        let batch = vec![
            BatchEntry { key: k(1), value: Some(Box::from(&b"new"[..])), seq: 5 },
            BatchEntry { key: k(2), value: Some(Box::from(&b"two"[..])), seq: 6 },
        ];
        assert_eq!(l.multi_insert(batch), 1);
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(&k(1)).unwrap().value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn multi_insert_duplicate_keys_in_batch() {
        let l = SkipList::new();
        let batch = vec![
            BatchEntry { key: k(1), value: Some(Box::from(&b"a"[..])), seq: 1 },
            BatchEntry { key: k(1), value: Some(Box::from(&b"b"[..])), seq: 2 },
        ];
        assert_eq!(l.multi_insert(batch), 1);
        // The larger sequence number wins.
        assert_eq!(l.get(&k(1)).unwrap().value.as_deref(), Some(&b"b"[..]));
    }

    #[test]
    fn multi_insert_equivalent_to_single_inserts() {
        let single = SkipList::new();
        let multi = SkipList::new();
        let mut batch = Vec::new();
        let mut x = 999u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let key = x % 200;
            single.insert(&k(key), Some(&i.to_be_bytes()), i + 1);
            batch.push(BatchEntry {
                key: k(key),
                value: Some(Box::from(i.to_be_bytes().as_slice())),
                seq: i + 1,
            });
        }
        multi.multi_insert(batch);
        assert_eq!(single.len(), multi.len());
        for key in 0..200u64 {
            assert_eq!(single.get(&k(key)), multi.get(&k(key)), "key {key}");
        }
    }

    #[test]
    fn bytes_accounting_does_not_grow_on_updates() {
        let l = SkipList::new();
        l.insert(&k(1), Some(&[0u8; 100]), 1);
        let after_first = l.approximate_bytes();
        for seq in 2..100 {
            l.insert(&k(1), Some(&[0u8; 100]), seq);
        }
        assert_eq!(l.approximate_bytes(), after_first);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let l = Arc::new(SkipList::new());
        let threads = 4;
        let per = 2000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let key = t * per + i;
                    assert!(l.insert(&k(key), Some(&key.to_be_bytes()), key + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), (threads * per) as usize);
        for key in 0..threads * per {
            let v = l.get(&k(key)).unwrap();
            assert_eq!(v.value.as_deref(), Some(key.to_be_bytes().as_slice()));
        }
    }

    #[test]
    fn concurrent_same_key_inserts_keep_one_node() {
        let l = Arc::new(SkipList::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    l.insert(&k(7), Some(&i.to_be_bytes()), t * 1000 + i + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), 1);
        // The surviving value must carry the globally largest seq.
        assert_eq!(l.get(&k(7)).unwrap().seq, 4000);
    }

    #[test]
    fn concurrent_multi_inserts() {
        let l = Arc::new(SkipList::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || {
                for round in 0..20u64 {
                    let batch: Vec<BatchEntry> = (0..50)
                        .map(|i| {
                            let key = (t * 20 + round) * 50 + i;
                            BatchEntry {
                                key: k(key),
                                value: Some(Box::from(key.to_be_bytes().as_slice())),
                                seq: key + 1,
                            }
                        })
                        .collect();
                    assert_eq!(l.multi_insert(batch), 50);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), 4 * 20 * 50);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let l = Arc::new(SkipList::new());
        for key in 0..100u64 {
            l.insert(&k(key), Some(&0u64.to_be_bytes()), 1);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut reads = 0u64;
                // At least one full pass, even if the writer already
                // finished (slow-scheduler robustness).
                loop {
                    for key in 0..100u64 {
                        let v = l.get(&k(key)).unwrap();
                        assert!(!v.is_tombstone());
                        reads += 1;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                reads
            }));
        }
        for seq in 2..2000u64 {
            l.insert(&k(seq % 100), Some(&seq.to_be_bytes()), seq);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
    }
}
