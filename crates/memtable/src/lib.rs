//! The FloDB Memtable: a concurrent lock-free skiplist with per-entry
//! sequence numbers and a novel *multi-insert* operation.
//!
//! This crate implements the second in-memory level of the FloDB
//! architecture (§4.1 of *FloDB: Unlocking Memory in Persistent Key-Value
//! Stores*, EuroSys 2017): a larger, sorted, concurrent data structure that
//! is directly flushable to disk. Its distinguishing features relative to a
//! textbook concurrent skiplist are:
//!
//! - **Per-entry sequence numbers** (§3.2): every entry carries the global
//!   sequence number it was written with. Scans snapshot the global counter
//!   and restart when they encounter a fresher entry. The sequence number
//!   and the value are stored behind a *single* atomic pointer
//!   ([`VersionedValue`]) so a reader can never observe a new value paired
//!   with an old sequence number.
//! - **In-place updates** (§3.2): re-inserting an existing key swaps the
//!   versioned value in place instead of appending a new version, so skewed
//!   workloads do not inflate the memory component.
//! - **Multi-insert** (§4.3, Algorithm 1): inserting a sorted batch reuses
//!   the search path (the predecessor array) of the previous element,
//!   which makes draining the Membuffer into the Memtable fast when the
//!   batch occupies a small key neighborhood.
//! - **No concurrent removal**: by FloDB's design, entries leave the
//!   skiplist only when the whole (immutable) Memtable is persisted and
//!   dropped, which is what makes the lock-free multi-insert sound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

mod height;
mod iter;
mod skiplist;
mod value;

pub use iter::SkipListIter;
pub use skiplist::{BatchEntry, SkipList, MAX_HEIGHT};
pub use value::VersionedValue;
