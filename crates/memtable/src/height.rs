//! Random tower heights for skiplist nodes.
//!
//! Uses a per-thread xorshift64* generator (no external dependency in the
//! hot path) with the LevelDB branching factor: each level is kept with
//! probability 1/4.

use std::cell::Cell;
use flodb_sync::shim::atomic::{AtomicU64, Ordering};

use crate::skiplist::MAX_HEIGHT;

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

thread_local! {
    static RNG: Cell<u64> = Cell::new(
        SEED_COUNTER.fetch_add(0x6C62_272E_07BB_0142, Ordering::Relaxed) | 1,
    );
}

/// Returns the next pseudo-random `u64` for the calling thread.
#[inline]
fn next_u64() -> u64 {
    RNG.with(|rng| {
        let mut x = rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Draws a random tower height in `1..=MAX_HEIGHT` with P(h > k) = 4^-k.
#[inline]
pub(crate) fn random_height() -> usize {
    let mut height = 1;
    let mut bits = next_u64();
    // Each pair of bits keeps growing with probability 1/4.
    while height < MAX_HEIGHT && (bits & 3) == 0 {
        height += 1;
        bits >>= 2;
        if bits == 0 {
            bits = next_u64();
        }
    }
    height
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_in_range() {
        for _ in 0..10_000 {
            let h = random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
        }
    }

    #[test]
    fn height_distribution_is_geometric() {
        let n = 200_000;
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for _ in 0..n {
            counts[random_height()] += 1;
        }
        // ~75% of towers have height exactly 1; allow generous slack.
        let h1_frac = counts[1] as f64 / n as f64;
        assert!(
            (0.70..0.80).contains(&h1_frac),
            "height-1 fraction {h1_frac} outside expected band"
        );
        // Taller towers must be rarer.
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn different_threads_use_different_seeds() {
        let a: Vec<usize> = (0..64).map(|_| random_height()).collect();
        let b = std::thread::spawn(|| (0..64).map(|_| random_height()).collect::<Vec<_>>())
            .join()
            .unwrap();
        // Astronomically unlikely to match if seeds differ.
        assert_ne!(a, b);
    }
}
