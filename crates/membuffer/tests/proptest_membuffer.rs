//! Property-based tests: the Membuffer must behave like a capacity-bounded
//! HashMap where adds may be refused (bucket full) but never corrupted.

use std::collections::HashMap;

use flodb_membuffer::{AddResult, MemBuffer, MemBufferConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u16, value: u8 },
    Delete { key: u16 },
    Get { key: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(key, value)| Op::Put { key, value }),
        any::<u16>().prop_map(|key| Op::Delete { key }),
        any::<u16>().prop_map(|key| Op::Get { key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Sequential semantics match a model; `BucketFull` refusals leave
    /// state untouched.
    #[test]
    fn matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let m = MemBuffer::new(MemBufferConfig {
            partition_bits: 2,
            buckets_per_partition: 8,
        });
        // Model only holds keys the buffer accepted.
        let mut model: HashMap<u16, Option<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { key, value } => {
                    match m.add(&key.to_be_bytes(), Some(&[value])) {
                        AddResult::Added => {
                            prop_assert!(!model.contains_key(&key));
                            model.insert(key, Some(value));
                        }
                        AddResult::Updated => {
                            prop_assert!(model.contains_key(&key));
                            model.insert(key, Some(value));
                        }
                        AddResult::BucketFull => {
                            prop_assert!(!model.contains_key(&key));
                        }
                    }
                }
                Op::Delete { key } => {
                    match m.add(&key.to_be_bytes(), None) {
                        AddResult::Added => { model.insert(key, None); }
                        AddResult::Updated => { model.insert(key, None); }
                        AddResult::BucketFull => {}
                    }
                }
                Op::Get { key } => {
                    let got = m.get(&key.to_be_bytes());
                    match model.get(&key) {
                        Some(Some(v)) => {
                            prop_assert_eq!(got, Some(Some(Box::from([*v].as_slice()))));
                        }
                        Some(None) => prop_assert_eq!(got, Some(None)),
                        None => prop_assert_eq!(got, None),
                    }
                }
            }
        }
        prop_assert_eq!(m.len(), model.len());
    }

    /// Drain-then-remove empties the buffer and yields exactly the resident
    /// entries.
    #[test]
    fn full_drain_yields_all_entries(keys in proptest::collection::hash_set(any::<u16>(), 1..100)) {
        let m = MemBuffer::new(MemBufferConfig {
            partition_bits: 2,
            buckets_per_partition: 64,
        });
        let mut accepted = Vec::new();
        for key in &keys {
            if m.add(&key.to_be_bytes(), Some(&key.to_le_bytes())) == AddResult::Added {
                accepted.push(*key);
            }
        }
        let mut drained_keys = Vec::new();
        let mut tokens = Vec::new();
        for chunk in 0..m.total_buckets() {
            for d in m.claim_bucket(chunk) {
                drained_keys.push(u16::from_be_bytes(d.key.as_ref().try_into().unwrap()));
                tokens.push(d.token);
            }
        }
        m.remove_drained(&tokens);
        drained_keys.sort_unstable();
        accepted.sort_unstable();
        prop_assert_eq!(drained_keys, accepted);
        prop_assert_eq!(m.len(), 0);
    }
}
