//! The partitioned concurrent hash table.
//!
//! # Memory reclamation
//!
//! Slots hold `Atomic<HtEntry>` pointers that lock-free readers
//! ([`MemBuffer::get`]) traverse without taking the bucket lock, so an
//! entry displaced by an in-place update or removed after a drain cannot
//! be freed immediately: it is retired with `Guard::defer_destroy` after
//! being swapped out under the bucket lock, and the epoch collector frees
//! it only once every thread pinned at retire time has unpinned. Every
//! slot load in this module therefore happens under an epoch pin, and the
//! drain path hands out *owned clones* (key/value boxes), never raw entry
//! pointers — see `ARCHITECTURE.md` for the invariant list.

use crossbeam_epoch::{self as epoch, Owned};
use crossbeam_utils::CachePadded;
use flodb_sync::kv::key_partition;
use flodb_sync::shim::atomic::{AtomicIsize, AtomicUsize, Ordering};

use crate::bucket::{Bucket, HtEntry, SLOTS};
use crate::drain::DrainTracker;

/// Number of entry slots per bucket (re-exported for sizing math).
pub const SLOTS_PER_BUCKET: usize = SLOTS;

/// FNV-1a 64-bit hash; cheap, dependency-free and well distributed for the
/// short keys key-value workloads use.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Sizing and partitioning parameters for a [`MemBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBufferConfig {
    /// Number of most-significant key bits selecting the partition (`l` in
    /// §4.3). `2^partition_bits` partitions are created.
    pub partition_bits: u32,
    /// Buckets per partition; rounded up to a power of two.
    pub buckets_per_partition: usize,
}

impl MemBufferConfig {
    /// Builds a config targeting roughly `bytes` of payload capacity given
    /// an expected average entry footprint.
    ///
    /// This mirrors the paper's setup where the Membuffer is allotted a
    /// byte budget (1/4 of the memory component by default, §5.1).
    pub fn for_capacity_bytes(bytes: usize, partition_bits: u32, avg_entry_bytes: usize) -> Self {
        let entries = (bytes / avg_entry_bytes.max(1)).max(SLOTS);
        let buckets_total = (entries / SLOTS).next_power_of_two();
        let partitions = 1usize << partition_bits;
        let per_partition = (buckets_total / partitions).max(1).next_power_of_two();
        Self {
            partition_bits,
            buckets_per_partition: per_partition,
        }
    }

    /// Total entry capacity (all partitions, all slots).
    pub fn capacity_entries(&self) -> usize {
        (1usize << self.partition_bits) * self.buckets_per_partition * SLOTS
    }
}

impl Default for MemBufferConfig {
    fn default() -> Self {
        Self {
            partition_bits: 4,
            buckets_per_partition: 1024,
        }
    }
}

/// Outcome of a [`MemBuffer::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddResult {
    /// The key was inserted into a free slot.
    Added,
    /// The key existed and its value was replaced in place.
    Updated,
    /// The destination bucket has no free slot; the caller must fall back
    /// to the Memtable (Algorithm 2, line 20).
    BucketFull,
}

struct Partition {
    buckets: Box<[CachePadded<Bucket>]>,
}

/// A removal token referencing one previously drained slot.
///
/// Tokens compare the entry's process-unique identity (not just its
/// address — the allocator may hand a freed entry's address to a fresh
/// entry), so a slot that was concurrently updated in place is recognized
/// and left alone.
#[derive(Debug, Clone, Copy)]
pub struct RemoveToken {
    partition: usize,
    bucket: usize,
    slot: usize,
    entry_id: u64,
}

/// An entry claimed by a drainer: owned key/value plus a removal token.
#[derive(Debug)]
pub struct DrainedEntry {
    /// The key.
    pub key: Box<[u8]>,
    /// The value (`None` = tombstone).
    pub value: Option<Box<[u8]>>,
    /// Token for the post-insert removal step (Figure 6, step 3).
    pub token: RemoveToken,
}

/// The FloDB Membuffer: a fixed-capacity, partitioned concurrent hash map.
///
/// # Examples
///
/// ```
/// use flodb_membuffer::{AddResult, MemBuffer, MemBufferConfig};
///
/// let buffer = MemBuffer::new(MemBufferConfig::default());
/// assert_eq!(buffer.add(b"key", Some(b"value")), AddResult::Added);
/// assert_eq!(buffer.add(b"key", Some(b"new")), AddResult::Updated);
/// assert_eq!(buffer.get(b"key"), Some(Some(Box::from(&b"new"[..]))));
/// assert_eq!(buffer.len(), 1);
/// ```
pub struct MemBuffer {
    partitions: Box<[Partition]>,
    partition_bits: u32,
    bucket_mask: usize,
    entries: AtomicUsize,
    bytes: AtomicIsize,
}

impl MemBuffer {
    /// Creates an empty Membuffer with the given shape.
    pub fn new(config: MemBufferConfig) -> Self {
        let partitions = 1usize << config.partition_bits;
        let per_partition = config.buckets_per_partition.next_power_of_two();
        let partitions = (0..partitions)
            .map(|_| Partition {
                buckets: (0..per_partition)
                    .map(|_| CachePadded::new(Bucket::new()))
                    .collect(),
            })
            .collect();
        Self {
            partitions,
            partition_bits: config.partition_bits,
            bucket_mask: per_partition - 1,
            entries: AtomicUsize::new(0),
            bytes: AtomicIsize::new(0),
        }
    }

    /// Returns the number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Returns whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the approximate resident payload size in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed).max(0) as usize
    }

    /// Returns the total entry capacity.
    pub fn capacity_entries(&self) -> usize {
        self.partitions.len() * (self.bucket_mask + 1) * SLOTS
    }

    /// Returns the fraction of slots currently occupied (0.0 ..= 1.0).
    pub fn occupancy(&self) -> f64 {
        self.len() as f64 / self.capacity_entries() as f64
    }

    /// Returns the number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Returns the number of buckets in each partition.
    pub fn buckets_per_partition(&self) -> usize {
        self.bucket_mask + 1
    }

    /// Returns the total number of buckets (drainable chunks).
    pub fn total_buckets(&self) -> usize {
        self.partitions.len() * (self.bucket_mask + 1)
    }

    /// Returns the partition index a key maps to.
    pub fn partition_of(&self, key: &[u8]) -> usize {
        key_partition(key, self.partition_bits)
    }

    #[inline]
    fn bucket_for(&self, key: &[u8]) -> (usize, usize) {
        let partition = self.partition_of(key);
        let bucket = (fnv1a(key) as usize) & self.bucket_mask;
        (partition, bucket)
    }

    /// Inserts or updates `key`; `None` writes a tombstone.
    ///
    /// Returns [`AddResult::BucketFull`] without modifying anything when the
    /// key is absent and its bucket has no free slot.
    pub fn add(&self, key: &[u8], value: Option<&[u8]>) -> AddResult {
        let (p, b) = self.bucket_for(key);
        let bucket = &self.partitions[p].buckets[b];
        let guard = epoch::pin();
        let _lock = bucket.lock();

        let mut free_slot = None;
        for (i, slot) in bucket.slots.iter().enumerate() {
            let cur = slot.load(Ordering::Acquire, &guard);
            // SAFETY: Non-null slots point to live entries; the bucket
            // lock excludes removal while we hold it.
            match unsafe { cur.as_ref() } {
                Some(entry) => {
                    if entry.key.as_ref() == key {
                        // In-place update: replace the slot pointer with a
                        // fresh (unmarked) entry so a concurrent drain of
                        // the old entry cannot lose this write.
                        let new = Owned::new(HtEntry::new(key, value));
                        let delta = new.charge_bytes() as isize - entry.charge_bytes() as isize;
                        let old = slot.swap(new, Ordering::AcqRel, &guard);
                        self.bytes.fetch_add(delta, Ordering::Relaxed);
                        // SAFETY: `old` was unlinked under the bucket lock,
                        // so no new reader can acquire it; lock-free readers
                        // that already loaded it are pinned, and the
                        // collector waits for them before freeing.
                        unsafe { guard.defer_destroy(old) };
                        return AddResult::Updated;
                    }
                }
                None => {
                    if free_slot.is_none() {
                        free_slot = Some(i);
                    }
                }
            }
        }

        match free_slot {
            Some(i) => {
                let new = Owned::new(HtEntry::new(key, value));
                self.bytes
                    .fetch_add(new.charge_bytes() as isize, Ordering::Relaxed);
                bucket.slots[i].store(new, Ordering::Release);
                self.entries.fetch_add(1, Ordering::Relaxed);
                AddResult::Added
            }
            None => AddResult::BucketFull,
        }
    }

    /// Looks up `key` without taking any lock.
    ///
    /// Returns `None` if absent, `Some(None)` for a tombstone, and
    /// `Some(Some(value))` otherwise.
    pub fn get(&self, key: &[u8]) -> Option<Option<Box<[u8]>>> {
        let (p, b) = self.bucket_for(key);
        let bucket = &self.partitions[p].buckets[b];
        let guard = epoch::pin();
        for slot in &bucket.slots {
            let cur = slot.load(Ordering::Acquire, &guard);
            // SAFETY: Entries are reclaimed only through the epoch
            // collector; holding `guard` keeps `cur` alive.
            if let Some(entry) = unsafe { cur.as_ref() } {
                if entry.key.as_ref() == key {
                    return Some(entry.value.clone());
                }
            }
        }
        None
    }

    /// Creates a drain tracker spanning every bucket.
    pub fn drain_tracker(&self) -> DrainTracker {
        DrainTracker::new(self.total_buckets())
    }

    /// Claims every unmarked entry in the bucket with global index `chunk`
    /// (Figure 6, steps 1-2: retrieve and mark).
    ///
    /// Consecutive chunk indices fall in the same partition, so a drainer
    /// sweeping chunks in order produces key-neighborhood-local batches.
    pub fn claim_bucket(&self, chunk: usize) -> Vec<DrainedEntry> {
        let p = chunk / (self.bucket_mask + 1);
        let b = chunk & self.bucket_mask;
        let bucket = &self.partitions[p].buckets[b];
        let guard = epoch::pin();
        let _lock = bucket.lock();

        let mut out = Vec::new();
        for (i, slot) in bucket.slots.iter().enumerate() {
            let cur = slot.load(Ordering::Acquire, &guard);
            // SAFETY: Non-null slots are live under the bucket lock.
            if let Some(entry) = unsafe { cur.as_ref() } {
                if !entry.marked.swap(true, Ordering::AcqRel) {
                    out.push(DrainedEntry {
                        key: entry.key.clone(),
                        value: entry.value.clone(),
                        token: RemoveToken {
                            partition: p,
                            bucket: b,
                            slot: i,
                            entry_id: entry.id,
                        },
                    });
                }
            }
        }
        out
    }

    /// Removes previously drained entries (Figure 6, step 3).
    ///
    /// An entry is removed only if its slot still holds the exact entry the
    /// token references; if a writer updated the key in place meanwhile,
    /// the newer entry stays resident and will be drained later.
    pub fn remove_drained(&self, tokens: &[RemoveToken]) {
        let guard = epoch::pin();
        for token in tokens {
            let bucket = &self.partitions[token.partition].buckets[token.bucket];
            let _lock = bucket.lock();
            let slot = &bucket.slots[token.slot];
            let cur = slot.load(Ordering::Acquire, &guard);
            // SAFETY: Non-null slots hold live entries under the bucket
            // lock. The identity check (not an address check) rejects a
            // fresh entry that was allocated at the claimed entry's reused
            // address — removing it would silently drop an undrained write.
            let matches = unsafe { cur.as_ref() }.is_some_and(|e| e.id == token.entry_id);
            if matches {
                // SAFETY: The identity matches the claimed entry, which is
                // still live; swap it out under the bucket lock and defer
                // its reclamation past concurrent lock-free readers.
                let old = slot.swap(crossbeam_epoch::Shared::null(), Ordering::AcqRel, &guard);
                // SAFETY: `old` was just verified live under the bucket
                // lock; the swap only unpublished it, nothing freed it.
                let entry = unsafe { old.deref() };
                self.bytes
                    .fetch_sub(entry.charge_bytes() as isize, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: `old` is unpublished (swapped to null above), so
                // no new reader can reach it; deferring past the current
                // epoch covers the lock-free readers that already did.
                unsafe { guard.defer_destroy(old) };
            }
        }
    }

    /// Calls `f` for every resident entry. Buckets are visited under their
    /// lock; intended for tests and diagnostics, not the hot path.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], Option<&[u8]>)) {
        let guard = epoch::pin();
        for p in self.partitions.iter() {
            for bucket in p.buckets.iter() {
                let _lock = bucket.lock();
                for slot in &bucket.slots {
                    let cur = slot.load(Ordering::Acquire, &guard);
                    // SAFETY: Live under the bucket lock.
                    if let Some(entry) = unsafe { cur.as_ref() } {
                        f(entry.key.as_ref(), entry.value.as_deref());
                    }
                }
            }
        }
    }
}

// SAFETY: All mutation is protected by per-bucket locks or atomics, and
// entry reclamation goes through the epoch collector.
unsafe impl Send for MemBuffer {}
// SAFETY: See above.
unsafe impl Sync for MemBuffer {}

impl Drop for MemBuffer {
    fn drop(&mut self) {
        // SAFETY: Exclusive access; no concurrent readers can exist, so
        // freeing entries directly (without a grace period) is sound.
        unsafe {
            let guard = epoch::unprotected();
            for p in self.partitions.iter() {
                for bucket in p.buckets.iter() {
                    for slot in &bucket.slots {
                        let cur = slot.load(Ordering::Relaxed, guard);
                        if !cur.is_null() {
                            drop(cur.into_owned());
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for MemBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemBuffer")
            .field("entries", &self.len())
            .field("capacity", &self.capacity_entries())
            .field("partitions", &self.num_partitions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;

    use super::*;

    fn small() -> MemBuffer {
        MemBuffer::new(MemBufferConfig {
            partition_bits: 2,
            buckets_per_partition: 8,
        })
    }

    fn k(n: u64) -> Box<[u8]> {
        Box::new(n.to_be_bytes())
    }

    #[test]
    fn add_get_roundtrip() {
        let m = small();
        assert_eq!(m.add(b"a", Some(b"1")), AddResult::Added);
        assert_eq!(m.get(b"a"), Some(Some(Box::from(&b"1"[..]))));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let m = small();
        assert_eq!(m.add(b"a", Some(b"1")), AddResult::Added);
        assert_eq!(m.add(b"a", Some(b"22")), AddResult::Updated);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"a"), Some(Some(Box::from(&b"22"[..]))));
    }

    #[test]
    fn tombstones_are_resident_entries() {
        let m = small();
        assert_eq!(m.add(b"a", None), AddResult::Added);
        assert_eq!(m.get(b"a"), Some(None));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn bucket_full_signals_fallback() {
        // One partition, one bucket: capacity is exactly SLOTS entries that
        // hash anywhere.
        let m = MemBuffer::new(MemBufferConfig {
            partition_bits: 0,
            buckets_per_partition: 1,
        });
        let mut added = 0;
        let mut full = 0;
        for i in 0..32u64 {
            match m.add(&k(i), Some(b"v")) {
                AddResult::Added => added += 1,
                AddResult::BucketFull => full += 1,
                AddResult::Updated => unreachable!("keys are distinct"),
            }
        }
        assert_eq!(added, SLOTS);
        assert_eq!(full, 32 - SLOTS as u64);
        // Updates of resident keys still succeed when the bucket is full.
        let resident: Vec<u64> = (0..32).filter(|i| m.get(&k(*i)).is_some()).collect();
        assert_eq!(resident.len(), SLOTS);
        assert_eq!(m.add(&k(resident[0]), Some(b"w")), AddResult::Updated);
    }

    #[test]
    fn capacity_config_math() {
        let c = MemBufferConfig::for_capacity_bytes(1 << 20, 4, 64);
        assert!(c.capacity_entries() >= (1 << 20) / 64 / 2);
        assert_eq!(c.partition_bits, 4);
    }

    #[test]
    fn partitioning_uses_key_prefix() {
        let m = MemBuffer::new(MemBufferConfig {
            partition_bits: 4,
            buckets_per_partition: 4,
        });
        assert_eq!(m.num_partitions(), 16);
        assert_eq!(m.partition_of(&u64::MAX.to_be_bytes()), 15);
        assert_eq!(m.partition_of(&0u64.to_be_bytes()), 0);
    }

    #[test]
    fn claim_marks_and_remove_deletes() {
        let m = small();
        for i in 0..20u64 {
            m.add(&k(i), Some(&i.to_be_bytes()));
        }
        assert_eq!(m.len(), 20);
        let mut drained = Vec::new();
        for chunk in 0..m.total_buckets() {
            drained.extend(m.claim_bucket(chunk));
        }
        assert_eq!(drained.len(), 20);
        // Claiming again yields nothing: everything is marked.
        for chunk in 0..m.total_buckets() {
            assert!(m.claim_bucket(chunk).is_empty());
        }
        let tokens: Vec<RemoveToken> = drained.iter().map(|d| d.token).collect();
        m.remove_drained(&tokens);
        assert_eq!(m.len(), 0);
        for i in 0..20u64 {
            assert_eq!(m.get(&k(i)), None);
        }
    }

    #[test]
    fn update_during_drain_is_not_lost() {
        let m = small();
        m.add(b"key", Some(b"old"));
        let drained = {
            let mut all = Vec::new();
            for chunk in 0..m.total_buckets() {
                all.extend(m.claim_bucket(chunk));
            }
            all
        };
        assert_eq!(drained.len(), 1);
        // A writer updates the key after the drainer claimed it but before
        // removal: the update must survive.
        assert_eq!(m.add(b"key", Some(b"new")), AddResult::Updated);
        let tokens: Vec<RemoveToken> = drained.iter().map(|d| d.token).collect();
        m.remove_drained(&tokens);
        assert_eq!(m.get(b"key"), Some(Some(Box::from(&b"new"[..]))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_adds_distinct_keys() {
        let m = Arc::new(MemBuffer::new(MemBufferConfig {
            partition_bits: 4,
            buckets_per_partition: 256,
        }));
        let threads = 4u64;
        let per = 1000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut stored = 0;
                for i in 0..per {
                    let key = t * per + i;
                    if m.add(&k(key), Some(&key.to_be_bytes())) == AddResult::Added {
                        stored += 1;
                    }
                }
                stored
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(m.len() as u64, total);
        // Spot-check all stored keys read back correctly.
        let mut present = 0;
        for key in 0..threads * per {
            if let Some(Some(v)) = m.get(&k(key)) {
                assert_eq!(v.as_ref(), key.to_be_bytes());
                present += 1;
            }
        }
        assert_eq!(present, total);
    }

    #[test]
    fn concurrent_drain_and_update_never_loses_writes() {
        let m = Arc::new(MemBuffer::new(MemBufferConfig {
            partition_bits: 2,
            buckets_per_partition: 64,
        }));
        let keys = 200u64;
        for key in 0..keys {
            m.add(&k(key), Some(&0u64.to_be_bytes()));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Drainer thread: claims and removes entries; records drained kv.
        let drainer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_drained: HashMap<Vec<u8>, u64> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    for chunk in 0..m.total_buckets() {
                        let drained = m.claim_bucket(chunk);
                        let tokens: Vec<RemoveToken> =
                            drained.iter().map(|d| d.token).collect();
                        for d in &drained {
                            let v = u64::from_be_bytes(
                                d.value.as_deref().unwrap().try_into().unwrap(),
                            );
                            last_drained.insert(d.key.to_vec(), v);
                        }
                        m.remove_drained(&tokens);
                    }
                }
                last_drained
            })
        };
        // Writer: bumps versions of all keys.
        let mut final_version = HashMap::new();
        for round in 1..=50u64 {
            for key in 0..keys {
                m.add(&k(key), Some(&round.to_be_bytes()));
                final_version.insert(k(key).to_vec(), round);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let drained_map = drainer.join().unwrap();
        // Every key's final version must be either still resident or the
        // last thing the drainer saw.
        for (key, version) in final_version {
            let resident = m.get(&key).map(|v| {
                u64::from_be_bytes(v.as_deref().unwrap().try_into().unwrap())
            });
            let drained = drained_map.get(&key).copied();
            let observed = resident.or(drained);
            assert_eq!(
                observed,
                Some(version),
                "final write to key {key:?} was lost (resident {resident:?}, drained {drained:?})"
            );
        }
    }
}
