//! Work-sharing cursor for cooperative draining.
//!
//! A full Membuffer drain (before a scan) may be executed by several
//! threads at once: the master scanner plus any writers that "help with the
//! draining of the immutable Membuffer" (Algorithm 2, lines 12-16). The
//! tracker hands out disjoint chunks of the bucket space and reports
//! completion once every chunk has been both claimed *and* finished.
//!
//! The tracker itself is reclamation-neutral: it deals only in chunk
//! indices, never in epoch-protected entry pointers, so helpers can hold a
//! claim across arbitrarily long Memtable inserts without pinning.

use flodb_sync::shim::atomic::{AtomicUsize, Ordering};

/// Divides `total` chunks of work among any number of cooperating threads.
///
/// # Examples
///
/// ```
/// use flodb_membuffer::DrainTracker;
///
/// let tracker = DrainTracker::new(3);
/// assert_eq!(tracker.claim(), Some(0));
/// assert_eq!(tracker.claim(), Some(1));
/// tracker.finish();
/// tracker.finish();
/// assert!(!tracker.is_complete());
/// assert_eq!(tracker.claim(), Some(2));
/// tracker.finish();
/// assert_eq!(tracker.claim(), None);
/// assert!(tracker.is_complete());
/// ```
#[derive(Debug)]
pub struct DrainTracker {
    next: AtomicUsize,
    finished: AtomicUsize,
    total: usize,
}

impl DrainTracker {
    /// Creates a tracker over `total` chunks.
    pub fn new(total: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next unprocessed chunk, or `None` if all are claimed.
    pub fn claim(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.total).then_some(idx)
    }

    /// Records that one claimed chunk has been fully processed.
    pub fn finish(&self) {
        self.finished.fetch_add(1, Ordering::Release);
    }

    /// Returns whether every chunk has been processed.
    pub fn is_complete(&self) -> bool {
        self.finished.load(Ordering::Acquire) >= self.total
    }

    /// Returns the total number of chunks.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn chunks_are_disjoint_across_threads() {
        let tracker = Arc::new(DrainTracker::new(1000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tracker = Arc::clone(&tracker);
            handles.push(std::thread::spawn(move || {
                let mut claimed = Vec::new();
                while let Some(idx) = tracker.claim() {
                    claimed.push(idx);
                    tracker.finish();
                }
                claimed
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
        assert!(tracker.is_complete());
    }

    #[test]
    fn empty_tracker_is_complete() {
        let t = DrainTracker::new(0);
        assert_eq!(t.claim(), None);
        assert!(t.is_complete());
    }

    #[test]
    fn incomplete_until_all_finished() {
        let t = DrainTracker::new(2);
        t.claim();
        t.claim();
        assert!(!t.is_complete());
        t.finish();
        assert!(!t.is_complete());
        t.finish();
        assert!(t.is_complete());
    }
}
