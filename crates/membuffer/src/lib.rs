//! The FloDB Membuffer: a small, fast, partitioned concurrent hash table.
//!
//! This crate implements the first in-memory level of the FloDB
//! architecture (§4.1 of *FloDB: Unlocking Memory in Persistent Key-Value
//! Stores*, EuroSys 2017), modeled on CLHT [8, 21]: buckets are cache-line
//! sized with a fixed number of slots, reads are lock-free, and writes take
//! a per-bucket spinlock.
//!
//! Three properties are specific to FloDB:
//!
//! - **Bounded buckets** (§4.4): `add` *fails* when the destination bucket
//!   is full instead of chaining or resizing — a failed add is the signal
//!   that sends the write directly to the Memtable. This is also what makes
//!   the structure "vulnerable to data skew" (§4.3), reproduced faithfully
//!   because Figure 16's low-memory dip depends on it.
//! - **Key-prefix partitioning** (§4.3): the `l` most significant key bits
//!   choose a partition; each partition owns a contiguous bucket range, so
//!   draining one partition yields a batch in a small key neighborhood,
//!   maximizing skiplist multi-insert path reuse (Figure 8).
//! - **Drain marking** (§4.2, Figure 6): a drainer *marks* entries before
//!   moving them so no other drainer moves them too, and removes an entry
//!   afterwards only if it was not concurrently updated in place (updates
//!   replace the slot pointer, so a compare-and-swap detects them). An
//!   update racing with a drain is therefore never lost.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

mod bucket;
mod drain;
mod table;

pub use drain::DrainTracker;
pub use table::{AddResult, DrainedEntry, MemBuffer, MemBufferConfig, RemoveToken, SLOTS_PER_BUCKET};
