//! Cache-line buckets with fixed slots and a per-bucket spinlock.

use crossbeam_epoch::Atomic;
use flodb_sync::shim::atomic::{AtomicBool, AtomicU64, Ordering};
use flodb_sync::Backoff;

/// Number of entry slots per bucket.
///
/// CLHT sizes buckets to one cache line; with a lock word and four slot
/// pointers the struct fits in 64 bytes (`CachePadded` in the table rounds
/// it up regardless).
pub(crate) const SLOTS: usize = 4;

/// Source of unique entry identities (ABA protection for drain tokens:
/// the allocator may reuse a freed entry's address, so tokens must not
/// identify entries by pointer alone).
static NEXT_ENTRY_ID: AtomicU64 = AtomicU64::new(1);

/// A single hash-table entry.
///
/// Entries are immutable once published except for the drain mark: an
/// in-place *update* replaces the whole slot pointer with a fresh entry.
/// This makes "was this entry concurrently updated?" an identity
/// comparison, which the drain protocol relies on.
#[derive(Debug)]
pub(crate) struct HtEntry {
    pub(crate) key: Box<[u8]>,
    /// `None` encodes a delete tombstone.
    pub(crate) value: Option<Box<[u8]>>,
    /// Set by a drainer that claimed this entry (Figure 6, step 1).
    pub(crate) marked: AtomicBool,
    /// Process-unique identity, never reused even if the address is.
    pub(crate) id: u64,
}

impl HtEntry {
    pub(crate) fn new(key: &[u8], value: Option<&[u8]>) -> Self {
        Self {
            key: Box::from(key),
            value: value.map(Box::from),
            marked: AtomicBool::new(false),
            id: NEXT_ENTRY_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    pub(crate) fn charge_bytes(&self) -> usize {
        self.key.len() + self.value.as_deref().map_or(0, <[u8]>::len) + 48
    }
}

/// A bucket: spinlock + fixed slot array.
#[derive(Debug)]
pub(crate) struct Bucket {
    lock: AtomicBool,
    pub(crate) slots: [Atomic<HtEntry>; SLOTS],
}

impl Bucket {
    pub(crate) fn new() -> Self {
        Self {
            lock: AtomicBool::new(false),
            slots: Default::default(),
        }
    }

    /// Acquires the bucket spinlock, returning a guard that releases it.
    pub(crate) fn lock(&self) -> BucketGuard<'_> {
        let backoff = Backoff::new();
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.spin();
        }
        BucketGuard { bucket: self }
    }
}

/// RAII guard for a held bucket spinlock.
pub(crate) struct BucketGuard<'a> {
    bucket: &'a Bucket,
}

impl Drop for BucketGuard<'_> {
    fn drop(&mut self) {
        self.bucket.lock.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn lock_is_mutually_exclusive() {
        let bucket = Arc::new(Bucket::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let bucket = Arc::clone(&bucket);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = bucket.lock();
                    // Non-atomic-looking increment under the lock: load,
                    // then store. Races would lose counts.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn entry_charge_accounts_key_and_value() {
        let e = HtEntry::new(b"key", Some(b"value"));
        assert_eq!(e.charge_bytes(), 3 + 5 + 48);
        let t = HtEntry::new(b"key", None);
        assert_eq!(t.charge_bytes(), 3 + 48);
    }
}
