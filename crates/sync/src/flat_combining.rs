//! Flat-combining write queue modeling LevelDB's single write leader.
//!
//! LevelDB "serializes writes by having threads deposit their intended
//! writes in a concurrent queue; the writes in this queue are applied to the
//! key-value store one by one by a single thread" (§2.2). The front writer
//! becomes the *leader*, drains every pending write into one batch, applies
//! the batch while holding no lock, and then wakes the batched writers.
//!
//! The FloDB paper identifies this structure as the concurrency bottleneck
//! of LevelDB and RocksDB; the baseline stores in `flodb-baselines` use this
//! queue to reproduce that bottleneck faithfully.

use std::collections::VecDeque;

use crate::lock_order::SYNC_WRITE_QUEUE;
use crate::shim::{ranked_condvar, ranked_mutex, Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    pending: VecDeque<(u64, T)>,
    next_ticket: u64,
    completed: u64,
    leader_active: bool,
}

/// A flat-combining queue: concurrent producers, one combining consumer.
///
/// Every producer calls [`WriteQueue::submit`] with its operation and an
/// `apply` closure. Exactly one producer at a time becomes the leader and
/// has its closure invoked with the whole pending batch; the others block
/// until their operation has been applied on their behalf.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use flodb_sync::WriteQueue;
///
/// let q = WriteQueue::new();
/// let total = AtomicU64::new(0);
/// q.submit(5u64, |batch| {
///     for x in batch {
///         total.fetch_add(x, Ordering::Relaxed);
///     }
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 5);
/// ```
#[derive(Debug)]
pub struct WriteQueue<T> {
    inner: Mutex<Inner<T>>,
    condvar: Condvar,
}

impl<T> WriteQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: ranked_mutex(SYNC_WRITE_QUEUE, Inner {
                pending: VecDeque::new(),
                next_ticket: 1,
                completed: 0,
                leader_active: false,
            }),
            condvar: ranked_condvar(SYNC_WRITE_QUEUE),
        }
    }

    /// Submits `op` and blocks until it has been applied.
    ///
    /// If the calling thread becomes the leader, `apply` is invoked with a
    /// batch containing `op` and every other operation pending at that
    /// moment, in submission order. Otherwise another thread's `apply`
    /// handles `op` and this thread's closure is dropped unused.
    pub fn submit<F>(&self, op: T, apply: F)
    where
        F: FnOnce(Vec<T>),
    {
        let mut apply = Some(apply);
        let mut inner = self.inner.lock();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.pending.push_back((ticket, op));

        loop {
            if inner.completed >= ticket {
                return;
            }
            if !inner.leader_active {
                inner.leader_active = true;
                let batch: Vec<T> = inner.pending.drain(..).map(|(_, op)| op).collect();
                let batch_max = inner.next_ticket - 1;
                drop(inner);

                // The leader applies the whole batch outside the lock: this
                // is the single-writer section the paper's Figure 9 shows
                // flat-lining LevelDB/RocksDB throughput.
                (apply.take().expect("leader applies exactly once"))(batch);

                inner = self.inner.lock();
                inner.completed = inner.completed.max(batch_max);
                inner.leader_active = false;
                self.condvar.notify_all();
                debug_assert!(inner.completed >= ticket);
                return;
            }
            self.condvar.wait(&mut inner);
        }
    }

    /// Returns the number of operations currently waiting for a leader.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().pending.len()
    }
}

impl<T> Default for WriteQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    use super::*;

    #[test]
    fn single_thread_applies_own_op() {
        let q = WriteQueue::new();
        let sum = AtomicU64::new(0);
        q.submit(7u64, |batch| {
            assert_eq!(batch, vec![7]);
            sum.fetch_add(batch.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 7);
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn all_ops_applied_exactly_once() {
        const THREADS: usize = 8;
        const OPS: u64 = 500;
        let q = Arc::new(WriteQueue::new());
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                for i in 1..=OPS {
                    q.submit(i, |batch| {
                        for x in batch {
                            total.fetch_add(x, Ordering::Relaxed);
                        }
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expected = THREADS as u64 * (OPS * (OPS + 1) / 2);
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn leaders_are_mutually_exclusive() {
        let q = Arc::new(WriteQueue::new());
        let in_apply = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let in_apply = Arc::clone(&in_apply);
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    q.submit(i, |_batch| {
                        assert!(
                            !in_apply.swap(true, Ordering::SeqCst),
                            "two leaders applied concurrently"
                        );
                        std::hint::spin_loop();
                        in_apply.store(false, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batch_preserves_submission_order_single_producer() {
        let q = WriteQueue::new();
        // With one producer each batch is a singleton, so order is trivial;
        // this guards the drain order against regressions.
        for i in 0..10u64 {
            q.submit(i, |batch| assert_eq!(batch, vec![i]));
        }
    }
}
