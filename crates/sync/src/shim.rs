//! Swappable concurrency-primitives facade.
//!
//! Every lock, condvar, atomic, and thread operation in the
//! concurrency-bearing crates (`flodb-sync`, `flodb-membuffer`,
//! `flodb-memtable`, `flodb-storage`, plus `flodb-core`'s view machinery)
//! goes through this module instead of `std::sync` / `parking_lot`
//! directly — enforced by `cargo xtask lint`. Under
//! `RUSTFLAGS="--cfg flodb_model"` the primitives swap to the
//! instrumented types of `flodb-check`, whose scheduler explores thread
//! interleavings deterministically (see ARCHITECTURE.md, "Verification").
//!
//! On top of mode selection, the facade carries the **runtime lock-rank
//! tracker** (see [`crate::lock_order`]): in debug and model builds the
//! lock types here are thin wrappers whose guards push their declared
//! rank onto a thread-local stack, and any acquisition that does not
//! strictly ascend panics with both lock names. Locks join the hierarchy
//! through [`ranked_mutex`] / [`ranked_rwlock`]; locks built with the
//! plain constructors are untracked. In release builds without
//! `flodb_model` the names below are *re-exports* of the raw primitives
//! and the ranked constructors compile to the plain ones — zero cost,
//! proven by the type-identity test at the bottom (which only compiles
//! in release mode, and runs in CI via `cargo test --release`).
//!
//! `Ordering` is the `std` enum in both modes, so code passes orderings
//! unchanged; the model scheduler itself is sequentially consistent and
//! does not explore weak-memory reorderings.

pub use std::sync::Arc;

pub use facade::{
    ranked_condvar, ranked_mutex, ranked_rwlock, Condvar, Mutex, MutexGuard, RwLock,
    RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Release non-model builds: straight re-exports, zero overhead.
#[cfg(not(any(debug_assertions, flodb_model)))]
mod facade {
    use crate::lock_order::LockClass;

    pub use parking_lot::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };

    /// Creates a mutex belonging to a ranked lock class (no-op here; the
    /// rank is enforced in debug/model builds and by `cargo xtask locks`).
    #[inline(always)]
    pub const fn ranked_mutex<T>(_class: LockClass, value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// Creates a rwlock belonging to a ranked lock class (no-op here).
    #[inline(always)]
    pub const fn ranked_rwlock<T>(_class: LockClass, value: T) -> RwLock<T> {
        RwLock::new(value)
    }

    /// Creates a condvar associated with a ranked lock class (no-op here
    /// and in debug builds: waiting is attributed to the mutex's rank
    /// entry, not the condvar; the class only documents the site).
    #[inline(always)]
    pub const fn ranked_condvar(_class: LockClass) -> Condvar {
        Condvar::new()
    }
}

/// Debug and model builds: rank-tracking wrappers over the active base
/// primitives.
#[cfg(any(debug_assertions, flodb_model))]
mod facade {
    #[cfg(flodb_model)]
    use flodb_check::sync as base;
    #[cfg(not(flodb_model))]
    use parking_lot as base;

    use crate::lock_order::{tracker, LockClass};
    use std::time::{Duration, Instant};

    pub use base::WaitTimeoutResult;

    /// A mutex that participates in runtime lock-rank checking when built
    /// with [`ranked_mutex`]; see [`crate::lock_order`].
    pub struct Mutex<T> {
        class: Option<LockClass>,
        inner: base::Mutex<T>,
    }

    /// RAII guard for [`Mutex`]; releases the rank entry on drop.
    pub struct MutexGuard<'a, T> {
        // Field order matters: the rank entry must outlive the base
        // guard, but `Drop for MutexGuard` runs before either field
        // drops, so ordering here is cosmetic; the tracker entry is
        // removed in our Drop while the lock is still held.
        inner: base::MutexGuard<'a, T>,
        token: Option<u64>,
    }

    impl<T> Mutex<T> {
        /// Creates an untracked mutex (outside the declared hierarchy).
        pub const fn new(value: T) -> Self {
            Self { class: None, inner: base::Mutex::new(value) }
        }

        /// Acquires the mutex; panics on a rank inversion before blocking.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            // Record before acquiring: an inversion panics instead of
            // deadlocking, even when the other thread already holds us.
            let token = self.class.map(tracker::acquired);
            MutexGuard { inner: self.inner.lock(), token }
        }

        /// Attempts to acquire the mutex without blocking. Rank order is
        /// enforced even here: a descending `try_lock` cannot deadlock,
        /// but it is still outside the declared hierarchy.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let inner = self.inner.try_lock()?;
            let token = self.class.map(tracker::acquired);
            Some(MutexGuard { inner, token })
        }

        /// Returns a mutable reference to the value (no locking needed).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("Mutex").field(&self.inner).finish()
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token {
                tracker::released(token);
            }
        }
    }

    /// A reader-writer lock that participates in runtime lock-rank
    /// checking when built with [`ranked_rwlock`]. Read and write
    /// acquisitions are ranked identically (the hierarchy orders lock
    /// *objects*, not access modes).
    pub struct RwLock<T> {
        class: Option<LockClass>,
        inner: base::RwLock<T>,
    }

    /// RAII shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        inner: base::RwLockReadGuard<'a, T>,
        token: Option<u64>,
    }

    /// RAII exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        inner: base::RwLockWriteGuard<'a, T>,
        token: Option<u64>,
    }

    impl<T> RwLock<T> {
        /// Creates an untracked rwlock (outside the declared hierarchy).
        pub const fn new(value: T) -> Self {
            Self { class: None, inner: base::RwLock::new(value) }
        }

        /// Acquires shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let token = self.class.map(tracker::acquired);
            RwLockReadGuard { inner: self.inner.read(), token }
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let token = self.class.map(tracker::acquired);
            RwLockWriteGuard { inner: self.inner.write(), token }
        }

        /// Returns a mutable reference to the value (no locking needed).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }

        /// Consumes the rwlock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("RwLock").field(&self.inner).finish()
        }
    }

    impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token {
                tracker::released(token);
            }
        }
    }

    impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token {
                tracker::released(token);
            }
        }
    }

    /// Condition variable paired with [`Mutex`]. Waiting keeps the
    /// mutex's rank entry on the stack: the waiting thread cannot acquire
    /// anything while parked, and on wake-up it holds the same set of
    /// locks it held at the call, so the recorded state stays accurate.
    #[derive(Default)]
    pub struct Condvar {
        inner: base::Condvar,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Condvar { .. }")
        }
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Self {
            Self { inner: base::Condvar::new() }
        }

        /// Blocks until notified, atomically releasing and reacquiring
        /// the lock.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            self.inner.wait(&mut guard.inner);
        }

        /// Blocks until notified or `timeout` elapses.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            self.inner.wait_for(&mut guard.inner, timeout)
        }

        /// Blocks until notified or `deadline` passes.
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            self.inner.wait_until(&mut guard.inner, deadline)
        }

        /// Blocks while `condition` holds.
        pub fn wait_while<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            mut condition: impl FnMut(&mut T) -> bool,
        ) {
            while condition(&mut *guard.inner) {
                self.wait(guard);
            }
        }

        /// Wakes one blocked waiter; returns whether one was woken (model
        /// runs only; `false` under parking_lot semantics mirrored here).
        pub fn notify_one(&self) -> bool {
            self.inner.notify_one()
        }

        /// Wakes all blocked waiters; returns the number woken (model
        /// runs only; 0 otherwise).
        pub fn notify_all(&self) -> usize {
            self.inner.notify_all()
        }
    }

    /// Creates a mutex belonging to a ranked lock class; its guards
    /// enforce strictly ascending acquisition order at runtime.
    pub const fn ranked_mutex<T>(class: LockClass, value: T) -> Mutex<T> {
        Mutex { class: Some(class), inner: base::Mutex::new(value) }
    }

    /// Creates a rwlock belonging to a ranked lock class.
    pub const fn ranked_rwlock<T>(class: LockClass, value: T) -> RwLock<T> {
        RwLock { class: Some(class), inner: base::RwLock::new(value) }
    }

    /// Creates a condvar associated with a ranked lock class. The class
    /// documents the site (and anchors it in `LOCK_ORDER.toml`); waiting
    /// itself is attributed to the paired mutex's rank entry.
    pub const fn ranked_condvar(_class: LockClass) -> Condvar {
        Condvar::new()
    }
}

/// Atomic types; instrumented under `cfg(flodb_model)`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(flodb_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };

    #[cfg(flodb_model)]
    pub use flodb_check::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };
}

/// Thread spawn/yield; model threads participate in the explored schedule.
pub mod thread {
    #[cfg(not(flodb_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(flodb_model)]
    pub use flodb_check::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hint; a deprioritizing yield under the model.
pub mod hint {
    #[cfg(not(flodb_model))]
    pub use std::hint::spin_loop;

    #[cfg(flodb_model)]
    pub use flodb_check::hint::spin_loop;
}

#[cfg(all(test, not(debug_assertions), not(flodb_model)))]
mod tests {
    //! Zero-cost proof for release builds: the facade's names are *type
    //! identical* to the primitives they replace — `pub use` re-exports,
    //! no wrappers — so going through the shim cannot cost an
    //! instruction. Each binding below only compiles if the two sides
    //! are the same type. Debug/model builds intentionally wrap these
    //! types for lock-rank tracking, so the test is compiled out there;
    //! CI runs it via `cargo test --release -p flodb-sync`.

    #[test]
    fn shim_types_are_the_raw_types() {
        let _: parking_lot::Mutex<u8> = super::Mutex::new(0u8);
        let _: parking_lot::RwLock<u8> =
            super::ranked_rwlock(crate::lock_order::ENV_DATA, 0u8);
        let _: parking_lot::Mutex<u8> =
            super::ranked_mutex(crate::lock_order::WAL_LOG, 0u8);
        let _: parking_lot::Condvar = super::Condvar::new();
        let _: std::sync::atomic::AtomicUsize = super::atomic::AtomicUsize::new(0);
        let _: std::sync::atomic::AtomicBool = super::atomic::AtomicBool::new(false);
        let h: std::thread::JoinHandle<()> = super::thread::spawn(|| {});
        h.join().unwrap();
        let f: fn() = std::hint::spin_loop;
        let g: fn() = super::hint::spin_loop;
        assert_eq!(f as usize, g as usize);
    }
}
