//! Swappable concurrency-primitives facade.
//!
//! Every lock, condvar, atomic, and thread operation in the
//! concurrency-bearing crates (`flodb-sync`, `flodb-membuffer`,
//! `flodb-memtable`, plus `flodb-core`'s view machinery) goes through this
//! module instead of `std::sync` / `parking_lot` directly — enforced by
//! `cargo xtask lint`. In normal builds the re-exports below compile to
//! the exact same types as before (zero cost); under
//! `RUSTFLAGS="--cfg flodb_model"` they swap to the instrumented
//! primitives of `flodb-check`, whose scheduler explores thread
//! interleavings deterministically (see ARCHITECTURE.md, "Verification").
//!
//! `Ordering` is the `std` enum in both modes, so code passes orderings
//! unchanged; the model scheduler itself is sequentially consistent and
//! does not explore weak-memory reorderings.

#[cfg(not(flodb_model))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(flodb_model)]
pub use flodb_check::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

pub use std::sync::Arc;

/// Atomic types; instrumented under `cfg(flodb_model)`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(flodb_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };

    #[cfg(flodb_model)]
    pub use flodb_check::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };
}

/// Thread spawn/yield; model threads participate in the explored schedule.
pub mod thread {
    #[cfg(not(flodb_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(flodb_model)]
    pub use flodb_check::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hint; a deprioritizing yield under the model.
pub mod hint {
    #[cfg(not(flodb_model))]
    pub use std::hint::spin_loop;

    #[cfg(flodb_model)]
    pub use flodb_check::hint::spin_loop;
}

#[cfg(all(test, not(flodb_model)))]
mod tests {
    //! Zero-cost proof for normal builds: the facade's names are *type
    //! identical* to the primitives they replace — `pub use`
    //! re-exports, no wrappers — so going through the shim cannot cost
    //! an instruction. Each binding below only compiles if the two
    //! sides are the same type.

    #[test]
    fn shim_types_are_the_raw_types() {
        let _: parking_lot::Mutex<u8> = super::Mutex::new(0u8);
        let _: parking_lot::Condvar = super::Condvar::new();
        let _: std::sync::atomic::AtomicUsize = super::atomic::AtomicUsize::new(0);
        let _: std::sync::atomic::AtomicBool = super::atomic::AtomicBool::new(false);
        let h: std::thread::JoinHandle<()> = super::thread::spawn(|| {});
        h.join().unwrap();
        let f: fn() = std::hint::spin_loop;
        let g: fn() = super::hint::spin_loop;
        assert_eq!(f as usize, g as usize);
    }
}
