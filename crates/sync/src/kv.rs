//! Common key/value representation shared by every layer of the store.
//!
//! Keys and values are opaque byte strings ordered lexicographically, as in
//! LevelDB. The paper's workloads use 8-byte keys and 256-byte values; the
//! helpers here encode `u64` keys big-endian so that numeric order and byte
//! order coincide.

/// An owned key.
pub type Key = Box<[u8]>;

/// An owned value.
pub type Value = Box<[u8]>;

/// Encodes a `u64` as an 8-byte big-endian key.
///
/// Big-endian encoding makes the lexicographic byte order equal to the
/// numeric order, which scans rely on.
///
/// # Examples
///
/// ```
/// use flodb_sync::kv::{decode_u64_key, encode_u64_key};
///
/// let a = encode_u64_key(1);
/// let b = encode_u64_key(2);
/// assert!(a < b);
/// assert_eq!(decode_u64_key(&a), Some(1));
/// ```
#[inline]
pub fn encode_u64_key(k: u64) -> Key {
    Box::new(k.to_be_bytes())
}

/// Decodes an 8-byte big-endian key back to a `u64`.
///
/// Returns `None` if the slice is not exactly 8 bytes long.
#[inline]
pub fn decode_u64_key(bytes: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = bytes.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// Returns the partition index given the `l` most significant bits of an
/// 8-byte key, as used by the Membuffer partitioning scheme (§4.3).
///
/// Keys shorter than 8 bytes are zero-extended on the right, so short keys
/// land in a well-defined partition. With `l == 0` everything maps to
/// partition 0.
#[inline]
pub fn key_partition(key: &[u8], l_bits: u32) -> usize {
    if l_bits == 0 {
        return 0;
    }
    debug_assert!(l_bits <= 32, "partition bits must be small");
    let mut prefix = [0u8; 8];
    let n = key.len().min(8);
    prefix[..n].copy_from_slice(&key[..n]);
    let v = u64::from_be_bytes(prefix);
    (v >> (64 - l_bits)) as usize
}

/// A key-value pair with an optional value, where `None` encodes the
/// tombstone left behind by a delete (§3.2: "a delete is done by inserting a
/// special tombstone value").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPair {
    /// The key.
    pub key: Key,
    /// `Some(value)` for a put, `None` for a delete tombstone.
    pub value: Option<Value>,
}

impl KvPair {
    /// Creates a put pair.
    pub fn put(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        Self {
            key: key.into(),
            value: Some(value.into()),
        }
    }

    /// Creates a delete tombstone.
    pub fn delete(key: impl Into<Key>) -> Self {
        Self {
            key: key.into(),
            value: None,
        }
    }

    /// Returns whether this pair is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_key_order_matches_numeric_order() {
        let mut keys: Vec<Key> = (0..100u64).rev().map(encode_u64_key).collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(decode_u64_key(k), Some(i as u64));
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert_eq!(decode_u64_key(&[1, 2, 3]), None);
        assert_eq!(decode_u64_key(&[0; 9]), None);
    }

    #[test]
    fn partition_uses_most_significant_bits() {
        let l = 4;
        // Top nibble 0x0 -> partition 0; top nibble 0xF -> partition 15.
        assert_eq!(key_partition(&encode_u64_key(0), l), 0);
        assert_eq!(key_partition(&encode_u64_key(u64::MAX), l), 15);
        // Adjacent keys share a partition.
        let a = key_partition(&encode_u64_key(1000), l);
        let b = key_partition(&encode_u64_key(1001), l);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_zero_bits_is_constant() {
        assert_eq!(key_partition(b"anything", 0), 0);
        assert_eq!(key_partition(b"", 0), 0);
    }

    #[test]
    fn partition_handles_short_keys() {
        assert_eq!(key_partition(b"", 4), 0);
        // A single 0xFF byte zero-extended still has its top nibble set.
        assert_eq!(key_partition(&[0xFF], 4), 15);
    }

    #[test]
    fn tombstone_roundtrip() {
        let p = KvPair::put(encode_u64_key(1), vec![1u8, 2, 3]);
        assert!(!p.is_tombstone());
        let d = KvPair::delete(encode_u64_key(1));
        assert!(d.is_tombstone());
        assert_eq!(p.key, d.key);
    }
}
