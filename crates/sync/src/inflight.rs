//! A phased in-flight counter: a grace period over short critical windows.
//!
//! WAL segment retirement needs to know that every write which was
//! *logged* into a now-sealed segment has also been *applied* to the
//! memory component — otherwise a checkpoint could flush the memory state,
//! the segment could be deleted, and a write that was logged there but
//! applied (and acknowledged!) just after the flush would survive only in
//! the deleted file. The logged→applied window spans blocking waits
//! (group-commit parking, Memtable-room stalls), so RCU read-side
//! sections can't cover it; and a single in-flight counter never reaches
//! zero under sustained traffic.
//!
//! [`PhasedInflight`] solves this the classic way: **two counters and a
//! phase bit**. Writers enter the counter of the current phase; a
//! quiescer flips the phase and waits only for the *old* phase's counter
//! to drain. Writers arriving after the flip land in the new phase and
//! are not waited for, so the wait is bounded by the windows that were
//! open at the flip — a true grace period, even at full write rate.

use crate::lock_order::WAL_INFLIGHT_QUIESCE;
use crate::shim::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::shim::{ranked_mutex, Mutex};

/// A two-phase in-flight tracker; see the module docs.
///
/// # Examples
///
/// ```
/// use flodb_sync::PhasedInflight;
///
/// let inflight = PhasedInflight::new();
/// let guard = inflight.enter();
/// drop(guard); // the tracked window closed
/// inflight.quiesce_with(|| unreachable!("nothing is in flight"));
/// ```
#[derive(Debug)]
pub struct PhasedInflight {
    /// Low bit selects which counter new entrants use.
    phase: AtomicUsize,
    /// Entrant counts per phase.
    counts: [AtomicU64; 2],
    /// Serializes quiescers (a second flip while the first still waits
    /// would mix two grace periods into one counter).
    quiesce_lock: Mutex<()>,
}

/// An open in-flight window; dropping it closes the window.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    owner: &'a PhasedInflight,
    phase: usize,
}

impl Default for PhasedInflight {
    fn default() -> Self {
        Self::new()
    }
}

impl PhasedInflight {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self {
            phase: AtomicUsize::new(0),
            counts: [AtomicU64::new(0), AtomicU64::new(0)],
            quiesce_lock: ranked_mutex(WAL_INFLIGHT_QUIESCE, ()),
        }
    }

    /// Opens an in-flight window in the current phase.
    ///
    /// The increment-then-recheck dance closes the race with a concurrent
    /// phase flip: if the flip became visible between reading the phase
    /// and incrementing its counter, the entrant backs out and retries in
    /// the new phase. All operations are `SeqCst`, so an entrant whose
    /// recheck still saw the old phase is ordered before the flip — and
    /// its increment is therefore visible to the quiescer's drain check.
    pub fn enter(&self) -> InflightGuard<'_> {
        loop {
            // ORDERING: the whole increment-then-recheck dance is a Dekker
            // protocol with the quiescer's flip-then-drain (see the doc
            // comment above); every operation participates in the single
            // total order or the "recheck saw old phase ⇒ increment
            // visible to the drain" implication does not hold.
            let phase = self.phase.load(Ordering::SeqCst) & 1;
            self.counts[phase].fetch_add(1, Ordering::SeqCst); // ORDERING: Dekker, see comment above
            if self.phase.load(Ordering::SeqCst) & 1 == phase { // ORDERING: Dekker, see comment above
                return InflightGuard { owner: self, phase };
            }
            self.counts[phase].fetch_sub(1, Ordering::SeqCst); // ORDERING: Dekker, see comment above
        }
    }

    /// Flips the phase and waits until every window open at the flip has
    /// closed, calling `service` between checks (the caller may need to
    /// unblock the very windows it waits for — e.g. the persist thread
    /// flushing the Memtable that room-stalled writers are waiting on —
    /// so the wait loop must not just spin).
    pub fn quiesce_with(&self, mut service: impl FnMut()) {
        let _serial = self.quiesce_lock.lock();
        // ORDERING: the quiescer's half of the Dekker pairing with
        // `enter` — the flip RMW and the drain loads must share the
        // entrants' total order, or a window opened before the flip could
        // be missed by the drain check.
        let old = self.phase.fetch_add(1, Ordering::SeqCst) & 1;
        while self.counts[old].load(Ordering::SeqCst) != 0 { // ORDERING: Dekker drain load, see comment above
            service();
            // The service callback need not contain a yield point; under
            // the model checker, deprioritize so the open windows can
            // close (a plain spin would trip the step budget).
            // LOCK-OK: quiesce_lock exists to serialize quiescers; waiting
            // out the drain under it is the intended behavior, and window
            // holders never take it.
            #[cfg(flodb_model)]
            crate::shim::thread::yield_now();
        }
    }

    /// Windows currently open (both phases; diagnostics only).
    pub fn open_windows(&self) -> u64 {
        // Diagnostics only — no protocol depends on these loads, so the
        // weakest ordering suffices.
        self.counts[0].load(Ordering::Relaxed) + self.counts[1].load(Ordering::Relaxed)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: the close must join the same total order as the open
        // and the quiescer's drain loads; a Release decrement could be
        // observed by the drain while the window's writes are not.
        self.owner.counts[self.phase].fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    #[test]
    fn quiesce_on_idle_tracker_returns_immediately() {
        let t = PhasedInflight::new();
        t.quiesce_with(|| panic!("no window can be open"));
        assert_eq!(t.open_windows(), 0);
    }

    #[test]
    fn quiesce_waits_for_windows_open_at_the_flip() {
        let t = Arc::new(PhasedInflight::new());
        let release = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(AtomicBool::new(false));
        let holder = {
            let t = Arc::clone(&t);
            let release = Arc::clone(&release);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                let _g = t.enter();
                entered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
            })
        };
        while !entered.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        let quiesced = {
            let t = Arc::clone(&t);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                t.quiesce_with(|| {
                    // Service unblocks the holder, modeling the persist
                    // thread flushing for a room-stalled writer.
                    release.store(true, Ordering::SeqCst);
                    thread::yield_now();
                });
            })
        };
        quiesced.join().unwrap();
        holder.join().unwrap();
        assert_eq!(t.open_windows(), 0);
    }

    #[test]
    fn quiesce_does_not_wait_for_late_entrants() {
        // A window opened *after* the flip must not extend the grace
        // period: quiesce under a continuous stream of fresh entrants
        // still terminates.
        let t = Arc::new(PhasedInflight::new());
        let stop = Arc::new(AtomicBool::new(false));
        let churn: Vec<_> = (0..3)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _g = t.enter();
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            t.quiesce_with(thread::yield_now);
        }
        stop.store(true, Ordering::SeqCst);
        for h in churn {
            h.join().unwrap();
        }
        t.quiesce_with(|| thread::sleep(Duration::from_micros(50)));
        assert_eq!(t.open_windows(), 0);
    }

    #[test]
    fn every_window_closes_exactly_once_under_churn() {
        let t = Arc::new(PhasedInflight::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for _ in 0..2000 {
                    drop(t.enter());
                }
            }));
        }
        for _ in 0..200 {
            t.quiesce_with(thread::yield_now);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.open_windows(), 0, "counters must balance");
    }
}
