//! Group-commit (leader/follower) batching for a shared append-only log.
//!
//! The FloDB paper's write fast path is lock-free, but a naive commit log
//! serializes every writer on one mutex *per record* — the exact
//! single-writer bottleneck §2.2 identifies in LevelDB. This module keeps
//! the log while un-serializing the writers: producers encode their record
//! into a shared open batch under a short critical section (one memcpy),
//! and exactly one of them — the *leader* — claims the whole batch,
//! commits it with a single log append (and at most one fsync), then wakes
//! the batched *followers* with the shared outcome. Batching is natural:
//! while a leader commits group *g*, every arriving writer accumulates
//! into group *g+1*, so group size adapts to contention.
//!
//! Unlike [`crate::flat_combining::WriteQueue`], which ships each
//! operation as an owned value and hands the leader a `Vec` of them, the
//! committer is allocation-free on the steady-state path: records are
//! encoded directly into a reusable byte buffer, and the two buffers (open
//! + in-flight) swap roles between groups.

use std::collections::HashMap;
use std::mem;
use std::time::{Duration, Instant};

use crate::shim::atomic::{AtomicU64, Ordering};
use crate::lock_order::GROUP_COMMIT_STATE;
use crate::shim::{ranked_condvar, ranked_mutex, Arc, Condvar, Mutex, MutexGuard};

/// Tuning knobs for a [`GroupCommitter`].
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Soft cap on the encoded bytes of one group. Writers that would grow
    /// the open group past this while a leader is busy wait for the next
    /// group instead (backpressure); a single oversized record still
    /// commits alone.
    pub max_group_bytes: usize,
    /// Bytes reserved (zeroed) at the start of every group buffer before
    /// the first record is encoded. Lets the commit closure frame the
    /// batch *in place* — e.g. patch a length/checksum header into the
    /// reserved space — and hand the whole buffer to one write, instead
    /// of re-copying the payload behind a separately-built header.
    pub frame_prefix: usize,
    /// Extra time a fresh leader lingers for the open group to fill before
    /// committing. Zero (the default) commits immediately: batching then
    /// comes purely from writers that arrived while the previous leader
    /// was committing, adding no artificial latency. Note that any commit
    /// that *blocks* (fsync, a throttled device) batches naturally even
    /// at zero: writers that arrive while the leader sleeps fill the open
    /// group, so group size tracks exactly how slow durability is.
    pub max_group_wait: Duration,
    /// How many `yield_now` iterations a follower spends waiting for its
    /// group's commit before parking on a futex. Group commits of
    /// in-memory or OS-buffered appends finish within a few scheduling
    /// windows, and a park/unpark round-trip per record would dominate the
    /// batching win; slow commits (real fsync) blow through the budget and
    /// park, so nothing spins against a millisecond-scale flush.
    ///
    /// **Retuning guidance.** The default of 64 was chosen on a 1-CPU
    /// container, where the spin's yields are what hand the core back to
    /// the leader and batching only forms around *blocking* commits. On
    /// real multi-core hardware followers spin on their own cores while
    /// the leader runs, so the right budget tracks the leader's commit
    /// latency instead of the scheduler: raise it (hundreds of yields)
    /// for buffered appends on fast devices where commits finish in a few
    /// microseconds and parking would dominate, and lower it toward zero
    /// when commits fsync a slow device, where every spin cycle is wasted
    /// against a millisecond-scale wait. `0` parks immediately and is
    /// always correct. FloDB exposes this as
    /// `FloDbOptions::wal_follower_spin`, overridable at process start
    /// via the `FLODB_WAL_FOLLOWER_SPIN` environment variable, so the
    /// retune needs no rebuild.
    pub follower_spin: u32,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_group_bytes: 1024 * 1024,
            frame_prefix: 0,
            max_group_wait: Duration::ZERO,
            follower_spin: 64,
        }
    }
}

/// How a [`GroupCommitter::submit`] call was completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitRole {
    /// The caller claimed the batch and ran the commit itself.
    Leader {
        /// Submissions (records) in the committed group, caller included.
        records: u64,
        /// Encoded payload bytes of the committed group.
        bytes: u64,
    },
    /// Another thread's commit covered the caller's record.
    Follower,
}

/// Outcome of a committed group, held until every member has observed it.
struct GroupOutcome<E> {
    err: Option<Arc<E>>,
    /// Followers that have not yet collected the outcome.
    remaining: u64,
}

struct State<E> {
    /// Encoded payload of the open (not yet claimed) group.
    buf: Vec<u8>,
    /// Submissions in the open group.
    members: u64,
    /// Id of the open group; the first group is 1.
    open_group: u64,
    /// Whether a leader currently owns a claimed group.
    leader_active: bool,
    /// Whether that leader is lingering for fill (`max_group_wait`).
    leader_lingering: bool,
    /// Spare buffer swapped in when a group is claimed; retains its
    /// capacity across groups so steady state allocates nothing.
    spare: Vec<u8>,
    /// Threads currently parked on `done_cv`; lets an uncontended publish
    /// skip the broadcast entirely.
    parked: u64,
    /// Outcomes of committed multi-member groups, keyed by group id.
    outcomes: HashMap<u64, GroupOutcome<E>>,
}

/// A leader/follower group committer over an append-only byte log.
///
/// Producers call [`submit`](Self::submit) with an `encode` closure that
/// appends their record to the open batch and a `commit` closure that
/// durably appends a whole batch; exactly one producer per group runs
/// `commit`, the rest block until the group's outcome is published. Commit
/// errors are broadcast: every member of a failed group gets the same
/// shared error, so callers can propagate or poison deterministically.
///
/// # Examples
///
/// ```
/// use flodb_sync::{CommitRole, GroupCommitConfig, GroupCommitter};
///
/// let gc: GroupCommitter<std::io::Error> =
///     GroupCommitter::new(GroupCommitConfig::default());
/// let role = gc
///     .submit(|buf| buf.extend_from_slice(b"record"), |payload| {
///         assert_eq!(payload, b"record");
///         Ok(())
///     })
///     .unwrap();
/// assert_eq!(role, CommitRole::Leader { records: 1, bytes: 6 });
/// ```
pub struct GroupCommitter<E> {
    cfg: GroupCommitConfig,
    state: Mutex<State<E>>,
    /// Highest committed group id, readable without the lock so followers
    /// can spin briefly before parking.
    committed: AtomicU64,
    /// Followers (and would-be leaders) park here.
    done_cv: Condvar,
    /// Writers blocked on an over-full open group park here.
    room_cv: Condvar,
    /// A lingering leader parks here waiting for fill.
    fill_cv: Condvar,
}

impl<E: Send + Sync> GroupCommitter<E> {
    /// Creates a committer with the given tuning.
    pub fn new(cfg: GroupCommitConfig) -> Self {
        Self {
            cfg,
            state: ranked_mutex(GROUP_COMMIT_STATE, State {
                buf: Vec::new(),
                members: 0,
                open_group: 1,
                leader_active: false,
                leader_lingering: false,
                spare: Vec::new(),
                parked: 0,
                outcomes: HashMap::new(),
            }),
            committed: AtomicU64::new(0),
            done_cv: ranked_condvar(GROUP_COMMIT_STATE),
            room_cv: ranked_condvar(GROUP_COMMIT_STATE),
            fill_cv: ranked_condvar(GROUP_COMMIT_STATE),
        }
    }

    /// Submits one record and blocks until its group has committed.
    ///
    /// `encode` appends the record's bytes to the open group's buffer; it
    /// runs under the committer lock, so it must be short (encode and
    /// copy — no I/O, no allocation beyond growing the buffer). `commit`
    /// persists an entire group payload; it runs outside the lock, on the
    /// one caller per group that became leader. The sequence-number source
    /// can be sampled inside `encode` to make log order match sequence
    /// order exactly.
    ///
    /// Returns the caller's [`CommitRole`] on success. If the group's
    /// commit failed, **every** member receives the same shared error —
    /// none of the group's records are acknowledged.
    pub fn submit<Enc, Commit>(&self, encode: Enc, commit: Commit) -> Result<CommitRole, Arc<E>>
    where
        Enc: FnOnce(&mut Vec<u8>),
        Commit: FnOnce(&mut Vec<u8>) -> Result<(), E>,
    {
        let mut state = self.state.lock();
        // Backpressure: join the *next* group once this one is oversized
        // (only meaningful while a leader is busy — otherwise we would
        // claim the batch ourselves right below).
        while state.leader_active && state.buf.len() >= self.cfg.max_group_bytes {
            self.room_cv.wait(&mut state);
        }
        let group = state.open_group;
        if state.buf.len() < self.cfg.frame_prefix {
            // First record of a fresh group: reserve the header space.
            state.buf.resize(self.cfg.frame_prefix, 0);
        }
        encode(&mut state.buf);
        state.members += 1;
        if state.leader_lingering
            && (state.buf.len() >= self.cfg.max_group_bytes || state.members > 1)
        {
            self.fill_cv.notify_one();
        }

        // Leader check must precede any waiting: if no leader is active,
        // nobody else will commit this group for us.
        if !state.leader_active {
            return self.lead(state, commit);
        }

        // Spin on the lock-free committed counter before parking: group
        // commits of buffered appends are short, and a futex round-trip
        // per record would dominate the saved work under high contention.
        // The spin yields, so on an oversubscribed machine it is also what
        // hands the CPU back to the leader.
        drop(state);
        let mut spins = 0u32;
        while self.committed.load(Ordering::Acquire) < group {
            if spins < 8 {
                crate::shim::hint::spin_loop();
            } else if spins < 8 + self.cfg.follower_spin {
                crate::shim::thread::yield_now();
            } else {
                break;
            }
            spins += 1;
        }

        let mut state = self.state.lock();
        loop {
            if self.committed.load(Ordering::Acquire) >= group {
                return Self::collect_outcome(&mut state, group);
            }
            if !state.leader_active {
                // The previous leader finished without covering our group:
                // claim it ourselves (our record is in the open batch).
                return self.lead(state, commit);
            }
            state.parked += 1;
            self.done_cv.wait(&mut state);
            state.parked -= 1;
        }
    }

    /// Claims the open group and commits it. Called with the lock held and
    /// `leader_active == false`; the caller's record is already encoded.
    fn lead<'a, Commit>(
        &'a self,
        mut state: MutexGuard<'a, State<E>>,
        commit: Commit,
    ) -> Result<CommitRole, Arc<E>>
    where
        Commit: FnOnce(&mut Vec<u8>) -> Result<(), E>,
    {
        state.leader_active = true;
        if !self.cfg.max_group_wait.is_zero() {
            // Linger for fill: encoders notify `fill_cv` on arrival.
            let deadline = Instant::now() + self.cfg.max_group_wait;
            state.leader_lingering = true;
            while state.buf.len() < self.cfg.max_group_bytes {
                if self.fill_cv.wait_until(&mut state, deadline).timed_out() {
                    break;
                }
            }
            state.leader_lingering = false;
        }

        // Claim: swap the open buffer out, open the next group.
        let spare = mem::take(&mut state.spare);
        let mut payload = mem::replace(&mut state.buf, spare);
        let members = state.members;
        state.members = 0;
        let claimed = state.open_group;
        state.open_group += 1;
        self.room_cv.notify_all();
        drop(state);

        let err = commit(&mut payload).err().map(Arc::new);
        let bytes = payload.len() as u64;

        let mut state = self.state.lock();
        // Return the buffer for reuse (capacity retained).
        payload.clear();
        state.spare = payload;
        if members > 1 {
            state.outcomes.insert(
                claimed,
                GroupOutcome {
                    err: err.clone(),
                    remaining: members - 1,
                },
            );
        }
        // Publish inside the lock: followers re-check `committed` under
        // the same lock before parking, so the wakeup cannot be missed —
        // and `parked` is exact, so an uncontended publish skips the
        // broadcast.
        self.committed.store(claimed, Ordering::Release);
        state.leader_active = false;
        let any_parked = state.parked > 0;
        drop(state);
        if any_parked {
            self.done_cv.notify_all();
        }

        match err {
            Some(e) => Err(e),
            None => Ok(CommitRole::Leader {
                records: members,
                bytes,
            }),
        }
    }

    /// Collects a follower's share of a committed group's outcome.
    fn collect_outcome(
        state: &mut State<E>,
        group: u64,
    ) -> Result<CommitRole, Arc<E>> {
        if let Some(outcome) = state.outcomes.get_mut(&group) {
            let err = outcome.err.clone();
            outcome.remaining -= 1;
            if outcome.remaining == 0 {
                state.outcomes.remove(&group);
            }
            match err {
                Some(e) => Err(e),
                None => Ok(CommitRole::Follower),
            }
        } else {
            // Single-member groups publish no outcome entry; a successful
            // group with one member is always completed by its leader, so
            // reaching here means the group succeeded.
            Ok(CommitRole::Follower)
        }
    }

    /// Encoded bytes currently waiting in the open group.
    pub fn pending_bytes(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Highest committed group id so far.
    pub fn groups_committed(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::thread;

    use super::*;

    type Committer = GroupCommitter<String>;

    fn committer() -> Committer {
        GroupCommitter::new(GroupCommitConfig::default())
    }

    #[test]
    fn single_submit_leads_its_own_group() {
        let gc = committer();
        let role = gc
            .submit(
                |buf| buf.extend_from_slice(b"abc"),
                |payload| {
                    assert_eq!(payload, b"abc");
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(role, CommitRole::Leader { records: 1, bytes: 3 });
        assert_eq!(gc.pending_bytes(), 0);
        assert_eq!(gc.groups_committed(), 1);
    }

    #[test]
    fn every_byte_reaches_the_log_exactly_once() {
        const THREADS: usize = 8;
        const OPS: u64 = 300;
        let gc = Arc::new(committer());
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let gc = Arc::clone(&gc);
            let log = Arc::clone(&log);
            handles.push(thread::spawn(move || {
                for i in 0..OPS {
                    let rec = [t as u8, (i >> 8) as u8, i as u8];
                    gc.submit(
                        |buf| buf.extend_from_slice(&rec),
                        |payload| {
                            log.lock().extend_from_slice(payload);
                            Ok(())
                        },
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), THREADS * OPS as usize * 3);
        // Every record present exactly once, and each thread's records
        // appear in its submission order (acks are sequential per thread).
        for t in 0..THREADS as u8 {
            let mine: Vec<u64> = log
                .chunks(3)
                .filter(|c| c[0] == t)
                .map(|c| u64::from(c[1]) << 8 | u64::from(c[2]))
                .collect();
            let expected: Vec<u64> = (0..OPS).collect();
            assert_eq!(mine, expected, "thread {t} records lost or reordered");
        }
    }

    #[test]
    fn commits_are_mutually_exclusive_and_batched() {
        let gc = Arc::new(committer());
        let in_commit = Arc::new(AtomicBool::new(false));
        let groups = Arc::new(AtomicU64::new(0));
        let records = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gc = Arc::clone(&gc);
            let in_commit = Arc::clone(&in_commit);
            let groups = Arc::clone(&groups);
            let records = Arc::clone(&records);
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    let role = gc
                        .submit(
                            |buf| buf.push(1),
                            |payload| {
                                assert!(
                                    !in_commit.swap(true, Ordering::SeqCst),
                                    "two leaders committed concurrently"
                                );
                                groups.fetch_add(1, Ordering::Relaxed);
                                records.fetch_add(payload.len() as u64, Ordering::Relaxed);
                                in_commit.store(false, Ordering::SeqCst);
                                Ok(())
                            },
                        )
                        .unwrap();
                    if let CommitRole::Leader { records, .. } = role {
                        assert!(records >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(records.load(Ordering::Relaxed), 4 * 200);
        assert_eq!(groups.load(Ordering::Relaxed), gc.groups_committed());
        assert!(groups.load(Ordering::Relaxed) <= 4 * 200);
    }

    #[test]
    fn commit_error_reaches_every_group_member() {
        const THREADS: usize = 6;
        let gc = Arc::new(committer());
        let failures = Arc::new(AtomicU64::new(0));
        // A barrier maximizes the chance of multi-member groups, but the
        // property holds for any grouping: every submit must see Err.
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let gc = Arc::clone(&gc);
            let failures = Arc::clone(&failures);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                for _ in 0..50 {
                    let out = gc.submit(
                        |buf| buf.push(7),
                        |_| Err("disk on fire".to_string()),
                    );
                    match out {
                        Err(e) => {
                            assert!(e.contains("disk on fire"));
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(role) => panic!("commit must fail, got {role:?}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(failures.load(Ordering::Relaxed), (THREADS * 50) as u64);
        // Outcome map fully drained: no leaked entries.
        assert!(gc.state.lock().outcomes.is_empty());
    }

    #[test]
    fn oversized_open_group_applies_backpressure() {
        let gc: Committer = GroupCommitter::new(GroupCommitConfig {
            max_group_bytes: 8,
            ..GroupCommitConfig::default()
        });
        // A single record larger than the cap still commits (soft cap).
        let role = gc
            .submit(|buf| buf.extend_from_slice(&[0u8; 64]), |_| Ok(()))
            .unwrap();
        assert_eq!(role, CommitRole::Leader { records: 1, bytes: 64 });
    }

    #[test]
    fn lingering_leader_still_commits_alone() {
        // With max_group_wait set and no other writers, the leader must
        // time out and commit its singleton group.
        let gc: Committer = GroupCommitter::new(GroupCommitConfig {
            max_group_bytes: 1024,
            max_group_wait: Duration::from_millis(5),
            ..GroupCommitConfig::default()
        });
        let t0 = Instant::now();
        let role = gc.submit(|buf| buf.push(9), |_| Ok(())).unwrap();
        assert_eq!(role, CommitRole::Leader { records: 1, bytes: 1 });
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn zero_follower_spin_parks_immediately_and_loses_nothing() {
        // The park path must be correct on its own: with the spin budget
        // at zero every follower goes straight to the condvar, and the
        // outcome protocol still delivers each record exactly once.
        let gc: Arc<Committer> = Arc::new(GroupCommitter::new(GroupCommitConfig {
            follower_spin: 0,
            ..GroupCommitConfig::default()
        }));
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gc = Arc::clone(&gc);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    gc.submit(
                        |buf| buf.push(1),
                        |payload| {
                            total.fetch_add(payload.len() as u64, Ordering::Relaxed);
                            Ok(())
                        },
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 200);
    }

    #[test]
    fn buffers_are_reused_across_groups() {
        let gc = committer();
        for _ in 0..3 {
            gc.submit(|buf| buf.extend_from_slice(&[0u8; 512]), |_| Ok(()))
                .unwrap();
        }
        let state = gc.state.lock();
        assert!(state.spare.capacity() >= 512, "spare buffer must be retained");
        assert!(state.buf.is_empty());
    }
}
