//! Read-copy-update domains for memory-component switching.
//!
//! FloDB switches memory components (installing a fresh Membuffer before a
//! scan, or a fresh Memtable before persisting) with an RCU scheme that
//! "never blocks any updates or reads" (§4.2): the switching thread installs
//! the new component with a single atomic store and then waits for a grace
//! period, i.e. until every thread that might still be operating on the old
//! component has finished its critical section.
//!
//! The implementation is an epoch-based quiescent-state scheme:
//!
//! - every thread owns one *reader slot* per domain (lazily registered
//!   through a thread local), holding the global epoch it observed when it
//!   entered its current critical section, or 0 when quiescent;
//! - [`RcuDomain::synchronize`] bumps the global epoch and waits until every
//!   slot is either quiescent or stamped with the new epoch.
//!
//! Readers and writers only ever perform two uncontended atomic stores per
//! critical section; all waiting happens on the background thread calling
//! `synchronize`, exactly as the paper requires.

use std::cell::RefCell;
use std::collections::HashMap;

use crossbeam_utils::CachePadded;

use crate::backoff::Backoff;
use crate::shim::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::lock_order::SYNC_RCU_REGISTRY;
use crate::shim::{ranked_mutex, Arc, Mutex};

/// Epochs advance by 2 so that the low bit is free to mark "active".
const EPOCH_STEP: u64 = 2;
/// Slot value for a thread outside any critical section.
const QUIESCENT: u64 = 0;

static NEXT_DOMAIN_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Per-thread map from domain id to this thread's reader slot.
    static SLOTS: RefCell<HashMap<usize, ThreadSlot>> = RefCell::new(HashMap::new());
}

struct ThreadSlot {
    slot: Arc<ReaderSlot>,
    /// Critical-section nesting depth; the slot is only cleared when the
    /// outermost guard drops.
    nesting: usize,
}

#[derive(Debug)]
struct ReaderSlot {
    /// 0 when quiescent, otherwise `epoch | 1` for the epoch observed on
    /// entering the critical section.
    state: CachePadded<AtomicU64>,
    /// Set when the owning thread exits; pruned by the next `synchronize`.
    retired: CachePadded<AtomicU64>,
}

impl ReaderSlot {
    fn new() -> Self {
        Self {
            state: CachePadded::new(AtomicU64::new(QUIESCENT)),
            retired: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// Drop guard that retires the slot when its owning thread exits.
struct SlotRetirer(Arc<ReaderSlot>);

impl Drop for SlotRetirer {
    fn drop(&mut self) {
        self.0.retired.store(1, Ordering::Release);
        self.0.state.store(QUIESCENT, Ordering::Release);
    }
}

/// An RCU domain: a set of reader slots plus a global epoch.
///
/// Each logically independent RCU-protected structure (the Membuffer pointer,
/// the Memtable pointer) gets its own domain so grace periods do not couple
/// unrelated critical sections.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use flodb_sync::RcuDomain;
///
/// let domain = Arc::new(RcuDomain::new());
/// {
///     let _guard = domain.read_lock();
///     // ... dereference the RCU-protected pointer ...
/// }
/// // After all pre-existing guards drop, synchronize returns.
/// domain.synchronize();
/// ```
#[derive(Debug)]
pub struct RcuDomain {
    id: usize,
    epoch: CachePadded<AtomicU64>,
    registry: Mutex<Vec<Arc<ReaderSlot>>>,
}

impl RcuDomain {
    /// Creates a new, empty domain.
    pub fn new() -> Self {
        Self {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            epoch: CachePadded::new(AtomicU64::new(EPOCH_STEP)),
            registry: ranked_mutex(SYNC_RCU_REGISTRY, Vec::new()),
        }
    }

    /// Enters an RCU read-side critical section on the calling thread.
    ///
    /// Critical sections may nest; the section ends when the outermost guard
    /// is dropped. This never blocks: the cost is one atomic load and one
    /// store on the thread's own cache-padded slot.
    pub fn read_lock(&self) -> RcuGuard<'_> {
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            let entry = slots.entry(self.id).or_insert_with(|| {
                let slot = Arc::new(ReaderSlot::new());
                self.registry.lock().push(Arc::clone(&slot));
                REAPERS.with(|r| r.borrow_mut().push(SlotRetirer(Arc::clone(&slot))));
                ThreadSlot { slot, nesting: 0 }
            });
            if entry.nesting == 0 {
                // Restabilization loop: store the observed epoch, then
                // re-check it. On exit, either the final epoch load saw no
                // concurrent `synchronize` — in which case the slot store
                // is SC-ordered before that synchronize's slot scan, which
                // therefore waits for this section — or it saw the bump,
                // in which case the RMW in `synchronize` happens-before
                // this section, so the section observes the new pointer.
                // Without the loop, a thread descheduled between the epoch
                // load and the slot store could be missed by the scan while
                // still reading the old pointer.
                // ORDERING: every operation in the restabilization loop is
                // SC — the argument above is stated in terms of the single
                // total order between the slot store, the epoch loads, and
                // the synchronizer's epoch RMW and slot scan.
                let mut epoch = self.epoch.load(Ordering::SeqCst);
                loop {
                    entry.slot.state.store(epoch | 1, Ordering::SeqCst); // ORDERING: restabilization, see comment above
                    let now = self.epoch.load(Ordering::SeqCst); // ORDERING: restabilization, see comment above
                    if now == epoch {
                        break;
                    }
                    epoch = now;
                }
            }
            entry.nesting += 1;
        });
        RcuGuard {
            domain: self,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Waits for a grace period: every critical section that was in progress
    /// when `synchronize` was called is guaranteed to have completed when it
    /// returns.
    ///
    /// Callers publish their pointer switch (e.g. installing a fresh
    /// Membuffer) *before* calling this, then safely reclaim or drain the
    /// old structure afterwards.
    pub fn synchronize(&self) {
        // ORDERING: the grace-period side of the reader protocol — the
        // epoch bump RMW must be SC-ordered with the readers'
        // restabilization loop (see `read_lock`).
        let new_epoch = self.epoch.fetch_add(EPOCH_STEP, Ordering::SeqCst) + EPOCH_STEP;
        let mut registry = self.registry.lock();
        registry.retain(|slot| slot.retired.load(Ordering::Acquire) == 0);
        for slot in registry.iter() {
            let backoff = Backoff::new();
            loop {
                // ORDERING: the scan load pairs with the readers' SC slot
                // stores; seeing QUIESCENT or a post-bump epoch here must
                // imply the reader's section is ordered before the bump.
                let state = slot.state.load(Ordering::SeqCst);
                if state == QUIESCENT || (state & !1) >= new_epoch {
                    break;
                }
                if slot.retired.load(Ordering::Acquire) != 0 {
                    break;
                }
                // LOCK-OK: synchronize holds the registry while waiting
                // readers out by design; read-side sections never take the
                // registry, so the wait cannot feed back into a deadlock.
                backoff.snooze();
            }
        }
    }

    /// Returns the number of registered (non-retired) reader slots, for
    /// diagnostics and tests.
    pub fn reader_slots(&self) -> usize {
        self.registry
            .lock()
            .iter()
            .filter(|s| s.retired.load(Ordering::Acquire) == 0)
            .count()
    }

    fn read_unlock(&self) {
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            let entry = slots
                .get_mut(&self.id)
                .expect("read_unlock without read_lock");
            entry.nesting -= 1;
            if entry.nesting == 0 {
                // ORDERING: the quiescent store must be SC-ordered after
                // the section's reads so a synchronizer that observes it
                // can safely reclaim what the section was reading.
                entry.slot.state.store(QUIESCENT, Ordering::SeqCst);
            }
        });
    }
}

impl Default for RcuDomain {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Keeps one retirer per (thread, domain); dropping them on thread exit
    /// marks the slots retired so `synchronize` can prune them.
    static REAPERS: RefCell<Vec<SlotRetirer>> = const { RefCell::new(Vec::new()) };
}

/// Guard for an RCU read-side critical section; ends the section on drop.
///
/// The guard is `!Send` (via the raw-pointer marker): the critical section
/// must end on the thread that started it, because the reader slot lives in
/// that thread's local storage.
#[derive(Debug)]
pub struct RcuGuard<'a> {
    domain: &'a RcuDomain,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RcuGuard<'_> {
    fn drop(&mut self) {
        self.domain.read_unlock();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    #[test]
    fn uncontended_synchronize_returns() {
        let d = RcuDomain::new();
        d.synchronize();
        d.synchronize();
    }

    #[test]
    fn guard_nesting() {
        let d = RcuDomain::new();
        let g1 = d.read_lock();
        let g2 = d.read_lock();
        drop(g1);
        drop(g2);
        d.synchronize();
    }

    #[test]
    fn synchronize_waits_for_active_reader() {
        let d = Arc::new(RcuDomain::new());
        let in_cs = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let d = Arc::clone(&d);
            let in_cs = Arc::clone(&in_cs);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let g = d.read_lock();
                in_cs.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
                drop(g);
            })
        };

        while !in_cs.load(Ordering::SeqCst) {
            thread::yield_now();
        }

        let syncer = {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                d.synchronize();
                done.store(true, Ordering::SeqCst);
            })
        };

        // The reader is parked inside its critical section, so synchronize
        // must not complete yet.
        thread::sleep(Duration::from_millis(50));
        assert!(!done.load(Ordering::SeqCst));

        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        syncer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn synchronize_does_not_wait_for_later_readers() {
        // A reader that enters after synchronize started must not block it
        // forever; we simulate by entering and exiting repeatedly while a
        // synchronize runs.
        let d = Arc::new(RcuDomain::new());
        let stop = Arc::new(AtomicBool::new(false));
        let churn = {
            let d = Arc::clone(&d);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let _g = d.read_lock();
                }
            })
        };
        for _ in 0..100 {
            d.synchronize();
        }
        stop.store(true, Ordering::SeqCst);
        churn.join().unwrap();
    }

    #[test]
    fn dead_threads_do_not_block_synchronize() {
        let d = Arc::new(RcuDomain::new());
        {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                let _g = d.read_lock();
                // Guard dropped at end of scope; thread exits.
            })
            .join()
            .unwrap();
        }
        d.synchronize();
    }

    #[test]
    fn grace_period_protects_pointer_switch() {
        use std::sync::atomic::AtomicPtr;

        // Classic RCU pattern: swap a boxed value, synchronize, free the old
        // one. Readers must never observe a freed value.
        let d = Arc::new(RcuDomain::new());
        let ptr = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(0u64))));
        let stop = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let ptr = Arc::clone(&ptr);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let _g = d.read_lock();
                    let p = ptr.load(Ordering::SeqCst);
                    // SAFETY: `p` was published by the writer and is only
                    // freed after a grace period; we are inside a read-side
                    // critical section, so it is still live.
                    let v = unsafe { *p };
                    assert!(v < 10_000, "observed a freed or corrupt value");
                }
            }));
        }

        for i in 1..200u64 {
            let new = Box::into_raw(Box::new(i));
            let old = ptr.swap(new, Ordering::SeqCst);
            d.synchronize();
            // SAFETY: All readers that could have observed `old` have left
            // their critical sections (grace period elapsed), and no new
            // reader can load it since `new` was published first.
            unsafe { drop(Box::from_raw(old)) };
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        // SAFETY: All reader threads have been joined; nothing can reference
        // the final pointer anymore.
        unsafe { drop(Box::from_raw(ptr.load(Ordering::SeqCst))) };
    }
}
