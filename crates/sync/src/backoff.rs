//! Bounded exponential backoff for contended atomic loops.

use crate::shim::{hint, thread};

/// Number of doubling steps spent spinning before yielding to the scheduler.
const SPIN_LIMIT: u32 = 6;
/// Number of doubling steps after which [`Backoff::is_completed`] reports
/// that blocking (e.g. parking) would be preferable.
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff helper for optimistic concurrency loops.
///
/// Starts with busy spinning (`spin_loop` hints), escalates to
/// `thread::yield_now`, and reports completion so callers can switch to a
/// heavier blocking strategy. The shape mirrors `crossbeam_utils::Backoff`
/// but is self-contained so the data-structure crates depend only on this
/// substrate.
///
/// # Examples
///
/// ```
/// use flodb_sync::Backoff;
///
/// let backoff = Backoff::new();
/// let mut tries = 0;
/// while tries < 3 {
///     backoff.snooze();
///     tries += 1;
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Creates a fresh backoff in the spinning state.
    pub fn new() -> Self {
        Self {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the backoff to the initial (pure spin) state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off for a failed compare-and-swap: spins exponentially but
    /// never yields, suitable for very short critical windows.
    ///
    /// Under `cfg(flodb_model)` the exponential spin collapses to a single
    /// deprioritizing yield: each hint is a scheduler decision point, and
    /// thousands of them would blow up the schedule space without adding
    /// interleavings (the model has no cache contention to back off from).
    pub fn spin(&self) {
        #[cfg(flodb_model)]
        hint::spin_loop();
        #[cfg(not(flodb_model))]
        {
            let step = self.step.get().min(SPIN_LIMIT);
            for _ in 0..(1u32 << step) {
                hint::spin_loop();
            }
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off while waiting for another thread to make progress: spins
    /// first, then yields to the OS scheduler. Collapses to one yield under
    /// `cfg(flodb_model)` (see [`Backoff::spin`]).
    pub fn snooze(&self) {
        let step = self.step.get();
        #[cfg(flodb_model)]
        thread::yield_now();
        #[cfg(not(flodb_model))]
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Returns `true` once backoff has escalated far enough that the caller
    /// should block instead of spinning further.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_escalates_and_resets() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT + 1 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_does_not_overflow() {
        let b = Backoff::new();
        for _ in 0..1000 {
            b.spin();
        }
        // The step counter saturates; a further spin must not panic.
        b.spin();
    }

    #[test]
    fn default_is_fresh() {
        let b = Backoff::default();
        assert!(!b.is_completed());
    }
}
