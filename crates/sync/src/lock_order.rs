//! Runtime lock-rank tracking: the dynamic half of the lock hierarchy.
//!
//! `LOCK_ORDER.toml` at the workspace root declares every lock in the
//! modeled crates as a member of a ranked class; `cargo xtask locks`
//! enforces the declaration statically, but a lexical pass only sees
//! same-function nesting. This module closes the interprocedural gap: in
//! debug and `--cfg flodb_model` builds, every mutex or rwlock built with
//! [`crate::shim::ranked_mutex`] / [`crate::shim::ranked_rwlock`] pushes
//! its class onto a thread-local stack while its guard is live, and an
//! acquisition whose rank does not strictly exceed every held rank panics
//! with both lock names. Rank order is acyclic by construction, so a
//! run that never panics can never have deadlocked on these locks either.
//!
//! In release builds without `flodb_model` the shim re-exports the raw
//! primitives and the ranked constructors compile to the plain ones —
//! zero cost, proven by the type-identity test in `shim.rs`.
//!
//! The constants below are the single runtime source of ranks. Each is
//! written on one line as `LockClass { name: "...", rank: N }` because
//! `cargo xtask locks` parses this file textually and fails if the set of
//! (name, rank) pairs drifts from `LOCK_ORDER.toml` in either direction.

/// One ranked class of locks. Outer (coarse) locks get low ranks, inner
/// (leaf) locks high ranks; acquiring is legal only in strictly
/// ascending rank order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    /// Class name, matching `LOCK_ORDER.toml` (e.g. `core.freeze`).
    pub name: &'static str,
    /// Rank; must strictly increase along every acquisition edge.
    pub rank: u32,
}

/// `FloDb.threads`: joined on close; taken only at startup/shutdown.
pub const CORE_THREADS: LockClass = LockClass { name: "core.threads", rank: 10 };
/// `ScanCoordinator.state` (+cv): scan admission and drain-pause protocol.
pub const SCAN_COORDINATOR: LockClass = LockClass { name: "scan.coordinator", rank: 12 };
/// `WriteQueue.inner` (+condvar): the flat-combining baseline queue.
pub const SYNC_WRITE_QUEUE: LockClass = LockClass { name: "sync.write_queue", rank: 14 };
/// `GroupCommitter.state` (+done/room/fill cvs): WAL group-commit batches.
pub const GROUP_COMMIT_STATE: LockClass = LockClass { name: "group_commit.state", rank: 16 };
/// `PhasedInflight.quiesce_lock`: serializes graced-period quiescers.
pub const WAL_INFLIGHT_QUIESCE: LockClass = LockClass { name: "wal.inflight_quiesce", rank: 20 };
/// `Inner.freeze_lock`: serializes memory-component freezes in flodb-core.
pub const CORE_FREEZE: LockClass = LockClass { name: "core.freeze", rank: 22 };
/// `ViewCell.switch_lock`: serializes view switches (held across RCU sync).
pub const CORE_VIEW_SWITCH: LockClass = LockClass { name: "core.view_switch", rank: 30 };
/// `RcuDomain.registry`: reader-slot registry; synchronize scans under it.
pub const SYNC_RCU_REGISTRY: LockClass = LockClass { name: "sync.rcu_registry", rank: 34 };
/// `WalState.log`: the WAL append path (leader holds it across fsync).
pub const WAL_LOG: LockClass = LockClass { name: "wal.log", rank: 40 };
/// `WalState.poison`: sticky WAL failure, set on the append error path.
pub const WAL_POISON: LockClass = LockClass { name: "wal.poison", rank: 42 };
/// `Inner.room` (+room_cv): writers stall here when the memtable is full.
pub const CORE_ROOM: LockClass = LockClass { name: "core.room", rank: 50 };
/// `Inner.persist_park` (+persist_cv): the persist thread's park/wake.
pub const CORE_PERSIST_PARK: LockClass = LockClass { name: "core.persist_park", rank: 52 };
/// `Inner.degraded_reason`: sticky degraded-mode cause.
pub const CORE_DEGRADED: LockClass = LockClass { name: "core.degraded", rank: 54 };
/// `PauseFlag.lock` (+condvar): pause/resume bookkeeping (leaf).
pub const SYNC_PAUSE: LockClass = LockClass { name: "sync.pause", rank: 56 };
/// `TraceRing.dump_lock`: serializes flight-recorder dumps (leaf).
pub const CORE_TRACE_DUMP: LockClass = LockClass { name: "core.trace_dump", rank: 58 };
/// `DiskComponent.compaction_lock`: serializes compactions.
pub const DISK_COMPACTION: LockClass = LockClass { name: "disk.compaction", rank: 60 };
/// `DiskComponent.manifest`: manifest writer (held across append+fsync).
pub const DISK_MANIFEST: LockClass = LockClass { name: "disk.manifest", rank: 62 };
/// `VersionSet.current`: the current LSM version pointer.
pub const VERSION_CURRENT: LockClass = LockClass { name: "version.current", rank: 64 };
/// `FileHandle.cleanup`: per-file deferred cleanup slot.
pub const VERSION_CLEANUP: LockClass = LockClass { name: "version.cleanup", rank: 66 };
/// `ShardedTableCache.shards`: one shard of the table cache.
pub const CACHE_SHARD: LockClass = LockClass { name: "cache.shard", rank: 70 };
/// `GlobalLockTableCache.state`: the global-lock baseline cache.
pub const CACHE_GLOBAL: LockClass = LockClass { name: "cache.global", rank: 72 };
/// `FaultState.plans`: armed fault-injection plans.
pub const FAULT_PLANS: LockClass = LockClass { name: "fault.plans", rank: 80 };
/// `FaultState.counters`: per-site fault counters.
pub const FAULT_COUNTERS: LockClass = LockClass { name: "fault.counters", rank: 82 };
/// `MemEnv.inner`: the in-memory filesystem's directory map.
pub const ENV_INNER: LockClass = LockClass { name: "env.inner", rank: 90 };
/// `MemEnv.throttle` / `MemWritable.throttle`: the shared token bucket.
pub const ENV_THROTTLE: LockClass = LockClass { name: "env.throttle", rank: 92 };
/// `MemEnvInner.files` / `Mem{Writable,Random}.data`: per-file byte store.
pub const ENV_DATA: LockClass = LockClass { name: "env.data", rank: 94 };
/// `FsRandom.file`: seek+read serialization on a real file handle.
pub const ENV_FILE: LockClass = LockClass { name: "env.file", rank: 96 };

#[cfg(any(debug_assertions, flodb_model))]
pub(crate) mod tracker {
    //! The thread-local rank stack. Guards may be dropped out of LIFO
    //! order (e.g. `drop(outer)` before `inner` falls out of scope), so
    //! entries carry a monotonic token and are removed by token, not
    //! popped.

    use super::LockClass;
    use std::cell::{Cell, RefCell};

    thread_local! {
        static HELD: RefCell<Vec<(LockClass, u64)>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    /// Records an acquisition; panics on a rank inversion.
    pub(crate) fn acquired(class: LockClass) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some((worst, _)) = held
                .iter()
                .filter(|(h, _)| h.rank >= class.rank)
                .max_by_key(|(h, _)| h.rank)
            {
                panic!(
                    "lock-order violation: acquiring `{}` (rank {}) while holding `{}` \
                     (rank {}); ranks must strictly ascend — see LOCK_ORDER.toml",
                    class.name, class.rank, worst.name, worst.rank
                );
            }
            let token = NEXT_TOKEN.with(|t| {
                let v = t.get();
                t.set(v + 1);
                v
            });
            held.push((class, token));
            token
        })
    }

    /// Records a release by its acquisition token.
    pub(crate) fn released(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, t)| t == token) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(all(test, any(debug_assertions, flodb_model)))]
mod tests {
    //! The dynamic half of the inversion contract: the same descending
    //! shape the static pass rejects in
    //! `xtask/tests/fixtures/locks/inversion` must panic here. These
    //! tests only exist in builds where the tracker is compiled in;
    //! release builds run the shim's type-identity test instead.

    use super::{CORE_FREEZE, ENV_DATA, ENV_FILE, WAL_LOG};
    use crate::shim::{ranked_mutex, ranked_rwlock};

    #[test]
    fn ascending_acquisition_is_legal() {
        let outer = ranked_mutex(CORE_FREEZE, 1u32); // rank 22
        let inner = ranked_mutex(WAL_LOG, 2u32); // rank 40
        let g = outer.lock();
        let h = inner.lock();
        assert_eq!(*g + *h, 3);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn descending_acquisition_panics() {
        let outer = ranked_mutex(CORE_FREEZE, ()); // rank 22
        let inner = ranked_mutex(WAL_LOG, ()); // rank 40
        let _h = inner.lock();
        let _g = outer.lock(); // 22 under 40: inversion
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_class_nesting_panics() {
        // Two locks of one class self-deadlock in the worst interleaving;
        // equal ranks are rejected like descending ones.
        let a = ranked_mutex(WAL_LOG, ());
        let b = ranked_mutex(WAL_LOG, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn out_of_lifo_release_is_tracked_by_token() {
        let a = ranked_mutex(CORE_FREEZE, ());
        let b = ranked_mutex(WAL_LOG, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released out of LIFO order
        drop(gb);
        let _ga2 = a.lock(); // stack must be empty again
    }

    #[test]
    fn untracked_locks_stay_outside_the_hierarchy() {
        let plain = crate::shim::Mutex::new(());
        let ranked = ranked_mutex(CORE_FREEZE, ());
        let _g = plain.lock(); // no rank entry
        let _h = ranked.lock(); // nothing held as far as ranks go
    }

    #[test]
    fn rwlock_accesses_are_ranked() {
        let data = ranked_rwlock(ENV_DATA, 0u8); // rank 94
        let file = ranked_mutex(ENV_FILE, ()); // rank 96
        let _r = data.read();
        let _f = file.lock(); // ascends
        drop(_f);
        drop(_r);
        let _w = data.write();
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn rwlock_read_under_higher_rank_panics() {
        let data = ranked_rwlock(ENV_DATA, 0u8); // rank 94
        let file = ranked_mutex(ENV_FILE, ()); // rank 96
        let _f = file.lock();
        let _r = data.read(); // 94 under 96: inversion
    }
}
