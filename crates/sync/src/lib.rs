//! Concurrency substrate for the FloDB reproduction.
//!
//! This crate provides the low-level synchronization building blocks the
//! paper's memory component relies on (§4.2 of *FloDB: Unlocking Memory in
//! Persistent Key-Value Stores*, EuroSys 2017):
//!
//! - [`rcu::RcuDomain`] — a read-copy-update domain used to switch memory
//!   components (Membuffer / Memtable) without ever blocking readers or
//!   writers, only background threads.
//! - [`seq::SequenceGenerator`] — the global sequence number source used to
//!   order Memtable entries relative to scans.
//! - [`backoff::Backoff`] — bounded exponential backoff for contended CAS
//!   loops.
//! - [`pause::PauseFlag`] — the `pauseWriters` / `pauseDrainingThreads`
//!   protocol flags from Algorithms 2 and 3.
//! - [`flat_combining::WriteQueue`] — a flat-combining write queue modeling
//!   LevelDB's single-writer leader (§2.2), used by the baselines.
//! - [`group_commit::GroupCommitter`] — the leader/follower group-commit
//!   pipeline FloDB's write-ahead log uses so that durability batching
//!   never re-serializes the lock-free write fast path.
//! - [`inflight::PhasedInflight`] — a two-phase in-flight counter giving
//!   WAL segment retirement a grace period over the logged→applied window
//!   of each write.
//! - [`kv`] — the common key/value byte-string representation shared by all
//!   layers.
//! - [`shim`] — the swappable primitives facade every concurrency-bearing
//!   crate routes through, so `--cfg flodb_model` can swap in the
//!   `flodb-check` model checker's instrumented types.
//! - [`lock_order`] — the ranked lock classes of the declared hierarchy
//!   (`LOCK_ORDER.toml`); debug/model builds enforce strictly ascending
//!   acquisition order at runtime through the shim's ranked constructors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod flat_combining;
pub mod group_commit;
pub mod inflight;
pub mod kv;
pub mod lock_order;
pub mod pause;
pub mod rcu;
pub mod seq;
pub mod shim;

pub use backoff::Backoff;
pub use flat_combining::WriteQueue;
pub use group_commit::{CommitRole, GroupCommitConfig, GroupCommitter};
pub use inflight::{InflightGuard, PhasedInflight};
pub use pause::PauseFlag;
pub use rcu::RcuDomain;
pub use seq::SequenceGenerator;
