//! Global sequence numbers ordering Memtable entries relative to scans.
//!
//! FloDB assigns every entry entering the Memtable a sequence number drawn
//! from a single atomic counter (`globalSeqNumber` in Algorithms 2 and 3).
//! Scans take a snapshot of the counter; any entry they encounter with a
//! larger sequence number must have been written concurrently and forces a
//! restart. Unlike multi-versioning, a key's sequence number is overwritten
//! in place together with its value.

use crossbeam_utils::CachePadded;

use crate::shim::atomic::{AtomicU64, Ordering};

/// A monotonically increasing, shareable sequence-number source.
///
/// The counter starts at 1 so that 0 can serve as a "no sequence number yet"
/// sentinel in data-structure nodes.
///
/// # Examples
///
/// ```
/// use flodb_sync::SequenceGenerator;
///
/// let gen = SequenceGenerator::new();
/// let a = gen.next();
/// let b = gen.next();
/// assert!(b > a);
/// assert!(gen.current() >= b);
/// ```
#[derive(Debug)]
pub struct SequenceGenerator {
    counter: CachePadded<AtomicU64>,
}

impl SequenceGenerator {
    /// Sentinel meaning "no sequence number has been assigned".
    pub const NONE: u64 = 0;

    /// Creates a generator whose first issued number is 1.
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// Creates a generator whose first issued number is `first`.
    ///
    /// Used on recovery, to resume numbering after the largest sequence
    /// number found in the write-ahead log.
    pub fn starting_at(first: u64) -> Self {
        Self {
            counter: CachePadded::new(AtomicU64::new(first)),
        }
    }

    /// Atomically fetches the next sequence number.
    ///
    /// This is the `fetchAndIncrement` of the paper's pseudocode.
    #[inline]
    pub fn next(&self) -> u64 {
        // ORDERING: issuance must share one total order with scan
        // snapshots (`current`) and the SC skiplist publication CASes —
        // the restart rule "entry seq > snapshot ⇒ concurrent" is argued
        // in that single order, not in per-pair happens-before edges.
        self.counter.fetch_add(1, Ordering::SeqCst)
    }

    /// Reserves a contiguous block of `n` sequence numbers, returning the
    /// first.
    ///
    /// Draining threads use this to stamp a whole multi-insert batch with a
    /// single atomic operation.
    #[inline]
    pub fn next_block(&self, n: u64) -> u64 {
        // ORDERING: same total-order argument as `next`.
        self.counter.fetch_add(n, Ordering::SeqCst)
    }

    /// Returns the next number that would be issued, without issuing it.
    #[inline]
    pub fn current(&self) -> u64 {
        // ORDERING: the scan-snapshot load; it anchors the snapshot in
        // the issuance total order (see `next`).
        self.counter.load(Ordering::SeqCst)
    }
}

impl Default for SequenceGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn monotone_single_thread() {
        let gen = SequenceGenerator::new();
        let mut prev = 0;
        for _ in 0..1000 {
            let s = gen.next();
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn starts_at_one_by_default() {
        let gen = SequenceGenerator::new();
        assert_eq!(gen.next(), 1);
    }

    #[test]
    fn starting_at_resumes() {
        let gen = SequenceGenerator::starting_at(42);
        assert_eq!(gen.next(), 42);
        assert_eq!(gen.next(), 43);
    }

    #[test]
    fn block_reservation_is_contiguous() {
        let gen = SequenceGenerator::new();
        let first = gen.next_block(10);
        assert_eq!(first, 1);
        assert_eq!(gen.next(), 11);
    }

    #[test]
    fn unique_across_threads() {
        let gen = Arc::new(SequenceGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gen = Arc::clone(&gen);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| gen.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "sequence numbers must be unique");
    }
}
