//! The `pauseWriters` / `pauseDrainingThreads` protocol flags.
//!
//! Algorithm 3 of the paper freezes direct Memtable updates and background
//! draining while a master scan drains the Membuffer. Writers observing the
//! flag either help with the drain or wait (Algorithm 2, lines 12-16). This
//! module provides that flag with an efficient blocking wait.
//!
//! The flag is *counting*: concurrent pausers (e.g. a master scan
//! overlapping a fallback scan on another thread) stack, and the flag
//! clears only when every pauser has resumed. A plain boolean would let
//! one scan's `resume` release writers out from under another.

use crate::shim::atomic::{AtomicUsize, Ordering};
use crate::lock_order::SYNC_PAUSE;
use crate::shim::{ranked_condvar, ranked_mutex, Condvar, Mutex};

/// A counting pause flag with blocking waiters.
///
/// Checking the flag ([`PauseFlag::is_paused`]) is a single atomic load on
/// the fast path, so un-paused operation costs nearly nothing. Waiters
/// block on a condvar and are woken when the pause count returns to zero.
///
/// # Examples
///
/// ```
/// use flodb_sync::PauseFlag;
///
/// let flag = PauseFlag::new();
/// flag.pause();
/// flag.pause();
/// flag.resume();
/// assert!(flag.is_paused(), "still one pauser outstanding");
/// flag.resume();
/// assert!(!flag.is_paused());
/// flag.wait_until_resumed(); // returns immediately
/// ```
#[derive(Debug)]
pub struct PauseFlag {
    pausers: AtomicUsize,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl PauseFlag {
    /// Creates a new, un-paused flag.
    pub fn new() -> Self {
        Self {
            pausers: AtomicUsize::new(0),
            lock: ranked_mutex(SYNC_PAUSE, ()),
            condvar: ranked_condvar(SYNC_PAUSE),
        }
    }

    /// Returns whether at least one pauser is active.
    ///
    /// Sequentially consistent so it pairs with [`PauseFlag::pause`] in the
    /// scan protocol's Dekker argument: a writer that enters an RCU
    /// read-side section (SeqCst slot store) and then loads this flag is
    /// guaranteed that either the pauser's grace period observes its
    /// section, or this load observes the pause — never neither.
    #[inline]
    pub fn is_paused(&self) -> bool {
        // ORDERING: the reader's half of the Dekker argument in the doc
        // comment above — this load and the writer's slot store must
        // share one total order with `pause`'s increment.
        self.pausers.load(Ordering::SeqCst) > 0
    }

    /// Registers a pauser. Waiters block until every pauser resumes.
    pub fn pause(&self) {
        let _g = self.lock.lock();
        // ORDERING: the pauser's half of the Dekker pairing with lock-free
        // `is_paused` readers; the mutex only serializes pausers against
        // each other, not against those readers.
        self.pausers.fetch_add(1, Ordering::SeqCst);
    }

    /// Releases one pauser; wakes all waiters when the count hits zero.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`PauseFlag::pause`].
    pub fn resume(&self) {
        let _g = self.lock.lock();
        // ORDERING: symmetric with `pause` — the decrement participates in
        // the same total order the lock-free readers load from.
        let prev = self.pausers.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "resume without matching pause");
        if prev == 1 {
            self.condvar.notify_all();
        }
    }

    /// Blocks the calling thread until no pauser is active.
    ///
    /// Returns immediately if the flag is not set.
    pub fn wait_until_resumed(&self) {
        if !self.is_paused() {
            return;
        }
        let mut guard = self.lock.lock();
        while self.pausers.load(Ordering::Acquire) > 0 {
            self.condvar.wait(&mut guard);
        }
    }

    /// Like [`PauseFlag::wait_until_resumed`] but gives up after `timeout`,
    /// returning whether the flag was clear on exit. Shutdown paths use
    /// this to avoid blocking forever on a flag nobody will clear.
    pub fn wait_until_resumed_timeout(&self, timeout: std::time::Duration) -> bool {
        if !self.is_paused() {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.lock.lock();
        while self.pausers.load(Ordering::Acquire) > 0 {
            if self
                .condvar
                .wait_until(&mut guard, deadline)
                .timed_out()
            {
                return self.pausers.load(Ordering::Acquire) == 0;
            }
        }
        true
    }
}

impl Default for PauseFlag {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    #[test]
    fn starts_unpaused() {
        let f = PauseFlag::new();
        assert!(!f.is_paused());
        f.wait_until_resumed();
    }

    #[test]
    fn pause_resume_roundtrip() {
        let f = PauseFlag::new();
        f.pause();
        assert!(f.is_paused());
        f.resume();
        assert!(!f.is_paused());
    }

    #[test]
    fn pausers_stack() {
        let f = PauseFlag::new();
        f.pause();
        f.pause();
        f.resume();
        assert!(f.is_paused(), "one pauser still outstanding");
        f.resume();
        assert!(!f.is_paused());
    }

    #[test]
    #[should_panic(expected = "resume without matching pause")]
    fn unbalanced_resume_panics() {
        let f = PauseFlag::new();
        f.resume();
    }

    #[test]
    fn waiter_blocks_until_last_resume() {
        let f = Arc::new(PauseFlag::new());
        f.pause();
        f.pause();
        let woke = Arc::new(AtomicBool::new(false));
        let waiter = {
            let f = Arc::clone(&f);
            let woke = Arc::clone(&woke);
            thread::spawn(move || {
                f.wait_until_resumed();
                woke.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(30));
        f.resume();
        thread::sleep(Duration::from_millis(30));
        assert!(!woke.load(Ordering::SeqCst), "woke before all resumed");
        f.resume();
        waiter.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn many_waiters_all_wake() {
        let f = Arc::new(PauseFlag::new());
        f.pause();
        let mut waiters = Vec::new();
        for _ in 0..8 {
            let f = Arc::clone(&f);
            waiters.push(thread::spawn(move || f.wait_until_resumed()));
        }
        thread::sleep(Duration::from_millis(20));
        f.resume();
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    fn timeout_wait_returns_false_when_paused() {
        let f = PauseFlag::new();
        f.pause();
        assert!(!f.wait_until_resumed_timeout(Duration::from_millis(20)));
        f.resume();
        assert!(f.wait_until_resumed_timeout(Duration::from_millis(20)));
    }
}
