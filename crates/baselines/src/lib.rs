//! Baseline LSM key-value stores: the systems FloDB is evaluated against.
//!
//! The paper compares FloDB with LevelDB, RocksDB, HyperLevelDB and the
//! cLSM-configured RocksDB (§5.1). Those comparators are C++ codebases;
//! what the evaluation isolates, however, is each system's *memory
//! component concurrency design* (§2.2) — the disk mechanisms are shared
//! (FloDB itself "keeps the persisting and compaction mechanisms of
//! LevelDB"). This crate therefore reimplements each design over the same
//! [`flodb_storage::DiskComponent`] substrate FloDB uses:
//!
//! - [`LevelDbStore`] — single-writer: writes deposit into a
//!   flat-combining queue applied by one leader; every read takes a global
//!   mutex **twice** (start and end of the operation); single-threaded
//!   flush-then-compact; global-lock table cache.
//! - [`HyperLevelDbStore`] — concurrent memtable inserts, but the global
//!   mutex is still acquired at the start and end of every operation, and
//!   version-number ordering serializes update visibility.
//! - [`RocksDbStore`] — read path without global locks (version
//!   snapshots, sharded table cache); writes still funneled through a
//!   write leader; compaction decoupled from flushing; memtable switchable
//!   between a (multi-versioned) skiplist and a hash table (Figures 3-4).
//! - [`RocksDbClsmStore`] — RocksDB with the cLSM-style concurrent
//!   memtable writes enabled (no write leader).
//!
//! All four are multi-versioned (no in-place updates): repeated writes to
//! a key consume fresh memory until a flush, which is exactly why they
//! cannot capture the skewed workload of Figure 16 in memory.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod hash_memtable;
mod internal_key;
mod leveldb;
mod lsm_core;
mod rocksdb;
mod versioned_memtable;

pub use hash_memtable::HashMemtable;
pub use internal_key::{decode_internal, encode_internal, encode_user_prefix};
pub use leveldb::{HyperLevelDbStore, LevelDbStore};
pub use lsm_core::{BaselineMemtable, BaselineOptions, MemtableKind};
pub use rocksdb::{RocksDbClsmStore, RocksDbStore};
pub use versioned_memtable::VersionedMemtable;
