//! Hash-table memtable (the RocksDB "hash-based memtable" of Figure 4).
//!
//! Writes complete in constant time, but the structure keeps no order:
//! flushing must first sort every version (linearithmic), and range scans
//! must collect-and-sort. The paper's Figure 4 shows how this sort-before-
//! flush stalls writers as the memtable grows; §2.3 measures hash-memtable
//! compaction at "at least an order of magnitude" longer than skiplist
//! flushes of the same size.

use std::collections::HashMap;

use flodb_storage::Record;
use parking_lot::Mutex;

const SHARDS: usize = 64;

#[inline]
fn shard_of(key: &[u8]) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash as usize) % SHARDS
}

#[derive(Default)]
struct Shard {
    /// key -> versions (seq ascending by construction).
    map: HashMap<Box<[u8]>, Vec<(u64, Option<Box<[u8]>>)>>,
    bytes: usize,
}

/// A sharded, multi-versioned, unsorted memtable.
pub struct HashMemtable {
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for HashMemtable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashMemtable")
            .field("versions", &self.versions())
            .finish()
    }
}

impl Default for HashMemtable {
    fn default() -> Self {
        Self::new()
    }
}

impl HashMemtable {
    /// Creates an empty hash memtable.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Appends a version of `key`.
    pub fn insert(&self, key: &[u8], seq: u64, value: Option<&[u8]>) {
        let mut shard = self.shards[shard_of(key)].lock();
        shard.bytes += key.len() + value.map_or(0, <[u8]>::len) + 48;
        shard
            .map
            .entry(Box::from(key))
            .or_default()
            .push((seq, value.map(Box::from)));
    }

    /// Returns the freshest version of `key` with `seq <= snapshot`.
    pub fn get(&self, key: &[u8], snapshot: u64) -> Option<(u64, Option<Box<[u8]>>)> {
        let shard = self.shards[shard_of(key)].lock();
        let versions = shard.map.get(key)?;
        versions
            .iter()
            .rev()
            .find(|(seq, _)| *seq <= snapshot)
            .map(|(seq, v)| (*seq, v.clone()))
    }

    /// Range query: collect matching keys, then sort — the "not practical"
    /// scan path of §2.3, implemented for completeness.
    pub fn snapshot_range(
        &self,
        low: &[u8],
        high: &[u8],
        snapshot: u64,
    ) -> Vec<(Vec<u8>, u64, Option<Box<[u8]>>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, versions) in shard.map.iter() {
                if key.as_ref() >= low && key.as_ref() <= high {
                    if let Some((seq, v)) =
                        versions.iter().rev().find(|(seq, _)| *seq <= snapshot)
                    {
                        out.push((key.to_vec(), *seq, v.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Approximate resident bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Total stored versions.
    pub fn versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Returns whether no versions are stored.
    pub fn is_empty(&self) -> bool {
        self.versions() == 0
    }

    /// Collects every version for flushing. The explicit sort here is the
    /// cost Figure 4 charges to hash memtables.
    pub fn collect_records(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, versions) in shard.map.iter() {
                for (seq, v) in versions {
                    out.push(Record {
                        key: key.clone(),
                        seq: *seq,
                        value: v.clone(),
                    });
                }
            }
        }
        // The linearithmic sorting step that delays hash-memtable flushes.
        out.sort_by(|a, b| a.key.cmp(&b.key).then(b.seq.cmp(&a.seq)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_versions() {
        let m = HashMemtable::new();
        m.insert(b"k", 1, Some(b"v1"));
        m.insert(b"k", 3, Some(b"v3"));
        assert_eq!(m.get(b"k", 2).unwrap().1.as_deref(), Some(&b"v1"[..]));
        assert_eq!(m.get(b"k", 3).unwrap().1.as_deref(), Some(&b"v3"[..]));
        assert!(m.get(b"k", 0).is_none());
        assert!(m.get(b"absent", 10).is_none());
        assert_eq!(m.versions(), 2);
    }

    #[test]
    fn range_is_sorted_despite_hash_layout() {
        let m = HashMemtable::new();
        for (i, key) in [b"e", b"a", b"c", b"b", b"d"].iter().enumerate() {
            m.insert(*key, i as u64 + 1, Some(b"v"));
        }
        let out = m.snapshot_range(b"a", b"e", 100);
        let keys: Vec<&[u8]> = out.iter().map(|(k, _, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"c", b"d", b"e"]);
    }

    #[test]
    fn collect_records_sorts() {
        let m = HashMemtable::new();
        m.insert(b"z", 1, Some(b"v"));
        m.insert(b"a", 2, None);
        m.insert(b"a", 5, Some(b"w"));
        let records = m.collect_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].key.as_ref(), b"a");
        assert_eq!(records[0].seq, 5, "within a key, newest first");
        assert_eq!(records[2].key.as_ref(), b"z");
    }

    #[test]
    fn concurrent_inserts() {
        use std::sync::Arc;
        let m = Arc::new(HashMemtable::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = (t * 1000 + i).to_be_bytes();
                    m.insert(&key, t * 1000 + i + 1, Some(b"v"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.versions(), 4000);
    }
}
