//! LevelDB and HyperLevelDB concurrency designs.
//!
//! **LevelDB** (§2.2): "supports multiple writer threads, but serializes
//! writes by having threads deposit their intended writes in a concurrent
//! queue; the writes in this queue are applied to the key-value store one
//! by one by a single thread. Moreover, LevelDB also requires readers to
//! take a global lock during each operation" — two brief critical
//! sections per read (§5.2). Flushing and compaction share one thread.
//!
//! **HyperLevelDB** (§2.2): "replaces LevelDB's sequential memory
//! component with a concurrent one, which allows writers to apply their
//! updates in parallel... However, writers still need to acquire a global
//! mutex lock at the start and end of each operation."

use std::ops::ControlFlow;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use flodb_core::{KvStore, StoreStats, WriteBatch, WriteError};
use flodb_sync::WriteQueue;
use parking_lot::Mutex;

use crate::lsm_core::{spawn_thread, BaselineOptions, LsmCore, WriteOp};

/// The LevelDB design: single write leader + global mutex on reads.
pub struct LevelDbStore {
    core: Arc<LsmCore>,
    /// The global mutex every operation brushes against (§2.2).
    global: Mutex<()>,
    writers: WriteQueue<WriteOp>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl LevelDbStore {
    /// Opens a LevelDB-style store.
    pub fn open(mut opts: BaselineOptions) -> Self {
        // LevelDB's fd-cache is guarded by the global lock (§4 footnote 2).
        opts.disk.sharded_cache = false;
        let core = LsmCore::new(&opts);
        let threads = vec![{
            let core = Arc::clone(&core);
            // One thread does both flushing and compaction (§2.2:
            // "the compaction process of LevelDB is single-threaded").
            spawn_thread("leveldb-flush", move || core.flush_loop(true))
        }];
        Self {
            core,
            global: Mutex::new(()),
            writers: WriteQueue::new(),
            threads: Mutex::new(threads),
        }
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) {
        let op = WriteOp::One {
            key: Box::from(key),
            value: value.map(Box::from),
        };
        self.submit(op);
    }

    /// Deposits one queue entry; the leader applies everyone's deposits
    /// sequentially under the global mutex (flat combining).
    fn submit(&self, op: WriteOp) {
        let core = &self.core;
        let global = &self.global;
        self.writers.submit(op, |batch| {
            let _g = global.lock();
            for op in batch {
                op.apply(core);
            }
        });
    }
}

impl KvStore for LevelDbStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        self.write(key, Some(value));
        self.core.stats.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        self.write(key, None);
        self.core.stats.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        // The whole batch rides the writer queue as one deposit, applied
        // contiguously by whichever thread leads — the same single-writer
        // path every put takes.
        self.submit(WriteOp::from_batch(batch));
        self.core.stats.puts.fetch_add(batch.puts(), Ordering::Relaxed);
        self.core
            .stats
            .deletes
            .fetch_add(batch.deletes(), Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Critical section 1: acquire refs / metadata (§5.2).
        drop(self.global.lock());
        let result = self.core.get_latest(key);
        // Critical section 2: release refs / update metadata.
        drop(self.global.lock());
        self.core.stats.gets.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        drop(self.global.lock());
        let emitted = self.core.scan_snapshot_with(low, high, visitor);
        drop(self.global.lock());
        self.core.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.core
            .stats
            .scanned_keys
            .fetch_add(emitted, Ordering::Relaxed);
    }

    fn name(&self) -> &'static str {
        "LevelDB"
    }

    fn stats(&self) -> StoreStats {
        self.core.snapshot_stats(0)
    }

    fn quiesce(&self) {
        self.core.quiesce();
    }
}

impl Drop for LevelDbStore {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        self.core.wake_flush();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// The HyperLevelDB design: concurrent memtable writes, global mutex at
/// the start and end of every operation.
pub struct HyperLevelDbStore {
    core: Arc<LsmCore>,
    global: Mutex<()>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl HyperLevelDbStore {
    /// Opens a HyperLevelDB-style store.
    pub fn open(mut opts: BaselineOptions) -> Self {
        opts.disk.sharded_cache = false;
        let core = LsmCore::new(&opts);
        let threads = vec![
            {
                let core = Arc::clone(&core);
                spawn_thread("hyperleveldb-flush", move || core.flush_loop(false))
            },
            {
                // HyperLevelDB's improved compaction gets its own thread.
                let core = Arc::clone(&core);
                spawn_thread("hyperleveldb-compact", move || core.compaction_loop())
            },
        ];
        Self {
            core,
            global: Mutex::new(()),
            threads: Mutex::new(threads),
        }
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) {
        // Global mutex at the start of the operation (version-number
        // assignment is the serialized part)...
        let seq = {
            let _g = self.global.lock();
            self.core.seq.next()
        };
        // ...then the insert proceeds concurrently...
        self.core.write(key, seq, value);
        // ...and the mutex is taken again at the end (§2.2).
        drop(self.global.lock());
    }
}

impl KvStore for HyperLevelDbStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        self.write(key, Some(value));
        self.core.stats.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        self.write(key, None);
        self.core.stats.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        // Existing write discipline, batch-shaped: one contiguous block
        // of sequence numbers is reserved under one acquisition of the
        // global mutex, the inserts proceed concurrently, and the mutex
        // is taken again at the end of the operation (§2.2).
        let first = {
            let _g = self.global.lock();
            self.core.seq.next_block(batch.len() as u64)
        };
        for ((key, value), seq) in batch.iter().zip(first..) {
            self.core.write(key, seq, value);
        }
        drop(self.global.lock());
        self.core.stats.puts.fetch_add(batch.puts(), Ordering::Relaxed);
        self.core
            .stats
            .deletes
            .fetch_add(batch.deletes(), Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        drop(self.global.lock());
        let result = self.core.get_latest(key);
        drop(self.global.lock());
        self.core.stats.gets.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        drop(self.global.lock());
        let emitted = self.core.scan_snapshot_with(low, high, visitor);
        drop(self.global.lock());
        self.core.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.core
            .stats
            .scanned_keys
            .fetch_add(emitted, Ordering::Relaxed);
    }

    fn name(&self) -> &'static str {
        "HyperLevelDB"
    }

    fn stats(&self) -> StoreStats {
        self.core.snapshot_stats(0)
    }

    fn quiesce(&self) {
        self.core.quiesce();
    }
}

impl Drop for HyperLevelDbStore {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        self.core.wake_flush();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn KvStore) {
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.put(b"a", b"3").unwrap();
        assert_eq!(store.get(b"a"), Some(b"3".to_vec()));
        store.delete(b"b").unwrap();
        assert_eq!(store.get(b"b"), None);
        // A batch commits through the store's write serialization.
        let mut batch = WriteBatch::new();
        batch.put(b"c", b"4").delete(b"c").put(b"d", b"5").delete(b"d");
        store.write(&batch).unwrap();
        assert_eq!(store.get(b"c"), None);
        assert_eq!(store.get(b"d"), None);
        let out = store.scan(b"a", b"z");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, b"3".to_vec());
        store.quiesce();
        assert_eq!(store.get(b"a"), Some(b"3".to_vec()));
    }

    #[test]
    fn leveldb_basic_ops() {
        let store = LevelDbStore::open(BaselineOptions::small_for_tests());
        exercise(&store);
        assert_eq!(store.name(), "LevelDB");
        assert_eq!(store.stats().puts, 5, "3 singles + 2 batch puts");
        assert_eq!(store.stats().deletes, 3, "1 single + 2 batch deletes");
    }

    #[test]
    fn hyperleveldb_basic_ops() {
        let store = HyperLevelDbStore::open(BaselineOptions::small_for_tests());
        exercise(&store);
        assert_eq!(store.name(), "HyperLevelDB");
    }

    #[test]
    fn leveldb_concurrent_writers_serialize_correctly() {
        let store = Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let key = (t * 1000 + i).to_be_bytes();
                    store.put(&key, &key).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..250u64).step_by(31) {
                let key = (t * 1000 + i).to_be_bytes();
                assert_eq!(store.get(&key), Some(key.to_vec()));
            }
        }
    }

    #[test]
    fn hyperleveldb_concurrent_same_key() {
        let store = Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    store.put(b"hot", &i.to_be_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.get(b"hot").is_some());
    }
}
