//! Multi-versioned skiplist memtable (LevelDB/RocksDB semantics).
//!
//! Every write appends a new `(key, seq)` version; nothing is updated in
//! place. Memory therefore grows with every write — including repeated
//! writes to one key — which triggers flushes under skew (§3.2: "the
//! multi-versioning approach cannot leverage the locality of skewed
//! workloads. In fact, continually updating a single key is enough to fill
//! up the memory component").

use flodb_memtable::SkipList;
use flodb_storage::Record;

use crate::internal_key::{decode_internal, encode_internal, encode_user_prefix};

/// An insert-only, multi-versioned, concurrent memtable.
///
/// Built on the same lock-free skiplist as FloDB's Memtable; versions are
/// encoded into the key (see the crate's `internal_key` module), so inserts never
/// collide and reads are wait-free.
#[derive(Debug, Default)]
pub struct VersionedMemtable {
    list: SkipList,
}

impl VersionedMemtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self {
            list: SkipList::new(),
        }
    }

    /// Appends a version of `key`; `None` is a delete tombstone.
    pub fn insert(&self, key: &[u8], seq: u64, value: Option<&[u8]>) {
        let internal = encode_internal(key, seq);
        let fresh = self.list.insert(&internal, value, seq);
        debug_assert!(fresh, "internal keys are unique per (key, seq)");
    }

    /// Returns the freshest version of `key` with `seq <= snapshot`.
    ///
    /// Outer `None` = no such version; `Some((seq, None))` = tombstone.
    pub fn get(&self, key: &[u8], snapshot: u64) -> Option<(u64, Option<Box<[u8]>>)> {
        let prefix = encode_user_prefix(key);
        let mut from = prefix.clone();
        from.extend_from_slice(&(u64::MAX - snapshot).to_be_bytes());
        let mut it = self.list.iter();
        it.seek(&from);
        if it.valid() && it.key().starts_with(&prefix) {
            let vv = it.value();
            debug_assert!(vv.seq <= snapshot);
            return Some((vv.seq, vv.value));
        }
        None
    }

    /// Returns, per user key in `[low, high]`, the freshest version with
    /// `seq <= snapshot`, in key order (tombstones included).
    pub fn snapshot_range(
        &self,
        low: &[u8],
        high: &[u8],
        snapshot: u64,
    ) -> Vec<(Vec<u8>, u64, Option<Box<[u8]>>)> {
        let mut out: Vec<(Vec<u8>, u64, Option<Box<[u8]>>)> = Vec::new();
        let mut it = self.list.iter();
        it.seek(&encode_user_prefix(low)[..encode_user_prefix(low).len() - 2]);
        // Seek to the beginning of `low`'s escaped form (without the
        // terminator so `low` itself is included).
        while it.valid() {
            let Some((user, seq)) = decode_internal(it.key()) else {
                it.next();
                continue;
            };
            if user.as_slice() > high {
                break;
            }
            let in_range = user.as_slice() >= low;
            let newest_taken = out
                .last()
                .is_some_and(|(last, _, _)| last.as_slice() == user.as_slice());
            if in_range && !newest_taken && seq <= snapshot {
                let vv = it.value();
                out.push((user, vv.seq, vv.value));
            }
            it.next();
        }
        out
    }

    /// Approximate resident bytes (grows with every version).
    pub fn approximate_bytes(&self) -> usize {
        self.list.approximate_bytes()
    }

    /// Number of stored versions (not distinct keys).
    pub fn versions(&self) -> usize {
        self.list.len()
    }

    /// Returns whether no versions are stored.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Drains every version into flushable records (sorted; the disk
    /// component keeps the freshest per key).
    pub fn collect_records(&self) -> Vec<Record> {
        self.list
            .collect_entries()
            .into_iter()
            .filter_map(|(internal, vv)| {
                let (key, _) = decode_internal(&internal)?;
                Some(Record {
                    key: key.into_boxed_slice(),
                    seq: vv.seq,
                    value: vv.value,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_accumulate() {
        let m = VersionedMemtable::new();
        m.insert(b"k", 1, Some(b"v1"));
        m.insert(b"k", 2, Some(b"v2"));
        assert_eq!(m.versions(), 2, "no in-place update");
        // Snapshot reads see the version visible at the snapshot.
        assert_eq!(m.get(b"k", 1).unwrap().1.as_deref(), Some(&b"v1"[..]));
        assert_eq!(m.get(b"k", 2).unwrap().1.as_deref(), Some(&b"v2"[..]));
        assert_eq!(m.get(b"k", 100).unwrap().1.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn memory_grows_with_repeated_writes() {
        let m = VersionedMemtable::new();
        m.insert(b"hot", 1, Some(&[0u8; 64]));
        let after_one = m.approximate_bytes();
        for seq in 2..100u64 {
            m.insert(b"hot", seq, Some(&[0u8; 64]));
        }
        assert!(
            m.approximate_bytes() > after_one * 50,
            "multi-versioning must not absorb skew in place"
        );
    }

    #[test]
    fn snapshot_isolation() {
        let m = VersionedMemtable::new();
        m.insert(b"a", 5, Some(b"old"));
        m.insert(b"b", 6, Some(b"b"));
        m.insert(b"a", 10, Some(b"new"));
        // A snapshot at 7 must not see seq 10.
        let out = m.snapshot_range(b"a", b"z", 7);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].2.as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn tombstone_versions() {
        let m = VersionedMemtable::new();
        m.insert(b"k", 1, Some(b"v"));
        m.insert(b"k", 2, None);
        let (seq, val) = m.get(b"k", 10).unwrap();
        assert_eq!(seq, 2);
        assert!(val.is_none());
        // The old version is still reachable below the tombstone.
        assert!(m.get(b"k", 1).unwrap().1.is_some());
    }

    #[test]
    fn get_missing_and_below_first_version() {
        let m = VersionedMemtable::new();
        m.insert(b"k", 5, Some(b"v"));
        assert!(m.get(b"absent", 100).is_none());
        assert!(m.get(b"k", 4).is_none(), "no version at snapshot 4");
    }

    #[test]
    fn range_respects_bounds_and_order() {
        let m = VersionedMemtable::new();
        for (i, key) in [b"a", b"c", b"e"].iter().enumerate() {
            m.insert(*key, i as u64 + 1, Some(b"v"));
        }
        let out = m.snapshot_range(b"b", b"e", 100);
        let keys: Vec<&[u8]> = out.iter().map(|(k, _, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"c"[..], &b"e"[..]]);
    }

    #[test]
    fn collect_records_decodes_all_versions() {
        let m = VersionedMemtable::new();
        m.insert(b"k", 1, Some(b"v1"));
        m.insert(b"k", 2, Some(b"v2"));
        m.insert(b"j", 3, None);
        let records = m.collect_records();
        assert_eq!(records.len(), 3);
        // Sorted by (user key asc, seq desc).
        assert_eq!(records[0].key.as_ref(), b"j");
        assert_eq!(records[1].seq, 2);
        assert_eq!(records[2].seq, 1);
    }

    #[test]
    fn concurrent_version_appends() {
        use std::sync::Arc;
        let m = Arc::new(VersionedMemtable::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let seq = t * 1000 + i + 1;
                    m.insert(b"contended", seq, Some(&seq.to_be_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.versions(), 2000);
        let (seq, _) = m.get(b"contended", u64::MAX - 1).unwrap();
        assert_eq!(seq, 3500, "freshest version wins");
    }
}
