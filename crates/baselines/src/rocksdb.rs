//! RocksDB and RocksDB/cLSM concurrency designs.
//!
//! **RocksDB** (§2.2): "increases concurrency by introducing multithreaded
//! merging of the disk components... RocksDB still keeps points of global
//! synchronization to access in-memory structures": reads take no global
//! lock (version snapshots + a concurrent table cache), but writes are
//! still funneled through a single write leader (§5.2: "RocksDB and
//! LevelDB use a single-writer design"). The memtable is switchable
//! between a skiplist and a hash table (Figures 3-4).
//!
//! **RocksDB/cLSM** (§5.1): the cLSM ideas merged into RocksDB, enabled
//! via parameters — chiefly concurrent memtable writes (no leader).

use std::ops::ControlFlow;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use flodb_core::{KvStore, StoreStats, WriteBatch, WriteError};
use flodb_sync::WriteQueue;
use parking_lot::Mutex;

use crate::lsm_core::{spawn_thread, BaselineOptions, LsmCore, WriteOp};

fn spawn_background(core: &Arc<LsmCore>, label: &str) -> Vec<JoinHandle<()>> {
    vec![
        {
            let core = Arc::clone(core);
            spawn_thread(&format!("{label}-flush"), move || core.flush_loop(false))
        },
        {
            // Disk-to-disk compaction decoupled from persistence (§2.2:
            // "multithreaded disk-to-disk compaction which runs in
            // parallel with memory-to-disk persistence").
            let core = Arc::clone(core);
            spawn_thread(&format!("{label}-compact"), move || core.compaction_loop())
        },
    ]
}

/// The RocksDB design: lock-free reads, single write leader.
pub struct RocksDbStore {
    core: Arc<LsmCore>,
    writers: WriteQueue<WriteOp>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl RocksDbStore {
    /// Opens a RocksDB-style store (memtable kind from `opts.memtable`).
    pub fn open(mut opts: BaselineOptions) -> Self {
        // RocksDB caches metadata to avoid the global fd-cache lock.
        opts.disk.sharded_cache = true;
        let core = LsmCore::new(&opts);
        let threads = spawn_background(&core, "rocksdb");
        Self {
            core,
            writers: WriteQueue::new(),
            threads: Mutex::new(threads),
        }
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) {
        let op = WriteOp::One {
            key: Box::from(key),
            value: value.map(Box::from),
        };
        self.submit(op);
    }

    /// Deposits one queue entry; the leader applies everyone's deposits
    /// (§5.2: single-writer design).
    fn submit(&self, op: WriteOp) {
        let core = &self.core;
        self.writers.submit(op, |batch| {
            for op in batch {
                op.apply(core);
            }
        });
    }
}

impl KvStore for RocksDbStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        self.write(key, Some(value));
        self.core.stats.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        self.write(key, None);
        self.core.stats.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        // The whole batch rides the write-leader queue as one deposit, so
        // it is applied contiguously by whichever thread leads.
        self.submit(WriteOp::from_batch(batch));
        self.core.stats.puts.fetch_add(batch.puts(), Ordering::Relaxed);
        self.core
            .stats
            .deletes
            .fetch_add(batch.deletes(), Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // No global lock on the read path.
        let result = self.core.get_latest(key);
        self.core.stats.gets.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        let emitted = self.core.scan_snapshot_with(low, high, visitor);
        self.core.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.core
            .stats
            .scanned_keys
            .fetch_add(emitted, Ordering::Relaxed);
    }

    fn name(&self) -> &'static str {
        "RocksDB"
    }

    fn stats(&self) -> StoreStats {
        self.core.snapshot_stats(0)
    }

    fn quiesce(&self) {
        self.core.quiesce();
    }
}

impl Drop for RocksDbStore {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        self.core.wake_flush();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// RocksDB with cLSM-style concurrent memtable writes enabled.
pub struct RocksDbClsmStore {
    core: Arc<LsmCore>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl RocksDbClsmStore {
    /// Opens a cLSM-configured RocksDB-style store.
    pub fn open(mut opts: BaselineOptions) -> Self {
        opts.disk.sharded_cache = true;
        let core = LsmCore::new(&opts);
        let threads = spawn_background(&core, "rocksdb-clsm");
        Self {
            core,
            threads: Mutex::new(threads),
        }
    }
}

impl KvStore for RocksDbClsmStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        // Concurrent memtable insert: no write leader.
        let seq = self.core.seq.next();
        self.core.write(key, seq, Some(value));
        self.core.stats.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        let seq = self.core.seq.next();
        self.core.write(key, seq, None);
        self.core.stats.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        // No write leader to serialize behind: the batch applies as a run
        // of concurrent memtable inserts from the calling thread.
        for (key, value) in batch.iter() {
            let seq = self.core.seq.next();
            self.core.write(key, seq, value);
        }
        self.core.stats.puts.fetch_add(batch.puts(), Ordering::Relaxed);
        self.core
            .stats
            .deletes
            .fetch_add(batch.deletes(), Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let result = self.core.get_latest(key);
        self.core.stats.gets.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        let emitted = self.core.scan_snapshot_with(low, high, visitor);
        self.core.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.core
            .stats
            .scanned_keys
            .fetch_add(emitted, Ordering::Relaxed);
    }

    fn name(&self) -> &'static str {
        "RocksDB/cLSM"
    }

    fn stats(&self) -> StoreStats {
        self.core.snapshot_stats(0)
    }

    fn quiesce(&self) {
        self.core.quiesce();
    }
}

impl Drop for RocksDbClsmStore {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        self.core.wake_flush();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lsm_core::MemtableKind;

    use super::*;

    fn exercise(store: &dyn KvStore) {
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.put(b"a", b"3").unwrap();
        assert_eq!(store.get(b"a"), Some(b"3".to_vec()));
        store.delete(b"b").unwrap();
        assert_eq!(store.get(b"b"), None);
        // A batch commits through the store's write serialization.
        let mut batch = WriteBatch::new();
        batch.put(b"c", b"4").delete(b"c").put(b"d", b"5").delete(b"d");
        store.write(&batch).unwrap();
        assert_eq!(store.get(b"c"), None);
        assert_eq!(store.get(b"d"), None);
        let out = store.scan(b"a", b"z");
        assert_eq!(out, vec![(b"a".to_vec(), b"3".to_vec())]);
        store.quiesce();
        assert_eq!(store.get(b"a"), Some(b"3".to_vec()));
    }

    #[test]
    fn rocksdb_skiplist_basic_ops() {
        let store = RocksDbStore::open(BaselineOptions::small_for_tests());
        exercise(&store);
        assert_eq!(store.name(), "RocksDB");
    }

    #[test]
    fn rocksdb_hashtable_basic_ops() {
        let mut opts = BaselineOptions::small_for_tests();
        opts.memtable = MemtableKind::HashTable;
        let store = RocksDbStore::open(opts);
        exercise(&store);
    }

    #[test]
    fn clsm_basic_ops() {
        let store = RocksDbClsmStore::open(BaselineOptions::small_for_tests());
        exercise(&store);
        assert_eq!(store.name(), "RocksDB/cLSM");
    }

    #[test]
    fn clsm_concurrent_writers() {
        let store = Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let key = (t * 1000 + i).to_be_bytes();
                    store.put(&key, &key).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..250u64).step_by(29) {
                let key = (t * 1000 + i).to_be_bytes();
                assert_eq!(store.get(&key), Some(key.to_vec()));
            }
        }
    }

    #[test]
    fn rocksdb_flush_through_small_memtable() {
        let mut opts = BaselineOptions::small_for_tests();
        opts.memory_bytes = 8 * 1024;
        let store = RocksDbStore::open(opts);
        for i in 0..2000u64 {
            store.put(&i.to_be_bytes(), &[0u8; 32]).unwrap();
        }
        store.quiesce();
        assert!(store.stats().persists > 0, "small memtable must flush");
        for i in (0..2000u64).step_by(131) {
            assert!(store.get(&i.to_be_bytes()).is_some(), "key {i}");
        }
    }
}
