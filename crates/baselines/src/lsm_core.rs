//! Shared single-level LSM machinery for the baseline stores.
//!
//! Classic LSMs have exactly one mutable memtable plus at most one
//! immutable memtable being flushed (§2.1). `LsmCore` implements that
//! state machine — make-room/switch/stall, background flush, snapshot
//! reads — while each baseline wraps it in its own concurrency-control
//! discipline (global mutex, write leader, …), which is where the systems
//! differ (§2.2).

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use flodb_storage::{DiskComponent, DiskOptions, Env, MemEnv, Record};
use flodb_sync::SequenceGenerator;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::hash_memtable::HashMemtable;
use crate::versioned_memtable::VersionedMemtable;

/// Which memtable structure a baseline uses (Figures 3-4 compare the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemtableKind {
    /// Sorted, multi-versioned skiplist (LevelDB default).
    SkipList,
    /// Unsorted hash table, sorted at flush time.
    HashTable,
}

/// A baseline memtable: either structure behind one interface.
#[derive(Debug)]
pub enum BaselineMemtable {
    /// Skiplist-backed.
    Skip(VersionedMemtable),
    /// Hash-table-backed.
    Hash(HashMemtable),
}

impl BaselineMemtable {
    /// Creates an empty memtable of `kind`.
    pub fn new(kind: MemtableKind) -> Self {
        match kind {
            MemtableKind::SkipList => Self::Skip(VersionedMemtable::new()),
            MemtableKind::HashTable => Self::Hash(HashMemtable::new()),
        }
    }

    /// Appends a version.
    pub fn insert(&self, key: &[u8], seq: u64, value: Option<&[u8]>) {
        match self {
            Self::Skip(m) => m.insert(key, seq, value),
            Self::Hash(m) => m.insert(key, seq, value),
        }
    }

    /// Freshest version with `seq <= snapshot`.
    pub fn get(&self, key: &[u8], snapshot: u64) -> Option<(u64, Option<Box<[u8]>>)> {
        match self {
            Self::Skip(m) => m.get(key, snapshot),
            Self::Hash(m) => m.get(key, snapshot),
        }
    }

    /// Snapshot range query (sorted output).
    pub fn snapshot_range(
        &self,
        low: &[u8],
        high: &[u8],
        snapshot: u64,
    ) -> Vec<(Vec<u8>, u64, Option<Box<[u8]>>)> {
        match self {
            Self::Skip(m) => m.snapshot_range(low, high, snapshot),
            Self::Hash(m) => m.snapshot_range(low, high, snapshot),
        }
    }

    /// Approximate resident bytes.
    pub fn approximate_bytes(&self) -> usize {
        match self {
            Self::Skip(m) => m.approximate_bytes(),
            Self::Hash(m) => m.approximate_bytes(),
        }
    }

    /// Returns whether the memtable is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            Self::Skip(m) => m.is_empty(),
            Self::Hash(m) => m.is_empty(),
        }
    }

    /// Drains all versions into flushable records (sorted).
    pub fn collect_records(&self) -> Vec<Record> {
        match self {
            Self::Skip(m) => m.collect_records(),
            Self::Hash(m) => m.collect_records(),
        }
    }
}

/// One deposit in a baseline's write queue: a single operation on the
/// hot path, or a whole `WriteBatch`'s operations applied as one unit (a
/// put is just a 1-op batch as far as the queue is concerned).
pub(crate) enum WriteOp {
    /// One put/delete.
    One {
        /// The user key.
        key: Box<[u8]>,
        /// `None` is a delete (tombstone insert).
        value: Option<Box<[u8]>>,
    },
    /// A batch's operations, applied contiguously.
    Batch(Vec<(Box<[u8]>, Option<Box<[u8]>>)>),
}

impl WriteOp {
    /// Copies a `WriteBatch` into an owned queue deposit.
    pub(crate) fn from_batch(batch: &flodb_core::WriteBatch) -> Self {
        Self::Batch(
            batch
                .iter()
                .map(|(key, value)| (Box::from(key), value.map(Box::from)))
                .collect(),
        )
    }

    /// Applies the deposit to `core`, one fresh sequence number per op.
    pub(crate) fn apply(self, core: &LsmCore) {
        match self {
            Self::One { key, value } => {
                let seq = core.seq.next();
                core.write(&key, seq, value.as_deref());
            }
            Self::Batch(ops) => {
                for (key, value) in ops {
                    let seq = core.seq.next();
                    core.write(&key, seq, value.as_deref());
                }
            }
        }
    }
}

/// Options shared by every baseline store.
#[derive(Clone)]
pub struct BaselineOptions {
    /// Memory-component byte budget (single level).
    pub memory_bytes: usize,
    /// Memtable structure.
    pub memtable: MemtableKind,
    /// Disk component tuning (the store constructor picks the cache kind).
    pub disk: DiskOptions,
    /// Storage environment.
    pub env: Arc<dyn Env>,
}

impl BaselineOptions {
    /// Paper-shaped defaults: 128 MB memtable on an unthrottled SimDisk.
    pub fn default_in_memory() -> Self {
        Self {
            memory_bytes: 128 * 1024 * 1024,
            memtable: MemtableKind::SkipList,
            disk: DiskOptions::default(),
            env: Arc::new(MemEnv::new(None)),
        }
    }

    /// Tiny configuration for tests.
    pub fn small_for_tests() -> Self {
        let mut disk = DiskOptions::default();
        disk.compaction.l0_trigger = 2;
        disk.compaction.base_level_bytes = 64 * 1024;
        disk.compaction.target_file_bytes = 32 * 1024;
        Self {
            memory_bytes: 256 * 1024,
            disk,
            ..Self::default_in_memory()
        }
    }
}

struct MemState {
    active: Arc<BaselineMemtable>,
    imm: Option<Arc<BaselineMemtable>>,
}

pub(crate) struct CoreStats {
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub gets: AtomicU64,
    pub scans: AtomicU64,
    pub scanned_keys: AtomicU64,
    pub persists: AtomicU64,
    pub stalls: AtomicU64,
}

impl Default for CoreStats {
    fn default() -> Self {
        Self {
            puts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            scanned_keys: AtomicU64::new(0),
            persists: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }
}

/// The shared single-level LSM engine.
pub(crate) struct LsmCore {
    pub seq: SequenceGenerator,
    pub disk: DiskComponent,
    memtable_kind: MemtableKind,
    budget: usize,
    state: RwLock<MemState>,
    /// Serializes flushes so `flush_once` is safe to call from any thread
    /// (background flusher and `quiesce` may race).
    flush_lock: Mutex<()>,
    flush_park: Mutex<()>,
    flush_cv: Condvar,
    room: Mutex<()>,
    room_cv: Condvar,
    pub stop: AtomicBool,
    pub stats: CoreStats,
}

impl LsmCore {
    pub fn new(opts: &BaselineOptions) -> Arc<Self> {
        Arc::new(Self {
            seq: SequenceGenerator::new(),
            disk: DiskComponent::new(Arc::clone(&opts.env), opts.disk),
            memtable_kind: opts.memtable,
            budget: opts.memory_bytes,
            state: RwLock::new(MemState {
                active: Arc::new(BaselineMemtable::new(opts.memtable)),
                imm: None,
            }),
            flush_lock: Mutex::new(()),
            flush_park: Mutex::new(()),
            flush_cv: Condvar::new(),
            room: Mutex::new(()),
            room_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: CoreStats::default(),
        })
    }

    /// Ensures the active memtable has room, switching or stalling
    /// (LevelDB's `MakeRoomForWrite`).
    pub fn make_room(&self) {
        loop {
            let (bytes, has_imm) = {
                let st = self.state.read();
                (st.active.approximate_bytes(), st.imm.is_some())
            };
            if bytes < self.budget {
                return;
            }
            if has_imm {
                // Both memtables full: the write stall of Figure 4.
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                self.wake_flush();
                let mut g = self.room.lock();
                self.room_cv.wait_for(&mut g, Duration::from_micros(500));
                continue;
            }
            let mut st = self.state.write();
            if st.imm.is_none() && st.active.approximate_bytes() >= self.budget {
                let fresh = Arc::new(BaselineMemtable::new(self.memtable_kind));
                st.imm = Some(std::mem::replace(&mut st.active, fresh));
                drop(st);
                self.wake_flush();
            }
        }
    }

    /// Appends a version to the active memtable.
    pub fn write(&self, key: &[u8], seq: u64, value: Option<&[u8]>) {
        self.make_room();
        // Hold the state read-lock across the insert: the memtable switch
        // takes the write lock, so it cannot retire `active` into `imm`
        // (and flush + drop it) while an insert is still in flight. Without
        // this, a concurrent switch + flush could collect the memtable's
        // records before the insert lands, silently losing the write.
        let st = self.state.read();
        st.active.insert(key, seq, value);
    }

    /// Point lookup at "now".
    pub fn get_latest(&self, key: &[u8]) -> Option<Vec<u8>> {
        let snapshot = u64::MAX - 1;
        let (active, imm) = {
            let st = self.state.read();
            (Arc::clone(&st.active), st.imm.clone())
        };
        if let Some((_, v)) = active.get(key, snapshot) {
            return v.map(Vec::from);
        }
        if let Some(imm) = imm {
            if let Some((_, v)) = imm.get(key, snapshot) {
                return v.map(Vec::from);
            }
        }
        self.disk
            .get(key)
            .expect("disk read failed")
            .and_then(|r| r.value.map(Vec::from))
    }

    /// Serializable snapshot scan, streamed (multi-versioned: no restarts
    /// needed). Returns the number of live entries emitted.
    ///
    /// The three sources — active memtable, immutable memtable, disk —
    /// each yield a sorted run with one (freshest ≤ snapshot) version per
    /// key; the runs are merged by streaming cursors rather than into an
    /// intermediate map, so a visitor that returns
    /// [`ControlFlow::Break`] prunes all remaining merge work.
    pub fn scan_snapshot_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) -> u64 {
        let snapshot = self.seq.current();
        let (active, imm) = {
            let st = self.state.read();
            (Arc::clone(&st.active), st.imm.clone())
        };
        let a = active.snapshot_range(low, high, snapshot);
        let b = imm.map_or_else(Vec::new, |m| m.snapshot_range(low, high, snapshot));
        let d = self.disk.scan(low, high).expect("disk scan failed");
        let (mut ai, mut bi, mut di) = (0usize, 0usize, 0usize);
        let mut emitted = 0u64;
        loop {
            // Disk records fresher than the snapshot are invisible to it
            // (their key has no older on-disk version: disk merge keeps
            // one record per key).
            while d.get(di).is_some_and(|r| r.seq > snapshot) {
                di += 1;
            }
            let ak = a.get(ai).map(|(k, _, _)| k.as_slice());
            let bk = b.get(bi).map(|(k, _, _)| k.as_slice());
            let dk = d.get(di).map(|r| r.key.as_ref());
            let Some(key) = [ak, bk, dk].into_iter().flatten().min() else {
                break;
            };
            // Freshest version among the cursors positioned on `key`;
            // every matching cursor advances past it.
            let mut best: (u64, Option<&[u8]>) = (0, None);
            if ak == Some(key) {
                let (_, seq, value) = &a[ai];
                best = (*seq, value.as_deref());
                ai += 1;
            }
            if bk == Some(key) {
                let (_, seq, value) = &b[bi];
                if *seq > best.0 {
                    best = (*seq, value.as_deref());
                }
                bi += 1;
            }
            if dk == Some(key) {
                let record = &d[di];
                if record.seq > best.0 {
                    best = (record.seq, record.value.as_deref());
                }
                di += 1;
            }
            if let (_, Some(value)) = best {
                emitted += 1;
                if visitor(key, value).is_break() {
                    break;
                }
            }
        }
        emitted
    }

    /// Collecting convenience over [`Self::scan_snapshot_with`] (the
    /// stores stream through `scan_with`; tests want the whole range).
    #[cfg(test)]
    pub fn scan_snapshot(&self, low: &[u8], high: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.scan_snapshot_with(low, high, &mut |key, value| {
            out.push((key.to_vec(), value.to_vec()));
            ControlFlow::Continue(())
        });
        out
    }

    pub fn wake_flush(&self) {
        let _g = self.flush_park.lock();
        self.flush_cv.notify_all();
    }

    /// Flushes the immutable memtable if one exists; returns whether work
    /// was done. `compact_inline == true` models LevelDB's single thread
    /// doing both flushing and compaction.
    pub fn flush_once(&self, compact_inline: bool) -> bool {
        // Exclusive flusher: a concurrent caller waits here, re-reads and
        // finds `imm` already cleared (or flushes the next one).
        let _flushing = self.flush_lock.lock();
        let imm = self.state.read().imm.clone();
        let Some(imm) = imm else {
            return false;
        };
        // `collect_records` is where hash memtables pay their sort.
        let records = imm.collect_records();
        self.disk.flush_records(records).expect("flush failed");
        self.state.write().imm = None;
        self.stats.persists.fetch_add(1, Ordering::Relaxed);
        {
            let _g = self.room.lock();
            self.room_cv.notify_all();
        }
        if compact_inline {
            self.disk.compact_all().expect("compaction failed");
        }
        true
    }

    /// Background flush loop.
    pub fn flush_loop(self: &Arc<Self>, compact_inline: bool) {
        while !self.stop.load(Ordering::Acquire) {
            if !self.flush_once(compact_inline) {
                let mut g = self.flush_park.lock();
                self.flush_cv
                    .wait_for(&mut g, Duration::from_micros(500));
            }
        }
        self.flush_once(compact_inline);
    }

    /// Background compaction loop (RocksDB's decoupled compaction).
    pub fn compaction_loop(self: &Arc<Self>) {
        while !self.stop.load(Ordering::Acquire) {
            match self.disk.maybe_compact() {
                Ok(true) => {}
                Ok(false) => std::thread::sleep(Duration::from_micros(500)),
                Err(e) => panic!("compaction failed: {e}"),
            }
        }
    }

    /// Blocks until memory is drained and compaction has settled.
    ///
    /// Pumps flushes on the calling thread, so it works whether or not a
    /// background flush loop is running.
    pub fn quiesce(&self) {
        loop {
            let settled = {
                let st = self.state.read();
                st.imm.is_none() && st.active.is_empty()
            };
            if settled && !self.disk.needs_compaction() {
                return;
            }
            // Force a switch of the non-empty active memtable.
            {
                let mut st = self.state.write();
                if st.imm.is_none() && !st.active.is_empty() {
                    let fresh = Arc::new(BaselineMemtable::new(self.memtable_kind));
                    st.imm = Some(std::mem::replace(&mut st.active, fresh));
                }
            }
            if !self.flush_once(true) {
                // Nothing to flush (a racing background flush beat us to
                // it, or only compaction debt remains).
                self.disk.compact_all().expect("compaction failed");
                std::thread::yield_now();
            }
        }
    }

    pub fn snapshot_stats(&self, fast_level_writes: u64) -> flodb_core::StoreStats {
        flodb_core::StoreStats {
            puts: self.stats.puts.load(Ordering::Relaxed),
            deletes: self.stats.deletes.load(Ordering::Relaxed),
            gets: self.stats.gets.load(Ordering::Relaxed),
            scans: self.stats.scans.load(Ordering::Relaxed),
            scanned_keys: self.stats.scanned_keys.load(Ordering::Relaxed),
            persists: self.stats.persists.load(Ordering::Relaxed),
            fast_level_writes,
            ..flodb_core::StoreStats::default()
        }
    }
}

/// Spawns the named background thread.
pub(crate) fn spawn_thread(
    name: &str,
    f: impl FnOnce() + Send + 'static,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("failed to spawn background thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_get() {
        let core = LsmCore::new(&BaselineOptions::small_for_tests());
        let seq = core.seq.next();
        core.write(b"k", seq, Some(b"v"));
        assert_eq!(core.get_latest(b"k"), Some(b"v".to_vec()));
        assert_eq!(core.get_latest(b"missing"), None);
    }

    #[test]
    fn switch_and_flush_on_budget() {
        let mut opts = BaselineOptions::small_for_tests();
        opts.memory_bytes = 4 * 1024;
        let core = LsmCore::new(&opts);
        for i in 0..200u64 {
            let seq = core.seq.next();
            core.write(&i.to_be_bytes(), seq, Some(&[0u8; 64]));
            core.flush_once(true);
        }
        assert!(core.stats.persists.load(Ordering::Relaxed) > 0);
        for i in (0..200u64).step_by(17) {
            assert!(core.get_latest(&i.to_be_bytes()).is_some(), "key {i}");
        }
    }

    #[test]
    fn scan_merges_all_sources() {
        let core = LsmCore::new(&BaselineOptions::small_for_tests());
        for i in 0..10u64 {
            let seq = core.seq.next();
            core.write(&i.to_be_bytes(), seq, Some(&i.to_le_bytes()));
        }
        core.quiesce();
        // Some data on disk now; write more in memory, delete one key.
        let seq = core.seq.next();
        core.write(&3u64.to_be_bytes(), seq, None);
        let out = core.scan_snapshot(&0u64.to_be_bytes(), &9u64.to_be_bytes());
        assert_eq!(out.len(), 9, "deleted key hidden");
    }

    #[test]
    fn hash_memtable_core_works() {
        let mut opts = BaselineOptions::small_for_tests();
        opts.memtable = MemtableKind::HashTable;
        let core = LsmCore::new(&opts);
        for i in 0..50u64 {
            let seq = core.seq.next();
            core.write(&i.to_be_bytes(), seq, Some(b"v"));
        }
        assert_eq!(core.get_latest(&25u64.to_be_bytes()), Some(b"v".to_vec()));
        let out = core.scan_snapshot(&0u64.to_be_bytes(), &49u64.to_be_bytes());
        assert_eq!(out.len(), 50);
        core.quiesce();
        assert_eq!(core.get_latest(&25u64.to_be_bytes()), Some(b"v".to_vec()));
    }
}
