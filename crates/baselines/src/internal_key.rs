//! Internal key encoding for multi-versioned memtables.
//!
//! LevelDB-lineage systems never update in place: each write appends a new
//! `(user_key, sequence)` version. We store versions in the same byte-
//! ordered skiplist FloDB uses by encoding `(user_key asc, seq desc)` into
//! a single byte string:
//!
//! ```text
//! escape(user_key) ++ 0x00 0x00 ++ big_endian(u64::MAX - seq)
//! ```
//!
//! where `escape` maps `0x00` to `0x00 0xFF`. The terminator `0x00 0x00`
//! sorts below every escaped byte, so user-key order is preserved even for
//! keys that are prefixes of one another, and within one user key newer
//! sequences sort first.

/// Escapes `user_key` and appends the terminator, without the seq suffix.
///
/// The result is a *prefix* shared by every version of the key; use it for
/// seeks and grouping.
pub fn encode_user_prefix(user_key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(user_key.len() + 2);
    for &b in user_key {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
    out
}

/// Encodes `(user_key, seq)` as an internal key.
pub fn encode_internal(user_key: &[u8], seq: u64) -> Vec<u8> {
    let mut out = encode_user_prefix(user_key);
    out.extend_from_slice(&(u64::MAX - seq).to_be_bytes());
    out
}

/// Decodes an internal key back to `(user_key, seq)`.
///
/// Returns `None` on malformed input.
pub fn decode_internal(internal: &[u8]) -> Option<(Vec<u8>, u64)> {
    if internal.len() < 10 {
        return None;
    }
    let (prefix, seq_bytes) = internal.split_at(internal.len() - 8);
    let inv = u64::from_be_bytes(seq_bytes.try_into().ok()?);
    let seq = u64::MAX - inv;
    // Unescape the prefix, which must end with the 0x00 0x00 terminator.
    if prefix.len() < 2 || prefix[prefix.len() - 2..] != [0x00, 0x00] {
        return None;
    }
    let body = &prefix[..prefix.len() - 2];
    let mut key = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i] == 0x00 {
            if i + 1 >= body.len() || body[i + 1] != 0xFF {
                return None;
            }
            key.push(0x00);
            i += 2;
        } else {
            key.push(body[i]);
            i += 1;
        }
    }
    Some((key, seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for key in [&b"simple"[..], b"", b"\x00", b"a\x00b", b"\x00\x00\xFF"] {
            for seq in [0u64, 1, 42, u64::MAX - 1] {
                let enc = encode_internal(key, seq);
                let (k, s) = decode_internal(&enc).expect("roundtrip");
                assert_eq!(k.as_slice(), key);
                assert_eq!(s, seq);
            }
        }
    }

    #[test]
    fn user_key_order_preserved() {
        // Including tricky prefix pairs and embedded zeros.
        let mut keys: Vec<&[u8]> = vec![b"a", b"ab", b"a\x00", b"b", b"", b"a\x00b"];
        keys.sort();
        let encoded: Vec<Vec<u8>> = keys.iter().map(|k| encode_internal(k, 5)).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted, "encoding must preserve user-key order");
    }

    #[test]
    fn newer_seq_sorts_first_within_key() {
        let newer = encode_internal(b"k", 10);
        let older = encode_internal(b"k", 5);
        assert!(newer < older);
    }

    #[test]
    fn versions_group_under_prefix() {
        let prefix = encode_user_prefix(b"key");
        for seq in [1u64, 7, 1000] {
            assert!(encode_internal(b"key", seq).starts_with(&prefix));
        }
        assert!(!encode_internal(b"kez", 1).starts_with(&prefix));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_internal(b"short").is_none());
        // Valid length but missing terminator.
        assert!(decode_internal(&[1u8; 12]).is_none());
    }
}
