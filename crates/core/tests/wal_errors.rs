//! WAL failure propagation: a failed append must reject the write (and
//! every write after it) instead of panicking mid-pipeline or — worse —
//! acknowledging a write the log lost.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use flodb_core::{FloDb, FloDbOptions, KvStore, WalMode, WriteBatch, WriteError};
use flodb_storage::env::{Env, MemEnv, RandomAccessFile, WritableFile};
use flodb_storage::{Result, StorageError};

/// An env whose writable files start failing once a shared append budget
/// is exhausted (negative budget = unlimited). Reads always work.
struct FailEnv {
    inner: MemEnv,
    appends_left: Arc<AtomicI64>,
}

impl FailEnv {
    fn new() -> (Arc<Self>, Arc<AtomicI64>) {
        let budget = Arc::new(AtomicI64::new(-1));
        let env = Arc::new(Self {
            inner: MemEnv::new(None),
            appends_left: Arc::clone(&budget),
        });
        (env, budget)
    }
}

struct FailingFile {
    inner: Box<dyn WritableFile>,
    appends_left: Arc<AtomicI64>,
}

impl WritableFile for FailingFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let left = self.appends_left.load(Ordering::Acquire);
        if left >= 0 && self.appends_left.fetch_sub(1, Ordering::AcqRel) <= 0 {
            self.appends_left.store(0, Ordering::Release);
            return Err(StorageError::Io(std::io::Error::other("injected failure")));
        }
        self.inner.append(data)
    }
    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
    fn finish(&mut self) -> Result<()> {
        self.inner.finish()
    }
}

impl Env for FailEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        Ok(Box::new(FailingFile {
            inner: self.inner.new_writable(name)?,
            appends_left: Arc::clone(&self.appends_left),
        }))
    }
    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        self.inner.open_random(name)
    }
    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }
    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

fn opts(env: Arc<dyn Env>, group_commit: bool) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync: false };
    opts.wal_group_commit = group_commit;
    // Keep the disk component off the failing env's append path as long
    // as possible: no eager flush happens in these short tests.
    opts.persist_enabled = false;
    opts
}

#[test]
fn wal_failure_rejects_write_and_poisons_store() {
    for group_commit in [true, false] {
        let (env, budget) = FailEnv::new();
        let db = FloDb::open(opts(env, group_commit)).unwrap();
        db.put(b"good", b"1").unwrap();

        budget.store(0, Ordering::Release); // Log dies now.
        let err = db.put(b"lost", b"2").unwrap_err();
        assert!(
            matches!(err, WriteError::Wal(_)),
            "first failure must surface as Wal, got {err:?} (group={group_commit})"
        );
        // The failed write was never applied — acknowledged state only.
        assert_eq!(db.get(b"lost"), None);

        // Poisoned: later writes are rejected without touching the log,
        // carrying the original failure.
        let err = db.put(b"after", b"3").unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        let err = db.delete(b"good").unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        assert!(db.wal_poison().is_some());
        assert!(db.wal_poison().unwrap().to_string().contains("injected"));

        // Reads and scans keep serving the acknowledged prefix.
        assert_eq!(db.get(b"good"), Some(b"1".to_vec()));
        assert_eq!(db.scan(b"a", b"z").len(), 1);
    }
}

#[test]
fn failed_batch_applies_none_of_its_operations() {
    for group_commit in [true, false] {
        let (env, budget) = FailEnv::new();
        let db = FloDb::open(opts(env, group_commit)).unwrap();
        db.put(b"keep", b"1").unwrap();

        budget.store(0, Ordering::Release); // Log dies now.
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"keep");
        let err = db.write(&batch).unwrap_err();
        assert!(
            matches!(err, WriteError::Wal(_)),
            "batch failure must surface as Wal, got {err:?} (group={group_commit})"
        );
        // None of the batch's operations were applied: `Err` means the
        // whole batch was rejected, not a prefix of it.
        assert_eq!(db.get(b"a"), None);
        assert_eq!(db.get(b"b"), None);
        assert_eq!(db.get(b"keep"), Some(b"1".to_vec()));
        // And the store is poisoned for subsequent batches too — even an
        // empty one must not read as a healthy write path.
        let err = db.write(&batch).unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        let err = db.write(&WriteBatch::new()).unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "empty batch: {err:?}");
        assert_eq!(db.stats().puts, 1, "failed batch must not count");
    }
}

#[test]
fn acknowledged_prefix_survives_recovery_after_failure() {
    let (env, budget) = FailEnv::new();
    let env_dyn: Arc<dyn Env> = Arc::clone(&env) as Arc<dyn Env>;
    {
        let db = FloDb::open(opts(Arc::clone(&env_dyn), true)).unwrap();
        for i in 0..50u64 {
            db.put(&i.to_be_bytes(), b"acked").unwrap();
        }
        budget.store(0, Ordering::Release);
        assert!(db.put(b"never", b"acked").is_err());
        // Crash while poisoned.
    }
    budget.store(-1, Ordering::Release); // The disk heals on restart.
    let db = FloDb::open(opts(env_dyn, true)).unwrap();
    for i in 0..50u64 {
        assert_eq!(db.get(&i.to_be_bytes()), Some(b"acked".to_vec()), "key {i}");
    }
    assert_eq!(db.get(b"never"), None, "unacknowledged write must not replay");
}
