//! WAL failure propagation: a failed append must reject the write (and
//! every write after it) instead of panicking mid-pipeline or — worse —
//! acknowledging a write the log lost.
//!
//! Faults come from the shared [`FaultEnv`] (armed at the
//! `"segment-append"` trip point), so these tests exercise the same
//! injection layer as the whole-store fault sweep.

use std::sync::Arc;

use flodb_core::{FloDb, FloDbOptions, KvStore, WalMode, WriteBatch, WriteError};
use flodb_storage::env::{Env, MemEnv};
use flodb_storage::{FaultEnv, FaultKind, FaultPlan};

fn fault_env() -> Arc<FaultEnv> {
    Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))))
}

fn opts(env: Arc<dyn Env>, group_commit: bool) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync: false };
    opts.wal_group_commit = group_commit;
    // Keep the disk component off the failing env's append path as long
    // as possible: no eager flush happens in these short tests.
    opts.persist_enabled = false;
    opts
}

#[test]
fn wal_failure_rejects_write_and_poisons_store() {
    for group_commit in [true, false] {
        let env = fault_env();
        let db = FloDb::open(opts(Arc::clone(&env) as Arc<dyn Env>, group_commit)).unwrap();
        db.put(b"good", b"1").unwrap();

        // Log dies now: every segment append from here on fails.
        env.arm(FaultPlan::persistent("segment-append", FaultKind::Io));
        let err = db.put(b"lost", b"2").unwrap_err();
        assert!(
            matches!(err, WriteError::Wal(_)),
            "first failure must surface as Wal, got {err:?} (group={group_commit})"
        );
        // The failed write was never applied — acknowledged state only.
        assert_eq!(db.get(b"lost"), None);

        // Poisoned: later writes are rejected without touching the log,
        // carrying the original failure.
        let err = db.put(b"after", b"3").unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        let err = db.delete(b"good").unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        assert!(db.wal_poison().is_some());
        assert!(db.wal_poison().unwrap().to_string().contains("injected"));
        assert!(env.injected("segment-append") >= 1, "the fault really fired");

        // Reads and scans keep serving the acknowledged prefix.
        assert_eq!(db.get(b"good"), Some(b"1".to_vec()));
        assert_eq!(db.scan(b"a", b"z").len(), 1);
    }
}

#[test]
fn failed_batch_applies_none_of_its_operations() {
    for group_commit in [true, false] {
        let env = fault_env();
        let db = FloDb::open(opts(Arc::clone(&env) as Arc<dyn Env>, group_commit)).unwrap();
        db.put(b"keep", b"1").unwrap();

        // Log dies now.
        env.arm(FaultPlan::persistent("segment-append", FaultKind::Io));
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"keep");
        let err = db.write(&batch).unwrap_err();
        assert!(
            matches!(err, WriteError::Wal(_)),
            "batch failure must surface as Wal, got {err:?} (group={group_commit})"
        );
        // None of the batch's operations were applied: `Err` means the
        // whole batch was rejected, not a prefix of it.
        assert_eq!(db.get(b"a"), None);
        assert_eq!(db.get(b"b"), None);
        assert_eq!(db.get(b"keep"), Some(b"1".to_vec()));
        // And the store is poisoned for subsequent batches too — even an
        // empty one must not read as a healthy write path.
        let err = db.write(&batch).unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "got {err:?}");
        let err = db.write(&WriteBatch::new()).unwrap_err();
        assert!(matches!(err, WriteError::Poisoned(_)), "empty batch: {err:?}");
        assert_eq!(db.stats().puts, 1, "failed batch must not count");
    }
}

#[test]
fn acknowledged_prefix_survives_recovery_after_failure() {
    let env = fault_env();
    let env_dyn: Arc<dyn Env> = Arc::clone(&env) as Arc<dyn Env>;
    {
        let db = FloDb::open(opts(Arc::clone(&env_dyn), true)).unwrap();
        for i in 0..50u64 {
            db.put(&i.to_be_bytes(), b"acked").unwrap();
        }
        env.arm(FaultPlan::persistent("segment-append", FaultKind::Io));
        assert!(db.put(b"never", b"acked").is_err());
        // Crash while poisoned.
    }
    env.disarm_all(); // The disk heals on restart.
    let db = FloDb::open(opts(env_dyn, true)).unwrap();
    for i in 0..50u64 {
        assert_eq!(db.get(&i.to_be_bytes()), Some(b"acked".to_vec()), "key {i}");
    }
    assert_eq!(db.get(b"never"), None, "unacknowledged write must not replay");
}
