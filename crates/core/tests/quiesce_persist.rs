//! Regression test for the quiesce/persist-switch race (pre-existing
//! `examples/message_queue.rs` flake): `quiesce()` used to return while a
//! Memtable sitting above the flush trigger still had its persist switch
//! ahead of it, so the caller's first post-quiesce scans raced the
//! switch/flush/release sequence. Quiesce must wait the pending switch
//! out: afterwards the persist thread provably leaves the view alone
//! until the next write, and the first scan's snapshot is stable.

use flodb_core::{FloDb, FloDbOptions, KvStore};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

/// Options whose Memtable trigger a short burst of writes can exceed
/// deterministically: no Membuffer (writes land straight in the
/// Memtable), 256 KiB memory (⇒ 192 KiB trigger at the default split).
fn over_trigger_opts() -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.membuffer_enabled = false;
    opts.drain_threads = 0;
    opts
}

#[test]
fn quiesce_waits_out_a_pending_persist_switch() {
    // Amplified: each round builds the racy state fresh — a Memtable above
    // the trigger the instant quiesce is called. Pre-fix, quiesce could
    // observe "no immutable components" before the persist thread reacted
    // and return with the switch still pending; these assertions then
    // failed on whichever round lost the race.
    for round in 0..10 {
        let db = FloDb::open(over_trigger_opts()).unwrap();
        const KEYS: u64 = 300;
        for n in 0..KEYS {
            db.put(&key(n), &[n as u8; 1024]).unwrap(); // ~300 KiB > trigger
        }
        db.quiesce();

        // The contract the message_queue example relies on: after
        // quiesce, nothing is left for the persist thread to switch...
        let persists_after_quiesce = db.stats().persists;
        assert!(
            persists_after_quiesce >= 1,
            "round {round}: an over-trigger Memtable must have been flushed"
        );
        assert!(
            db.memory_usage() < 192 * 1024,
            "round {round}: quiesce returned with the Memtable still over \
             the flush trigger ({} bytes)",
            db.memory_usage()
        );
        // ...so the first post-quiesce scans see every live key and no
        // component switch happens underneath them.
        for _ in 0..3 {
            let scanned = db.scan(&key(0), &key(KEYS)).len() as u64;
            assert_eq!(scanned, KEYS, "round {round}: scan missed live keys");
        }
        assert_eq!(
            db.stats().persists,
            persists_after_quiesce,
            "round {round}: a persist switch ran during post-quiesce scans"
        );
    }
}

#[test]
fn quiesce_settles_membuffer_stores_too() {
    // Same contract with the full two-level memory component: drains,
    // pending switch and flush all settle before quiesce returns.
    let mut opts = FloDbOptions::small_for_tests();
    opts.memory_bytes = 128 * 1024;
    let db = FloDb::open(opts).unwrap();
    const KEYS: u64 = 400;
    for n in 0..KEYS {
        db.put(&key(n), &[n as u8; 512]).unwrap();
    }
    db.quiesce();
    let persists = db.stats().persists;
    assert_eq!(db.scan(&key(0), &key(KEYS)).len() as u64, KEYS);
    assert_eq!(db.get(&key(123)).as_deref(), Some(&[123u8; 512][..]));
    assert_eq!(db.stats().persists, persists, "switch ran after quiesce");
}
