//! Regression test for `quiesce()` settling epoch reclamation.
//!
//! `quiesce()` pumps the epoch collector until the deferred and executed
//! destruction counters converge (best-effort, within a bounded wait) —
//! the background drain threads keep pinning on their idle beat, so a
//! fixed number of pump rounds is not enough and quiesce must retry until
//! the counters converge. This lives in its own integration-test binary
//! (its own process) because the reclamation counters are process-global
//! and sibling tests would otherwise race them.

#![cfg(feature = "epoch-shim-stats")]

use std::sync::Arc;

use flodb_core::{FloDb, FloDbOptions, FloDbStats, KvStore};

#[test]
fn reclamation_converges_right_after_quiesce() {
    let db = Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap());

    // Writers churn replace+delete on a small overlapping key range so the
    // memory component retires plenty of nodes through the epoch collector.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..5_000u64 {
                let key = (i % 512).to_be_bytes();
                if (i + t) % 7 == 0 {
                    db.delete(&key).unwrap();
                } else {
                    db.put(&key, &i.to_be_bytes()).unwrap();
                }
                if i % 97 == 0 {
                    let _ = db.get(&key);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // quiesce() settles reclamation best-effort within a bounded wait (an
    // overloaded scheduler can deschedule a drain thread past its budget),
    // so poll it rather than assuming a single call converges.
    let mut rec = FloDbStats::reclamation();
    for _ in 0..100 {
        db.quiesce();
        rec = FloDbStats::reclamation();
        if rec.destructions_executed == rec.destructions_deferred {
            break;
        }
    }
    assert!(rec.destructions_deferred > 0, "churn must retire nodes");
    assert_eq!(
        rec.destructions_executed, rec.destructions_deferred,
        "reclamation must converge at quiescence"
    );
}
