//! The FloDB store: user-facing operations and background threads.
//!
//! Operation flow follows the paper exactly:
//!
//! - **Put/Delete** (Algorithm 2): try the Membuffer; on a full bucket fall
//!   through to the Memtable, first honoring `pauseWriters` (helping drain
//!   the frozen Membuffer if one exists) and waiting for Memtable room.
//! - **Get** (Algorithm 2): MBF → IMM_MBF → MTB → IMM_MTB → disk; first
//!   hit wins because levels are searched in data-flow order.
//! - **Scan** (Algorithm 3): a master scan freezes writers, swaps in a
//!   fresh Membuffer, drains the frozen one (with writer help), takes a
//!   sequence number, unfreezes, then iterates MTB/IMM_MTB/disk; any entry
//!   fresher than the scan number forces a restart, bounded by a
//!   writer-blocking fallback. Concurrent scans piggyback on the master's
//!   sequence number.
//! - **Draining** (Figure 6) and **persisting** run on background threads;
//!   component switches use RCU and never block readers or writers.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flodb_membuffer::{AddResult, MemBuffer, MemBufferConfig};
use flodb_memtable::SkipList;
use flodb_storage::log_manager::{self, LogConfig, LogManager};
use flodb_storage::record::encode_record_parts;
use flodb_storage::wal;
use flodb_storage::{DiskComponent, Record, StorageError};
use flodb_sync::{
    Backoff, CommitRole, GroupCommitConfig, GroupCommitter, PauseFlag, PhasedInflight,
    SequenceGenerator,
};
use flodb_sync::lock_order::{
    CORE_DEGRADED, CORE_FREEZE, CORE_PERSIST_PARK, CORE_ROOM, CORE_THREADS, WAL_LOG, WAL_POISON,
};
use flodb_sync::shim::{ranked_condvar, ranked_mutex, Condvar, Mutex};

use crate::api::{KvStore, ScanEntry, StoreStats, WriteBatch};
use crate::drain::{self, DrainStyle};
use crate::error::{OpenError, WriteError};
use crate::options::{FloDbOptions, WalMode};
use crate::scan::{ScanCoordinator, ScanRole};
use crate::stats::FloDbStats;
use crate::telemetry::{
    EngineTelemetry, OpClass, StageClass, TelemetrySnapshot, TraceEvent, TraceEventKind,
};
use crate::view::{ImmMembuffer, MemView, ViewCell};

/// Scan outcome signalling that a concurrent update invalidated the scan.
struct Restart;

/// A validated scan snapshot: key → (seq, value), tombstones included so
/// the merge can shadow older versions; the emission loop filters them.
type MergedRange = std::collections::BTreeMap<Box<[u8]>, (u64, Option<Box<[u8]>>)>;

/// The durability half of the write path: the log writer plus the
/// group-commit pipeline in front of it, and the poison latch that makes
/// log failures deterministic.
struct WalState {
    /// Leader/follower batching; `None` runs the legacy per-put pipeline
    /// (every put appends its own frame under the log mutex).
    committer: Option<GroupCommitter<StorageError>>,
    /// The segmented log (active writer + sealed backlog). With group
    /// commit only one leader at a time touches it, so this mutex is
    /// uncontended; in legacy mode it is the global per-put bottleneck
    /// the group-commit pipeline exists to remove.
    log: Mutex<LogManager>,
    /// Tracks each write's logged→applied window so segment retirement
    /// can wait until everything logged into a sealed segment has reached
    /// the memory component (and is therefore covered by the next
    /// checkpoint's flush). See [`PhasedInflight`].
    inflight: PhasedInflight,
    /// Latched on the first append failure; checked (relaxed-fast) by
    /// every write.
    poisoned: AtomicBool,
    /// The failure that latched `poisoned`.
    poison: Mutex<Option<Arc<StorageError>>>,
}

impl WalState {
    /// Appends through `op` with the poison latch held closed around it:
    /// refuses if already poisoned, and latches *before releasing the
    /// log mutex* on failure. The latch must close inside this
    /// critical section — a failed append can leave a torn frame, and a
    /// commit racing in after it would append (and acknowledge) records
    /// that replay, which stops at the tear, can never recover.
    fn append_checked<T>(
        &self,
        op: impl FnOnce(&mut LogManager) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut log = self.log.lock();
        if self.poisoned.load(Ordering::Acquire) {
            return Err(StorageError::Io(std::io::Error::other(
                "write-ahead log poisoned by an earlier append failure",
            )));
        }
        let result = op(&mut log);
        if let Err(e) = &result {
            let mut slot = self.poison.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(StorageError::Io(std::io::Error::other(
                    e.to_string(),
                ))));
            }
            self.poisoned.store(true, Ordering::Release);
        }
        result
    }

    /// The failure that poisoned this log, if any.
    fn poison_err(&self) -> Option<Arc<StorageError>> {
        self.poison.lock().clone()
    }

    /// The [`WriteError`] a write on a poisoned log reports. The latch is
    /// published after the error slot is filled, so a populated slot is
    /// the expected case; the fallback only covers a racing reader that
    /// observes the latch between the two stores.
    fn poison_error(&self) -> WriteError {
        let err = self.poison.lock().clone().unwrap_or_else(|| {
            Arc::new(StorageError::Io(std::io::Error::other(
                "write-ahead log poisoned by an earlier append failure",
            )))
        });
        WriteError::Poisoned(err)
    }
}

struct Inner {
    opts: FloDbOptions,
    memtable_trigger: usize,
    drain_style: DrainStyle,
    view: ViewCell,
    seq: SequenceGenerator,
    disk: DiskComponent,
    pause_writers: PauseFlag,
    pause_draining: PauseFlag,
    coord: ScanCoordinator,
    /// Serializes [freeze .. stamp] windows across master and fallback
    /// scans. Two interleaved freezes would let the second one drain
    /// writes made *after* the first scan's linearization point into the
    /// Memtable with sequence numbers *below* the first scan's stamp,
    /// silently including a partial post-cut round in its snapshot.
    freeze_lock: Mutex<()>,
    stats: FloDbStats,
    stop: AtomicBool,
    force_flush: AtomicBool,
    /// Writers waiting for Memtable room park here (Algorithm 2, line 18).
    room: Mutex<()>,
    room_cv: Condvar,
    /// The persist thread parks here between checks.
    persist_park: Mutex<()>,
    persist_cv: Condvar,
    wal: Option<WalState>,
    /// Store-level health latch, closed by a *persistent* background I/O
    /// failure (a flush or compaction still failing after its bounded
    /// retries). Degraded means: writes are rejected (so memory stays
    /// bounded), reads keep serving everything acknowledged — including
    /// the un-flushable immutable Memtable, which stays resident — and
    /// `quiesce` treats the un-flushable work as settled instead of
    /// wedging. The WAL is never retired once degraded, so a reopen
    /// replays every acknowledged write: reopen is the path back to
    /// health (see ARCHITECTURE.md "Failure model").
    degraded: AtomicBool,
    /// The failure that latched `degraded`.
    degraded_reason: Mutex<Option<Arc<StorageError>>>,
    /// Level-gated latency recorder and flight recorder (see
    /// [`crate::telemetry`]); at `TelemetryLevel::Off` this is one cached
    /// enum and two `None`s, and every telemetry call site reduces to a
    /// branch on it.
    telemetry: EngineTelemetry,
}

/// The FloDB key-value store.
///
/// See the crate documentation for the architecture; construct with
/// [`FloDb::open`] and interact through the [`KvStore`] trait.
pub struct FloDb {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn new_membuffer(&self) -> Arc<MemBuffer> {
        Arc::new(MemBuffer::new(membuffer_config(&self.opts)))
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Latches the store degraded after `what` kept failing through its
    /// bounded retries. First failure wins the reason slot; the latch is
    /// published after the slot is filled (same publication order as the
    /// WAL poison latch).
    fn degrade(&self, what: &str, err: &StorageError) {
        FloDbStats::bump(&self.stats.io_degraded);
        let mut slot = self.degraded_reason.lock();
        if slot.is_none() {
            *slot = Some(Arc::new(StorageError::Io(std::io::Error::other(format!(
                "store degraded: {what} failed persistently: {err}"
            )))));
        }
        drop(slot);
        self.degraded.store(true, Ordering::Release);
        // Flight-recorder postmortem: the trip plus the auto-dump, after
        // the reason lock is released (the dump takes its own leaf lock).
        self.telemetry.event(TraceEventKind::Degraded, 0, 0);
        self.telemetry.dump_to_stderr(what);
    }

    /// The [`WriteError`] a write on a degraded store reports.
    fn degraded_error(&self) -> WriteError {
        let err = self.degraded_reason.lock().clone().unwrap_or_else(|| {
            Arc::new(StorageError::Io(std::io::Error::other(
                "store degraded by a persistent background I/O failure",
            )))
        });
        WriteError::Poisoned(err)
    }

    /// Rejects new writes once the health latch is closed. One choke
    /// point for every write path, WAL-enabled or not.
    fn check_degraded(&self) -> Result<(), WriteError> {
        if self.is_degraded() {
            return Err(self.degraded_error());
        }
        Ok(())
    }
}

/// Maximum reattempts for one background I/O operation before it is
/// treated as persistently failing.
const IO_RETRY_LIMIT: u32 = 3;

/// Runs `op` with bounded retry-with-backoff for transient I/O errors:
/// each failed attempt is counted in `io_retries`, ramped through the
/// shared [`Backoff`] (yields first) and then a short real sleep —
/// transient conditions like a full device queue or a briefly
/// unwritable directory clear in milliseconds, not in spin loops. After
/// [`IO_RETRY_LIMIT`] reattempts the last error is returned and the
/// caller decides the degradation (latch, counter, or give-up).
fn io_with_retries<T>(
    inner: &Inner,
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, StorageError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= IO_RETRY_LIMIT {
                    return Err(e);
                }
                attempt += 1;
                FloDbStats::bump(&inner.stats.io_retries);
                inner
                    .telemetry
                    .event(TraceEventKind::IoRetry, u64::from(attempt), 0);
                let backoff = Backoff::new();
                while !backoff.is_completed() {
                    backoff.snooze();
                }
                std::thread::sleep(Duration::from_millis(1 << attempt.min(4)));
            }
        }
    }
}

fn membuffer_config(opts: &FloDbOptions) -> MemBufferConfig {
    MemBufferConfig::for_capacity_bytes(
        opts.membuffer_bytes(),
        opts.partition_bits,
        opts.avg_entry_bytes,
    )
}

impl FloDb {
    /// Opens a store with `opts`, spawning the background threads.
    ///
    /// The disk component recovers its file layout from the manifest (when
    /// `opts.disk.manifest` is set). If a write-ahead log is enabled and
    /// log files exist in the environment, their intact frames are
    /// replayed, flushed to the recovered disk component, and the consumed
    /// logs deleted; sequence numbering resumes past them.
    ///
    /// # Errors
    ///
    /// [`OpenError::Options`] if `opts` fails validation,
    /// [`OpenError::Storage`] if manifest recovery, log replay or log
    /// creation fails, and [`OpenError::Spawn`] if a background thread
    /// cannot be started.
    pub fn open(opts: FloDbOptions) -> Result<Self, OpenError> {
        opts.validate()?;
        let disk = DiskComponent::open(Arc::clone(&opts.env), opts.disk)?;

        // Recover WAL contents, if any. The sequence counter must resume
        // past everything already persisted: disk records keep their
        // original sequence numbers, and a fresh write stamped below them
        // would lose every seq-based merge (scans would resurrect stale
        // disk values).
        let mtb = Arc::new(SkipList::new());
        let mut max_seq = disk.max_persisted_seq();
        let mut next_generation = 1u64;
        if !matches!(opts.wal, WalMode::Disabled) {
            // Replay only the live generations: segments below the
            // manifest's oldest-live mark were retired (their contents
            // persisted) — any still on disk are leftovers of a crash
            // between the mark and the deletions.
            let recovered =
                log_manager::recover_segments(opts.env.as_ref(), disk.wal_oldest_live())?;
            for r in recovered.records {
                mtb.insert(&r.key, r.value.as_deref(), r.seq);
            }
            max_seq = max_seq.max(recovered.max_seq);
            next_generation = recovered.max_generation + 1;
            // With a manifest, settle the recovered state onto disk so the
            // replayed logs can be pruned; log growth is thereby bounded
            // across restarts. A crash in here simply replays the same
            // logs again (flushing is idempotent: duplicate records carry
            // identical seqs). Without a manifest the flushed layout would
            // not survive the *next* restart, so the recovered entries
            // must stay in the memory component and the logs must remain.
            if opts.disk.manifest {
                if !mtb.is_empty() {
                    let records: Vec<Record> = mtb
                        .collect_entries()
                        .into_iter()
                        .map(|(key, vv)| Record {
                            key,
                            seq: vv.seq,
                            value: vv.value,
                        })
                        .collect();
                    disk.flush_records(records)?;
                }
                // Advance the oldest-live mark durably *before* deleting
                // the consumed segments (crash in between leaves stale
                // files below the mark, which recovery ignores and the
                // next open prunes right here).
                disk.record_wal_oldest_live(next_generation)?;
                for log in &recovered.segment_names {
                    opts.env.delete(log)?;
                }
                opts.env.sync_dir()?;
            }
        }
        let mtb = if opts.disk.manifest && !matches!(opts.wal, WalMode::Disabled) {
            Arc::new(SkipList::new())
        } else {
            mtb
        };

        let wal = match opts.wal {
            WalMode::Disabled => None,
            WalMode::Enabled { sync } => {
                let log = LogManager::create(
                    Arc::clone(&opts.env),
                    LogConfig {
                        segment_max_bytes: opts.wal_segment_max_bytes as u64,
                        sync_on_write: sync,
                    },
                    next_generation,
                )?;
                Some(WalState {
                    committer: opts.wal_group_commit.then(|| {
                        GroupCommitter::new(GroupCommitConfig {
                            max_group_bytes: opts.wal_group_max_bytes,
                            // Groups are framed in place: the leader
                            // patches the WAL header into this reserved
                            // prefix and appends with one write, no
                            // payload re-copy.
                            frame_prefix: wal::FRAME_HEADER_BYTES,
                            max_group_wait: opts.wal_group_max_wait,
                            follower_spin: opts.wal_follower_spin,
                        })
                    }),
                    log: ranked_mutex(WAL_LOG, log),
                    inflight: PhasedInflight::new(),
                    poisoned: AtomicBool::new(false),
                    poison: ranked_mutex(WAL_POISON, None),
                })
            }
        };

        let membuffer_enabled = opts.membuffer_enabled;
        let memtable_trigger = opts.memtable_flush_trigger();
        let drain_style = if opts.use_multi_insert {
            DrainStyle::MultiInsert
        } else {
            DrainStyle::SimpleInsert
        };
        let drain_threads = opts.drain_threads;

        let inner = Arc::new(Inner {
            memtable_trigger,
            drain_style,
            view: ViewCell::new(MemView {
                mbf: membuffer_enabled.then(|| {
                    Arc::new(MemBuffer::new(membuffer_config(&opts)))
                }),
                imm_mbf: None,
                mtb,
                imm_mtb: None,
            }),
            seq: SequenceGenerator::starting_at(max_seq + 1),
            disk,
            pause_writers: PauseFlag::new(),
            pause_draining: PauseFlag::new(),
            coord: ScanCoordinator::new(),
            freeze_lock: ranked_mutex(CORE_FREEZE, ()),
            stats: FloDbStats::default(),
            stop: AtomicBool::new(false),
            force_flush: AtomicBool::new(false),
            room: ranked_mutex(CORE_ROOM, ()),
            room_cv: ranked_condvar(CORE_ROOM),
            persist_park: ranked_mutex(CORE_PERSIST_PARK, ()),
            persist_cv: ranked_condvar(CORE_PERSIST_PARK),
            wal,
            degraded: AtomicBool::new(false),
            degraded_reason: ranked_mutex(CORE_DEGRADED, None),
            telemetry: EngineTelemetry::new(opts.telemetry),
            opts,
        });
        if let Some(wal) = &inner.wal {
            let log = wal.log.lock();
            inner
                .stats
                .wal_generations
                .store(log.live_generations(), Ordering::Relaxed);
            inner
                .stats
                .wal_active_bytes
                .store(log.active_bytes(), Ordering::Relaxed);
        }

        let mut threads = Vec::new();
        if membuffer_enabled {
            for i in 0..drain_threads {
                let inner = Arc::clone(&inner);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("flodb-drain-{i}"))
                        .spawn(move || drain_loop(&inner, i))
                        .map_err(OpenError::Spawn)?,
                );
            }
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("flodb-persist".into())
                    .spawn(move || persist_loop(&inner))
                    .map_err(OpenError::Spawn)?,
            );
        }

        Ok(Self {
            inner,
            threads: ranked_mutex(CORE_THREADS, threads),
        })
    }

    /// Snapshot of FloDB-specific counters.
    pub fn flodb_stats(&self) -> &FloDbStats {
        &self.inner.stats
    }

    /// Snapshot of the engine's telemetry: counters plus (at
    /// `TelemetryLevel::Full`) per-op and per-stage latency histograms.
    /// Delta-able ([`TelemetrySnapshot::delta_since`]) and exportable as
    /// Prometheus-style text or JSON.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry.snapshot(self.inner.stats.snapshot())
    }

    /// The flight recorder's published events, oldest first (empty below
    /// `TelemetryLevel::Counters`). A bounded, allocation-free-in-steady-
    /// state trace of structural engine events — freezes, drains,
    /// rotations, retirements, flushes, compactions, stalls, I/O retries
    /// and the degraded latch — for postmortems: the same dump is written
    /// to stderr automatically when the store degrades.
    pub fn trace_dump(&self) -> Vec<TraceEvent> {
        self.inner.telemetry.trace_dump()
    }

    /// Whether the store has latched degraded: a background flush or
    /// compaction kept failing through its bounded retries. A degraded
    /// store rejects writes ([`WriteError::Poisoned`]), keeps serving
    /// every acknowledged read (the un-flushable Memtable stays
    /// resident), and never retires its WAL — so a reopen replays the
    /// log and recovers the full acknowledged state. See ARCHITECTURE.md
    /// "Failure model" for the contract.
    pub fn is_degraded(&self) -> bool {
        self.inner.is_degraded()
    }

    /// Disk-component statistics (files per level, compactions, bytes).
    pub fn disk_stats(&self) -> flodb_storage::DiskStats {
        self.inner.disk.stats()
    }

    /// Approximate bytes resident in the memory component.
    pub fn memory_usage(&self) -> usize {
        self.inner.view.read(|v| {
            v.mbf.as_ref().map_or(0, |m| m.approximate_bytes())
                + v.mtb.approximate_bytes()
                + v.imm_mtb.as_ref().map_or(0, |m| m.approximate_bytes())
        })
    }

    /// Forces the entire memory component down to disk and waits for
    /// quiescence (drains, flushes and compactions complete).
    pub fn flush_all(&self) {
        // ORDERING: the flag must be SC-ordered with the persist thread's
        // drain decision — store, then wake, then poll; a weaker store
        // could let a concurrently-parking persist thread read the old
        // flag after consuming the wake. Maintenance path, not hot.
        self.inner.force_flush.store(true, Ordering::SeqCst);
        let backoff = Backoff::new();
        loop {
            self.wake_persist();
            if self.inner.is_degraded() {
                // The remaining memory-resident data cannot be forced
                // down (that is what degraded *means*); waiting would
                // wedge this maintenance call forever.
                break;
            }
            let (mbf_len, imm_mbf, mtb_len, imm_mtb) = self.inner.view.read(|v| {
                (
                    v.mbf.as_ref().map_or(0, |m| m.len()),
                    v.imm_mbf.is_some(),
                    v.mtb.len(),
                    v.imm_mtb.is_some(),
                )
            });
            if mbf_len == 0 && !imm_mbf && mtb_len == 0 && !imm_mtb {
                break;
            }
            backoff.snooze();
        }
        // ORDERING: symmetric with the set above; the clear must not be
        // reorderable before the final emptiness poll that justified it.
        self.inner.force_flush.store(false, Ordering::SeqCst);
        if self.inner.is_degraded() {
            return;
        }
        if let Err(e) = io_with_retries(&self.inner, || self.inner.disk.compact_all()) {
            // Maintenance entry point, not the write path: a persistently
            // broken disk degrades the store instead of panicking; the
            // flushed data is already durable.
            self.inner.degrade("compaction", &e);
        }
    }

    fn wake_persist(&self) {
        let _g = self.inner.persist_park.lock();
        self.inner.persist_cv.notify_all();
    }

    /// Appends one write to the commit log (when enabled), then applies it
    /// to the memory component. `Err` means the write was *not*
    /// acknowledged: its log group failed (or the store was already
    /// poisoned) and nothing was applied.
    ///
    /// The in-flight window spans log append through memory apply: WAL
    /// segment retirement flips this tracker and waits, so a segment is
    /// never retired while a write logged into it has yet to reach the
    /// memory component (where the retirement checkpoint's flush covers
    /// it).
    fn put_impl(&self, key: &[u8], value: Option<&[u8]>) -> Result<(), WriteError> {
        let _inflight = self.inner.wal.as_ref().map(|w| w.inflight.enter());
        self.wal_append(|inner, buf| encode_record_parts(buf, key, inner.seq.next(), value), 1)?;
        self.apply_to_memory(key, value);
        Ok(())
    }

    /// Appends every operation of `batch` to the commit log as **one**
    /// submission, then applies the operations to the memory component in
    /// insertion order. One submission means the whole batch lands inside
    /// a single group — and therefore a single WAL frame — so crash
    /// recovery (which truncates at frame granularity) replays it
    /// all-or-nothing.
    fn write_impl(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        if batch.is_empty() {
            // Even an empty commit observes the poison and health
            // latches — the contract is that *every* write on a poisoned
            // or degraded store reports it, so an empty batch cannot
            // read as a healthy write path.
            self.inner.check_degraded()?;
            if let Some(wal) = &self.inner.wal {
                if wal.poisoned.load(Ordering::Acquire) {
                    return Err(wal.poison_error());
                }
            }
            return Ok(());
        }
        // Logged→applied window; see `put_impl`.
        let _inflight = self.inner.wal.as_ref().map(|w| w.inflight.enter());
        self.wal_append(
            |inner, buf| {
                for (key, value) in batch.iter() {
                    encode_record_parts(buf, key, inner.seq.next(), value);
                }
            },
            batch.len() as u64,
        )?;
        for (key, value) in batch.iter() {
            self.apply_to_memory(key, value);
        }
        Ok(())
    }

    /// Like [`KvStore::write`], but stamps the batch's WAL frame with a
    /// sub-batch annotation (see [`wal::BatchAnnotation`]). The sharded
    /// router uses this to tie sibling sub-batches together across shard
    /// logs: the annotation is encoded at the head of the frame payload,
    /// inside the committer's critical section, so it and its records are
    /// contiguous in one frame and recover all-or-nothing. Recovery strips
    /// annotations out of the replayed records, so a tagged write replays
    /// exactly like an untagged one.
    ///
    /// Operation stats (`puts`/`deletes`) are counted here, like
    /// [`KvStore::write`] counts them; `wal_group_records` counts only the
    /// real operations, not the annotation.
    pub fn write_tagged(
        &self,
        batch: &WriteBatch,
        tag: wal::BatchAnnotation,
    ) -> Result<(), WriteError> {
        debug_assert_eq!(tag.ops as usize, batch.len(), "annotation ops must match batch");
        if batch.is_empty() {
            // Nothing to annotate; keep the empty-write poison contract.
            return self.write_impl(batch);
        }
        // Logged→applied window; see `put_impl`.
        let t0 = self.inner.telemetry.full().then(Instant::now);
        let _inflight = self.inner.wal.as_ref().map(|w| w.inflight.enter());
        self.wal_append(
            |inner, buf| {
                tag.encode_into(buf);
                for (key, value) in batch.iter() {
                    encode_record_parts(buf, key, inner.seq.next(), value);
                }
            },
            batch.len() as u64,
        )?;
        for (key, value) in batch.iter() {
            self.apply_to_memory(key, value);
        }
        FloDbStats::add(&self.inner.stats.puts, batch.puts());
        FloDbStats::add(&self.inner.stats.deletes, batch.deletes());
        if let Some(t0) = t0 {
            self.inner
                .telemetry
                .record_op(OpClass::Put, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Runs one validated scan of `[low, high)` and returns the live
    /// entries as an owned, sorted snapshot.
    ///
    /// This is the fan-out building block for the sharded router: each
    /// shard materializes its snapshot through the full restart protocol,
    /// then the router k-way-merges the per-shard snapshots and streams
    /// them to the caller's visitor. Unlike [`KvStore::scan_with`], an
    /// early `ControlFlow::Break` in that merge prunes the *emission*, not
    /// the snapshot construction — the restart protocol validates a whole
    /// range at a time. Counts one `scans` and the returned entries as
    /// `scanned_keys`, so aggregated stats stay comparable with the
    /// unsharded path.
    pub fn scan_snapshot(&self, low: &[u8], high: &[u8]) -> Vec<ScanEntry> {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        let merged = self.scan_impl(low, high);
        if let Some(t0) = t0 {
            self.inner
                .telemetry
                .record_op(OpClass::Scan, t0.elapsed().as_nanos() as u64);
        }
        FloDbStats::bump(&self.inner.stats.scans);
        let out: Vec<ScanEntry> = merged
            .iter()
            .filter_map(|(key, (_, value))| {
                value.as_ref().map(|v| (key.to_vec(), v.to_vec()))
            })
            .collect();
        FloDbStats::add(&self.inner.stats.scanned_keys, out.len() as u64);
        out
    }

    /// Commits one submission — `encode` writes its record(s), `records`
    /// many — through the log pipeline. Infallibly a no-op when the WAL is
    /// disabled.
    fn wal_append(
        &self,
        encode: impl FnOnce(&Inner, &mut Vec<u8>),
        records: u64,
    ) -> Result<(), WriteError> {
        let inner = &*self.inner;
        // The health latch gates every write path, WAL-enabled or not:
        // once background persistence failed persistently, accepting
        // writes would grow memory without bound (nothing drains it).
        inner.check_degraded()?;
        let Some(wal) = &inner.wal else {
            return Ok(());
        };
        if wal.poisoned.load(Ordering::Acquire) {
            return Err(wal.poison_error());
        }
        // Commit-wait attribution (`TelemetryLevel::Full`): time the whole
        // submission, subtract the time this thread's own commit closure
        // ran. For a leader that leaves queueing plus group formation; for
        // a follower (whose closure never runs) the whole submission is
        // waiting on another thread's commit.
        let t_submit = inner.telemetry.full().then(Instant::now);
        let commit_ns = std::cell::Cell::new(0u64);
        let timed_commit = |frame: &mut Vec<u8>| self.commit_group_frame(wal, frame, &commit_ns);
        let outcome = match &wal.committer {
            Some(committer) => committer.submit(
                // Encoding runs inside the committer's critical section,
                // so sampling sequence numbers there makes log order match
                // sequence order exactly — and keeps a multi-record
                // submission's records contiguous in the group.
                |buf| encode(inner, buf),
                timed_commit,
            ),
            None => {
                // Legacy pipeline: one submission, one frame, one append,
                // all under a global mutex (the pre-group-commit design,
                // kept as an ablation and bench baseline). A multi-record
                // submission still forms a single frame.
                let mut frame = vec![0u8; wal::FRAME_HEADER_BYTES];
                encode(inner, &mut frame);
                timed_commit(&mut frame)
                    .map(|()| CommitRole::Leader {
                        records: 1,
                        bytes: 0,
                    })
                    .map_err(Arc::new)
            }
        };
        if let Some(t_submit) = t_submit {
            let total = t_submit.elapsed().as_nanos() as u64;
            inner
                .telemetry
                .record_stage(StageClass::CommitWait, total.saturating_sub(commit_ns.get()));
        }
        // `CommitRole::Leader::records` counts *submissions*; a
        // multi-record submission tops the record counter up by the
        // records beyond the one its submission already contributed.
        match outcome {
            Ok(CommitRole::Leader { records: subs, .. }) => {
                FloDbStats::bump(&inner.stats.wal_groups);
                FloDbStats::add(&inner.stats.wal_group_records, subs + records - 1);
            }
            Ok(CommitRole::Follower) => {
                FloDbStats::bump(&inner.stats.wal_follower_writes);
                FloDbStats::add(&inner.stats.wal_group_records, records - 1);
            }
            Err(e) => return Err(WriteError::Wal(e)),
        }
        Ok(())
    }

    /// Commits one group frame through the segmented log: append, then
    /// (inside the same poison-checked critical section) roll to a fresh
    /// segment if the active one crossed its size threshold. Appends are
    /// whole groups, so the roll is exactly at a group boundary. Rotation
    /// seals a segment for retirement, so the persist thread is notified.
    ///
    /// At `TelemetryLevel::Full` the commit's total duration is written
    /// into `commit_ns`, so `wal_append` can subtract it from the
    /// submission total for commit-wait attribution without timing the
    /// same interval twice.
    fn commit_group_frame(
        &self,
        wal: &WalState,
        frame: &mut [u8],
        commit_ns: &std::cell::Cell<u64>,
    ) -> Result<(), StorageError> {
        let inner = &*self.inner;
        let t0 = inner.telemetry.full().then(Instant::now);
        let outcome = wal.append_checked(|log| log.append_group_frame(frame))?;
        if outcome.sync_ns > 0 && inner.telemetry.counters() {
            FloDbStats::add(&inner.stats.wal_sync_ns, outcome.sync_ns);
        }
        if let Some(t0) = t0 {
            // Split the commit into its stages: the append outcome carries
            // the fsync and rotation shares, the remainder is the write
            // itself (frame copy + file append + lock).
            let total = t0.elapsed().as_nanos() as u64;
            commit_ns.set(total);
            inner.telemetry.record_stage(
                StageClass::WalWrite,
                total.saturating_sub(outcome.sync_ns + outcome.rotation_ns),
            );
            if outcome.sync_ns > 0 {
                inner
                    .telemetry
                    .record_stage(StageClass::WalFsync, outcome.sync_ns);
            }
            if outcome.rotated || outcome.rotation_failed {
                inner
                    .telemetry
                    .record_stage(StageClass::WalRotation, outcome.rotation_ns);
            }
        }
        inner
            .stats
            .wal_active_bytes
            .store(outcome.active_bytes, Ordering::Relaxed);
        inner
            .stats
            .wal_generations
            .store(outcome.live_generations, Ordering::Relaxed);
        if outcome.rotated {
            FloDbStats::bump(&inner.stats.wal_rotations);
            inner.telemetry.event(
                TraceEventKind::WalRotation,
                outcome.sealed_bytes,
                outcome.rotation_ns,
            );
            // Checkpoint notification: a sealed generation now awaits
            // retirement; wake the persist thread so the on-disk log
            // stays bounded instead of waiting for the next size-triggered
            // flush.
            self.wake_persist();
        } else if outcome.rotation_failed {
            // A due roll was deferred because the next segment could not
            // be created; the log manager retries at the next group
            // boundary. Count the deferral so a misbehaving device is
            // visible even though the append itself succeeded.
            FloDbStats::bump(&inner.stats.io_retries);
        }
        Ok(())
    }

    /// Applies one acknowledged write to the memory component (Algorithm
    /// 2); infallible — by the time a write reaches here it is durable (or
    /// durability is off).
    fn apply_to_memory(&self, key: &[u8], value: Option<&[u8]>) {
        let inner = &*self.inner;
        // Fast path: complete in the Membuffer (Algorithm 2, lines 10-11).
        if inner.opts.membuffer_enabled {
            let fast = inner.view.read(|v| {
                v.mbf
                    .as_ref()
                    .map(|mbf| mbf.add(key, value))
                    .unwrap_or(AddResult::BucketFull)
            });
            if !matches!(fast, AddResult::BucketFull) {
                FloDbStats::bump(&inner.stats.membuffer_writes);
                return;
            }
        }

        // Slow path (Algorithm 2, lines 12-20).
        loop {
            // Honor pauseWriters: help drain or wait (lines 12-16). A
            // frozen Membuffer only becomes claimable once the freeze's
            // grace period has elapsed (`drain_ready`); helping before
            // that could claim a bucket a straggling writer is still
            // adding to, and the straggler's entry would be dropped with
            // the buffer. The short timed wait re-checks readiness so
            // writers still join the drain once it opens.
            while inner.pause_writers.is_paused() {
                let imm = inner.view.read(|v| v.imm_mbf.clone());
                match imm {
                    Some(imm) if imm.drain_ready() && !imm.tracker.is_complete() => {
                        FloDbStats::bump(&inner.stats.writer_drain_helps);
                        // The view-coupled variant: a persist switch
                        // racing this help must not strand the batch in a
                        // Memtable whose flush already collected entries.
                        drain::help_drain_imm_via(&imm, &inner.view, &inner.seq, inner.drain_style);
                    }
                    Some(_) => {
                        inner
                            .pause_writers
                            .wait_until_resumed_timeout(Duration::from_micros(50));
                    }
                    None => inner.pause_writers.wait_until_resumed(),
                }
            }
            // Wait for Memtable room (lines 17-18).
            let mut stall_start: Option<Instant> = None;
            loop {
                if inner.pause_writers.is_paused() {
                    break;
                }
                let bytes = inner.view.read(|v| v.mtb.approximate_bytes());
                if bytes <= inner.memtable_trigger {
                    break;
                }
                if inner.is_degraded() {
                    // Room is made by flushes — the very thing that just
                    // failed persistently. This write was already
                    // acknowledged in the WAL, so it must reach memory;
                    // only writes in flight before the health latch
                    // closed can be here, a bounded set, so memory stays
                    // bounded too.
                    break;
                }
                if stall_start.is_none() {
                    FloDbStats::bump(&inner.stats.write_stalls);
                    // The stall duration (`write_stall_ns`, the stage
                    // histogram and the begin/end event pair) is what
                    // attributes a write-latency tail to Memtable
                    // backpressure; the `Instant` is only sampled once a
                    // stall actually begins, so the unstalled hot path
                    // pays nothing for it.
                    stall_start = Some(Instant::now());
                    inner.telemetry.event(TraceEventKind::StallBegin, 0, 0);
                }
                self.wake_persist();
                let mut g = inner.room.lock();
                inner
                    .room_cv
                    .wait_for(&mut g, Duration::from_micros(500));
            }
            if let Some(t0) = stall_start {
                let ns = t0.elapsed().as_nanos() as u64;
                if inner.telemetry.counters() {
                    FloDbStats::add(&inner.stats.write_stall_ns, ns);
                }
                inner.telemetry.record_stage(StageClass::WriteStall, ns);
                inner.telemetry.event(TraceEventKind::StallEnd, ns, 0);
            }

            // Insert with a fresh sequence number (lines 19-20). The pause
            // re-check, the sequence acquisition and the insert share one
            // RCU read-side critical section: if this write obtains a
            // sequence number below a scan's stamp, the scan's grace period
            // (master_prepare / fallback) cannot return before the insert
            // has completed — otherwise a descheduled writer could slip a
            // pre-stamp entry into a range the scan already iterated past,
            // tearing the snapshot without triggering a restart.
            let inserted = inner.view.read(|v| {
                if inner.pause_writers.is_paused() {
                    return false;
                }
                let seq = inner.seq.next();
                v.mtb.insert(key, value, seq);
                true
            });
            if inserted {
                FloDbStats::bump(&inner.stats.memtable_writes);
                return;
            }
        }
    }

    /// The commit-log failure that poisoned this store, if any.
    ///
    /// While poisoned, reads and scans keep serving the already-applied
    /// state but every write is rejected with [`WriteError::Poisoned`].
    /// Reopening the store recovers the log's acknowledged prefix.
    pub fn wal_poison(&self) -> Option<Arc<StorageError>> {
        self.inner.wal.as_ref().and_then(WalState::poison_err)
    }

    fn get_impl(&self, key: &[u8]) -> Option<Vec<u8>> {
        let inner = &*self.inner;
        // Memory levels, freshest first, inside one critical section.
        let mem: Option<Option<Vec<u8>>> = inner.view.read(|v| {
            if let Some(mbf) = &v.mbf {
                if let Some(val) = mbf.get(key) {
                    return Some(val.map(Vec::from));
                }
            }
            if let Some(imm) = &v.imm_mbf {
                if let Some(val) = imm.buffer.get(key) {
                    return Some(val.map(Vec::from));
                }
            }
            if let Some(vv) = v.mtb.get(key) {
                return Some(vv.value.map(Vec::from));
            }
            if let Some(imm) = &v.imm_mtb {
                if let Some(vv) = imm.get(key) {
                    return Some(vv.value.map(Vec::from));
                }
            }
            None
        });
        match mem {
            Some(hit) => hit, // `None` inside means tombstone: deleted.
            None => inner
                .disk
                .get(key)
                // PANIC-OK: the read path has no error channel by design
                // (ROADMAP: fallible reads ride with the async-API item);
                // an I/O error on an in-memory env is a test-harness bug.
                .expect("disk read failed")
                .and_then(|r| r.value.map(Vec::from)),
        }
    }

    /// Runs the restart protocol to a validated snapshot of the range.
    ///
    /// The merged map is only handed out once an attempt validates (no
    /// entry fresher than the scan stamp was seen), so callers can stream
    /// it to a visitor without ever re-emitting across restarts.
    fn scan_impl(&self, low: &[u8], high: &[u8]) -> MergedRange {
        let inner = &*self.inner;
        let mut restarts = 0u32;
        loop {
            let role = inner.coord.enter(
                inner.opts.piggyback_chain_limit,
                inner.opts.master_reuse_limit,
                inner.opts.linearizable_scans,
            );
            let scan_seq = match role {
                ScanRole::Master => {
                    FloDbStats::bump(&inner.stats.master_scans);
                    let seq = self.master_prepare();
                    inner.coord.publish(seq);
                    seq
                }
                ScanRole::MasterReuse(seq) => {
                    FloDbStats::bump(&inner.stats.master_reuse_scans);
                    seq
                }
                ScanRole::Piggyback(seq) => {
                    FloDbStats::bump(&inner.stats.piggyback_scans);
                    seq
                }
            };
            let result = self.collect_range(low, high, scan_seq);
            inner.coord.exit(role);
            match result {
                Ok(entries) => return entries,
                Err(Restart) => {
                    FloDbStats::bump(&inner.stats.scan_restarts);
                    if matches!(role, ScanRole::MasterReuse(_)) {
                        // The reused stamp went stale; force the retry to
                        // establish a fresh one.
                        inner.coord.invalidate_reuse();
                    }
                    restarts += 1;
                    if restarts >= inner.opts.scan_restart_threshold {
                        return self.fallback_scan(low, high);
                    }
                }
            }
        }
    }

    /// Algorithm 3, lines 4-14: freeze, swap, drain, stamp, unfreeze.
    fn master_prepare(&self) -> u64 {
        let inner = &*self.inner;
        inner.pause_draining.pause();
        inner.pause_writers.pause();
        let seq = {
            let _freezing = inner.freeze_lock.lock();
            freeze_and_drain_membuffer(inner);
            // Line 12: the scan's linearization stamp.
            inner.seq.next()
        };
        // Lines 13-14: release writers and drainers.
        inner.pause_writers.resume();
        inner.pause_draining.resume();
        seq
    }

    /// Algorithm 3, lines 15-30: iterate MTB, IMM_MTB and disk, restarting
    /// on any entry fresher than the scan stamp.
    fn collect_range(
        &self,
        low: &[u8],
        high: &[u8],
        scan_seq: u64,
    ) -> Result<MergedRange, Restart> {
        let inner = &*self.inner;
        let view = inner.view.snapshot();
        // key -> (seq, value); freshest wins among seqs <= scan_seq.
        let mut merged: MergedRange = std::collections::BTreeMap::new();

        let mut absorb = |key: &[u8], seq: u64, value: Option<Box<[u8]>>| {
            match merged.entry(Box::from(key)) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((seq, value));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if seq > e.get().0 {
                        e.insert((seq, value));
                    }
                }
            }
        };

        let memtables = [Some(&view.mtb), view.imm_mtb.as_ref()];
        for list in memtables.into_iter().flatten() {
            let mut it = list.iter();
            it.seek(low);
            while it.valid() && it.key() <= high {
                let vv = it.value();
                if vv.seq > scan_seq {
                    return Err(Restart);
                }
                absorb(it.key(), vv.seq, vv.value);
                it.next();
            }
        }

        // PANIC-OK: same contract as `get` — the scan path is infallible
        // until fallible reads land (see ROADMAP), so a disk error aborts.
        for record in inner.disk.scan(low, high).expect("disk scan failed") {
            if record.seq > scan_seq {
                return Err(Restart);
            }
            absorb(&record.key, record.seq, record.value);
        }

        Ok(merged)
    }

    /// The writer-blocking fallback guaranteeing scan liveness (§4.4).
    ///
    /// Unlike a master scan, the pauses are held through the collection:
    /// with Memtable writers and drains frozen, nothing can stamp a newer
    /// sequence number mid-iteration, so the scan cannot be invalidated.
    /// The Membuffer must still be frozen and drained first — fast-path
    /// writes are never blocked, and a fallback reading only the Memtable
    /// and disk would miss every update still resident in the Membuffer.
    fn fallback_scan(&self, low: &[u8], high: &[u8]) -> MergedRange {
        let inner = &*self.inner;
        FloDbStats::bump(&inner.stats.fallback_scans);
        inner.pause_draining.pause();
        inner.pause_writers.pause();
        // Hold the freeze lock through the collection: no other scan can
        // freeze-and-stamp mid-iteration, so (with writers and drains
        // paused) no post-stamp entry can appear and the loop terminates
        // once the bounded population of racing writers has quiesced.
        let _freezing = inner.freeze_lock.lock();
        let result = loop {
            freeze_and_drain_membuffer(inner);
            let seq = inner.seq.next();
            match self.collect_range(low, high, seq) {
                Ok(entries) => break entries,
                // A writer slipped in between our pause and its own pause
                // check; the population of such racers is bounded by the
                // thread count, so retrying terminates.
                Err(Restart) => continue,
            }
        };
        drop(_freezing);
        inner.pause_writers.resume();
        inner.pause_draining.resume();
        result
    }
}

/// Background draining (Figure 6): continuously move Membuffer entries
/// into the Memtable, keeping Membuffer occupancy low.
///
/// Each worker owns a disjoint bucket range (see [`drain::drain_sweep`]);
/// the pause check runs *inside* the read-side critical section so a
/// master scan's freeze either waits for this batch or is observed by it
/// — a batch that slipped past both could stamp post-freeze writes with
/// pre-stamp sequence numbers.
fn drain_loop(inner: &Arc<Inner>, worker: usize) {
    let workers = inner.opts.drain_threads.max(1);
    let mut cursor = 0usize;
    let mut idle_beats = 0usize;
    let batch = inner.opts.drain_batch_entries.max(1);
    while !inner.stop.load(Ordering::Acquire) {
        if inner.pause_draining.is_paused() {
            inner
                .pause_draining
                .wait_until_resumed_timeout(Duration::from_millis(10));
            continue;
        }
        // The whole batch runs inside one read-side critical section so a
        // concurrent component switch waits for it (see ViewCell docs).
        let moved = inner.view.read(|v| {
            if inner.pause_draining.is_paused() {
                return 0;
            }
            let Some(mbf) = &v.mbf else { return 0 };
            let total = mbf.total_buckets();
            let start = total * worker / workers;
            let len = total * (worker + 1) / workers - start;
            let (moved, next) = drain::drain_sweep(
                mbf,
                &v.mtb,
                &inner.seq,
                start,
                len,
                cursor,
                batch,
                inner.drain_style,
            );
            cursor = next;
            moved
        });
        if moved == 0 {
            // Nothing to drain: use the idle beat to walk the reclamation
            // epoch forward (hot-path pins only attempt this sporadically).
            // `flush` takes the global participant/garbage mutexes, so an
            // idle store must not hammer them every 100us from every
            // worker: throttle to every 8th beat — the bound that matters
            // when a live guard elsewhere holds the counter gap open
            // indefinitely — and with the shim counters also skip entirely
            // while no garbage is outstanding (two relaxed loads).
            idle_beats = idle_beats.wrapping_add(1);
            let flush = idle_beats.is_multiple_of(8) && {
                #[cfg(feature = "epoch-shim-stats")]
                {
                    crossbeam_epoch::shim_stats::destructions_executed()
                        != crossbeam_epoch::shim_stats::destructions_deferred()
                }
                #[cfg(not(feature = "epoch-shim-stats"))]
                {
                    true
                }
            };
            if flush {
                crossbeam_epoch::pin().flush();
            }
            std::thread::sleep(Duration::from_micros(100));
        } else {
            FloDbStats::add(&inner.stats.drained_entries, moved as u64);
            FloDbStats::bump(&inner.stats.drain_batches);
        }
    }
}

/// Lines 6-11 of Algorithm 3: install a fresh Membuffer, freeze the
/// old one, and fully drain it into the Memtable (cooperating with
/// helping writers). Callers must hold `pause_draining` and
/// `pause_writers` (via the freeze lock protocol); both master scans and
/// the WAL-retirement checkpoint come through here.
fn freeze_and_drain_membuffer(inner: &Inner) {
    let t0 = inner.telemetry.counters().then(Instant::now);
    inner.telemetry.event(TraceEventKind::FreezeBegin, 0, 0);
    if inner.opts.membuffer_enabled {
        // Install a fresh Membuffer; freeze the old one (lines 6-7).
        // `update` waits a grace period, subsuming MemBufferRCUWait and
        // MemTableRCUWait (lines 8-9).
        inner.view.update(|old| MemView {
            mbf: Some(inner.new_membuffer()),
            imm_mbf: old
                .mbf
                .as_ref()
                .map(|m| Arc::new(ImmMembuffer::new(Arc::clone(m)))),
            ..old.clone()
        });
        // Drain the frozen buffer, cooperating with helping writers
        // (lines 10-11). The drain opens only now — after `update`'s
        // grace period — because the frozen view was visible to paused
        // writers *during* the grace, while straggling writers could
        // still be adding to the frozen buffer; a bucket claimed that
        // early would miss a straggler's entry and drop it with the
        // buffer (an acknowledged write lost — the root cause of the
        // long-standing message_queue backlog flake). The view-coupled
        // drain variant resolves the Memtable per chunk, inside a
        // read-side critical section: a concurrent persist switch would
        // otherwise race the drain into a Memtable whose flush already
        // collected its entries, dropping them when the immutable table
        // is released.
        let imm = inner.view.read(|v| v.imm_mbf.clone());
        if let Some(imm) = &imm {
            imm.open_for_drain();
            let moved = drain::help_drain_imm_via(imm, &inner.view, &inner.seq, inner.drain_style);
            FloDbStats::add(&inner.stats.drained_entries, moved as u64);
            inner.telemetry.event(TraceEventKind::Drain, moved as u64, 0);
            let backoff = Backoff::new();
            while !imm.tracker.is_complete() {
                backoff.snooze();
            }
            debug_assert_eq!(
                imm.buffer.len(),
                0,
                "a fully drained frozen Membuffer must be empty — anything \
                 left here is an acknowledged write about to be dropped"
            );
        }
        inner.view.update(|old| MemView {
            imm_mbf: None,
            ..old.clone()
        });
    } else {
        // No Membuffer: a pure grace period quiesces in-flight writes.
        inner.view.update(MemView::clone);
    }
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        inner.telemetry.record_stage(StageClass::FreezeDrain, ns);
        inner.telemetry.event(TraceEventKind::FreezeEnd, ns, 0);
    }
}

/// Background persisting: switch a full Memtable out (RCU), flush it to
/// the disk component, then release it — and, when sealed WAL segments
/// await, run a retirement checkpoint so the on-disk log stays bounded.
fn persist_loop(inner: &Arc<Inner>) {
    while !inner.stop.load(Ordering::Acquire) {
        let persisted = persist_once(inner);
        let retired = maybe_retire_wal(inner);
        let compacted = maybe_compact(inner);
        if !persisted && !retired && !compacted {
            let mut g = inner.persist_park.lock();
            inner
                .persist_cv
                .wait_for(&mut g, Duration::from_micros(500));
        }
    }
    // Final drain-through so `Drop` leaves no frozen component behind.
    persist_once(inner);
}

/// Services compaction debt that no flush is around to piggyback on:
/// recovery flushes at open (and flushes whose follow-up compaction was
/// cut short) can leave `needs_compaction()` true with an empty memory
/// component, and nothing else would ever clear it — `quiesce` would
/// wait on that debt forever. Runs under the same policy switch as the
/// post-flush compaction (`compact_after_flush` assigns compaction to
/// the persist thread) and degrades rather than panics on persistent
/// failure, like every other persist-thread I/O.
fn maybe_compact(inner: &Arc<Inner>) -> bool {
    if !inner.opts.persist_enabled
        || !inner.opts.compact_after_flush
        || inner.is_degraded()
        || !inner.disk.needs_compaction()
    {
        return false;
    }
    let t0 = inner.telemetry.counters().then(Instant::now);
    if let Err(e) = io_with_retries(inner, || inner.disk.compact_all()) {
        inner.degrade("compaction", &e);
        return false;
    }
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        inner.telemetry.record_stage(StageClass::Compaction, ns);
        inner.telemetry.event(TraceEventKind::Compaction, ns, 0);
    }
    true
}

fn persist_once(inner: &Arc<Inner>) -> bool {
    let view = inner.view.snapshot();
    let force = inner.force_flush.load(Ordering::Acquire);
    let should_switch = view.imm_mtb.is_none()
        && (view.mtb.approximate_bytes() >= inner.memtable_trigger
            || (force && !view.mtb.is_empty()));
    if should_switch {
        // Make the Memtable immutable and install a fresh one; the grace
        // period inside `update` is the paper's "RCU to make sure that all
        // pending updates to the immutable Memtable have completed".
        inner.view.update(|old| MemView {
            mtb: Arc::new(SkipList::new()),
            imm_mtb: Some(Arc::clone(&old.mtb)),
            ..old.clone()
        });
        let _g = inner.room.lock();
        inner.room_cv.notify_all();
    }

    let view = inner.view.snapshot();
    let Some(imm) = view.imm_mtb.clone() else {
        return should_switch;
    };
    flush_imm(inner, &imm) || should_switch
}

/// Flushes one immutable Memtable to the disk component and releases it.
///
/// Returns whether progress was made. Transient disk errors are retried
/// with backoff ([`io_with_retries`]); a persistent failure latches the
/// store degraded and keeps the table **resident** — reads serve it
/// live, nothing acknowledged is lost, and since the WAL is never
/// retired on a degraded store, a reopen replays it all. Never panics:
/// writers were acked when their WAL frame went durable, and the log
/// stays intact for recovery.
fn flush_imm(inner: &Arc<Inner>, imm: &Arc<SkipList>) -> bool {
    if inner.opts.persist_enabled && !imm.is_empty() {
        if inner.is_degraded() {
            // Releasing the table would drop acknowledged reads (its
            // records never reached disk); leave it for reopen to heal.
            return false;
        }
        let records: Vec<Record> = imm
            .collect_entries()
            .into_iter()
            .map(|(key, vv)| Record {
                key,
                seq: vv.seq,
                value: vv.value,
            })
            .collect();
        let record_count = records.len() as u64;
        let t0 = inner.telemetry.counters().then(Instant::now);
        if let Err(e) = io_with_retries(inner, || inner.disk.flush_records(records.clone())) {
            inner.degrade("memtable flush", &e);
            return false;
        }
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            inner.telemetry.record_stage(StageClass::MemtableFlush, ns);
            inner
                .telemetry
                .event(TraceEventKind::Flush, record_count, ns);
        }
        if inner.opts.compact_after_flush {
            let t0 = inner.telemetry.counters().then(Instant::now);
            if let Err(e) = io_with_retries(inner, || inner.disk.compact_all()) {
                // The flush itself landed, so the table can still be
                // released below — only the level shape degrades.
                inner.degrade("compaction", &e);
            } else if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                inner.telemetry.record_stage(StageClass::Compaction, ns);
                inner.telemetry.event(TraceEventKind::Compaction, ns, 0);
            }
        }
    }
    // Release the immutable Memtable; scans holding a snapshot keep it
    // alive through their Arc (the paper's second RCU use, realized by
    // reference counting on top of the snapshot grace period).
    inner.view.update(|old| MemView {
        imm_mtb: None,
        ..old.clone()
    });
    FloDbStats::bump(&inner.stats.persists);
    let _g = inner.room.lock();
    inner.room_cv.notify_all();
    true
}

/// Pushes the current Memtable contents down to the disk component,
/// regardless of the size trigger: flush any pending immutable table,
/// then switch the live one out **once** and flush it. One switch is
/// exactly what the retirement checkpoint needs — everything it must
/// cover is already in the Memtable when this runs, and writes landing
/// after the switch belong to the next checkpoint. Looping until the
/// table observes empty would instead chase resumed writers forever
/// under sustained traffic, churning out tiny SSTs. Only the persist
/// thread calls this, so no other thread can be mid-switch.
fn flush_memtable_now(inner: &Arc<Inner>) {
    let view = inner.view.snapshot();
    if let Some(imm) = view.imm_mtb.clone() {
        flush_imm(inner, &imm);
    }
    let view = inner.view.snapshot();
    if view.mtb.is_empty() {
        return;
    }
    inner.view.update(|old| MemView {
        mtb: Arc::new(SkipList::new()),
        imm_mtb: Some(Arc::clone(&old.mtb)),
        ..old.clone()
    });
    {
        let _g = inner.room.lock();
        inner.room_cv.notify_all();
    }
    let view = inner.view.snapshot();
    if let Some(imm) = view.imm_mtb.clone() {
        flush_imm(inner, &imm);
    }
}

/// Retires sealed WAL segments once a persisted checkpoint covers them.
/// Returns whether anything was retired. Runs on the persist thread.
///
/// The protocol, in order — each step is what makes the next one sound:
///
/// 1. **Capture** the sealed backlog (generations `<= horizon`). Segments
///    sealed *during* the checkpoint keep their files and wait for the
///    next pass.
/// 2. **Grace period**: flip the [`PhasedInflight`] tracker and wait for
///    every write in its logged→applied window to finish. A record logged
///    into a sealed segment was logged before its seal, so its writer is
///    in the old phase; after the grace it has reached the memory
///    component. The wait loop *services* `persist_once`, because a
///    room-stalled writer needs this very thread to flush before it can
///    finish.
/// 3. **Checkpoint**: freeze-and-drain the Membuffer (same machinery as a
///    master scan), then flush the Memtable unconditionally. Every record
///    from step 2 is in the Membuffer or Memtable (or already flushed /
///    superseded by a later logged write), so afterwards the disk
///    component covers everything the captured segments hold.
/// 4. **Record** the new oldest-live generation durably in the manifest,
///    **then** delete the segment files and sync the directory. A crash
///    between the two leaves stale files below the mark — ignored by
///    recovery, pruned at the next open. The reverse order could delete
///    segments a pre-mark recovery still needs.
///
/// Requires the manifest (without it the flushed layout would not survive
/// a restart, so segments must never be deleted) and an enabled persist
/// path (with persisting off, flushes drop data and the log is the only
/// durable state).
fn maybe_retire_wal(inner: &Arc<Inner>) -> bool {
    let Some(wal) = &inner.wal else { return false };
    if !inner.opts.disk.manifest || !inner.opts.persist_enabled {
        return false;
    }
    if inner.is_degraded() {
        // The checkpoint's flush cannot succeed, so no sealed segment
        // can ever be covered — and the segments must stay: a degraded
        // store's WAL is the only durable copy of everything that never
        // reached disk, and reopen heals from it.
        return false;
    }
    let horizon = {
        let log = wal.log.lock();
        match log.sealed().last() {
            Some(seg) => seg.generation,
            None => return false,
        }
    };
    // Times the whole retirement pass (grace + checkpoint + mark +
    // deletions); recorded only when the pass actually retires.
    let t0 = inner.telemetry.counters().then(Instant::now);

    // Step 2: grace over logged→applied windows, servicing flushes so
    // room-stalled writers can make progress (the wait is bounded: each
    // window is one write operation, and nothing new extends it).
    wal.inflight.quiesce_with(|| {
        if !persist_once(inner) {
            std::thread::sleep(Duration::from_micros(100));
        }
    });

    // Step 3: checkpoint. Freeze protocol identical to a master scan's
    // (the pause flags are counting, so overlapping a concurrent scan's
    // freeze is fine; the freeze lock serializes the swaps).
    inner.pause_draining.pause();
    inner.pause_writers.pause();
    {
        let _freezing = inner.freeze_lock.lock();
        freeze_and_drain_membuffer(inner);
    }
    inner.pause_writers.resume();
    inner.pause_draining.resume();
    flush_memtable_now(inner);
    if inner.is_degraded() {
        // The checkpoint's flush failed: the sealed segments are NOT
        // covered by disk state, so neither the oldest-live mark nor the
        // deletions may proceed — the segments are the durable copy.
        // They stay tracked; the degraded check at the top keeps this
        // pass from being re-attempted.
        return false;
    }

    // Step 4: durable mark, then deletion. Errors here must not panic
    // the persist thread (writers would then stall on Memtable room
    // forever) and must not leave the sealed backlog re-attempted every
    // pass (quiesce would never settle): on failure the segments are
    // untracked anyway — their files stay on disk relative to whatever
    // mark was recorded, recovery handles both cases (live files replay,
    // stale files are ignored), and the next open prunes them; only
    // disk-footprint boundedness degrades, which `wal_retire_errors`
    // (and `io_degraded`) make observable. Transient failures never get
    // that far — both the manifest append and the deletions are retried
    // with backoff first (appending a duplicate oldest-live record and
    // re-deleting are both idempotent).
    if io_with_retries(inner, || {
        inner.disk.record_wal_oldest_live(new_oldest(wal, horizon))
    })
    .is_err()
    {
        FloDbStats::bump(&inner.stats.wal_retire_errors);
        FloDbStats::bump(&inner.stats.io_degraded);
        wal.log.lock().take_sealed_up_to(horizon);
        return false;
    }
    // Untrack under the log lock (cheap), but run the deletions and the
    // directory fsync outside it: every committing writer serializes on
    // that lock, and sealed files need no coordination with appends.
    let taken = {
        let mut log = wal.log.lock();
        let taken = log.take_sealed_up_to(horizon);
        inner
            .stats
            .wal_generations
            .store(log.live_generations(), Ordering::Relaxed);
        taken
    };
    match io_with_retries(inner, || {
        log_manager::delete_segments(inner.opts.env.as_ref(), &taken)
    }) {
        Ok(retired) => {
            FloDbStats::add(&inner.stats.wal_retired_bytes, retired.bytes);
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                inner.telemetry.record_stage(StageClass::WalRetirement, ns);
                inner.telemetry.event(
                    TraceEventKind::WalRetirement,
                    retired.segments,
                    retired.bytes,
                );
            }
            retired.segments > 0
        }
        Err(_) => {
            FloDbStats::bump(&inner.stats.wal_retire_errors);
            FloDbStats::bump(&inner.stats.io_degraded);
            false
        }
    }
}

/// The oldest generation that must stay live once everything up to
/// `horizon` retires: the oldest still-sealed segment above it, or the
/// active segment.
fn new_oldest(wal: &WalState, horizon: u64) -> u64 {
    let log = wal.log.lock();
    log.sealed()
        .iter()
        .map(|seg| seg.generation)
        .find(|&generation| generation > horizon)
        .unwrap_or_else(|| log.active_generation())
}

/// The write methods return `Err(`[`WriteError`]`)` when the write-ahead
/// log could not acknowledge the write; nothing is applied in that case
/// and the store is poisoned (see [`WriteError`] for the contract). A lost
/// append is therefore never silently acknowledged, and never a panic.
impl KvStore for FloDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        self.put_impl(key, Some(value))?;
        FloDbStats::bump(&self.inner.stats.puts);
        if let Some(t0) = t0 {
            self.inner
                .telemetry
                .record_op(OpClass::Put, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        self.put_impl(key, None)?;
        FloDbStats::bump(&self.inner.stats.deletes);
        if let Some(t0) = t0 {
            // Deletes are tombstone puts; they share the put class.
            self.inner
                .telemetry
                .record_op(OpClass::Put, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        self.write_impl(batch)?;
        FloDbStats::add(&self.inner.stats.puts, batch.puts());
        FloDbStats::add(&self.inner.stats.deletes, batch.deletes());
        if let Some(t0) = t0 {
            // One sample per batch: the caller-visible commit latency.
            self.inner
                .telemetry
                .record_op(OpClass::Put, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        let r = self.get_impl(key);
        FloDbStats::bump(&self.inner.stats.gets);
        if let Some(t0) = t0 {
            self.inner
                .telemetry
                .record_op(OpClass::Get, t0.elapsed().as_nanos() as u64);
        }
        r
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        let t0 = self.inner.telemetry.full().then(Instant::now);
        let merged = self.scan_impl(low, high);
        if let Some(t0) = t0 {
            // The scan sample covers the restart protocol and snapshot
            // construction, not the caller's visitor.
            self.inner
                .telemetry
                .record_op(OpClass::Scan, t0.elapsed().as_nanos() as u64);
        }
        FloDbStats::bump(&self.inner.stats.scans);
        let mut emitted = 0u64;
        for (key, (_, value)) in &merged {
            let Some(value) = value else { continue };
            emitted += 1;
            if visitor(key, value).is_break() {
                break;
            }
        }
        FloDbStats::add(&self.inner.stats.scanned_keys, emitted);
    }

    fn name(&self) -> &'static str {
        "FloDB"
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats.snapshot()
    }

    fn quiesce(&self) {
        let backoff = Backoff::new();
        loop {
            self.wake_persist();
            let (mbf_len, imm_mbf, mtb_bytes, imm_mtb) = self.inner.view.read(|v| {
                (
                    v.mbf.as_ref().map_or(0, |m| m.len()),
                    v.imm_mbf.is_some(),
                    v.mtb.approximate_bytes(),
                    v.imm_mtb.is_some(),
                )
            });
            // An over-trigger Memtable means a persist switch is pending
            // (or already in flight between its trigger check and the
            // swap): quiesce must wait it out, or a caller's first
            // post-quiesce scan races the switch/flush/release sequence —
            // the pre-existing message_queue flake. Below the trigger,
            // with no force-flush set, the persist thread provably leaves
            // the view alone until the next write.
            let switch_pending = mtb_bytes >= self.inner.memtable_trigger;
            // Sealed WAL segments awaiting retirement: the retirement
            // checkpoint flushes and rewrites the manifest; let it finish
            // so "quiesced" also means the on-disk log is back to one
            // active segment (the bounded-log invariant tests rely on).
            let retire_pending = self.inner.opts.disk.manifest
                && self.inner.opts.persist_enabled
                && self
                    .inner
                    .wal
                    .as_ref()
                    .is_some_and(|w| !w.log.lock().sealed().is_empty());
            // A degraded store can still settle its memory-only work
            // (drains run without disk I/O), but the resident immutable
            // Memtable, pending switch, retirement backlog and
            // compaction debt are permanently un-servable — treating
            // them as pending would wedge quiesce forever. "Quiesced"
            // then means: no *achievable* background work remains.
            let degraded = self.inner.is_degraded();
            // Compaction debt is only worth waiting on when the persist
            // thread is the one servicing it (`compact_after_flush`);
            // otherwise nobody ever will, and waiting would wedge.
            let compaction_pending = self.inner.opts.compact_after_flush
                && self.inner.opts.persist_enabled
                && self.inner.disk.needs_compaction();
            if mbf_len == 0
                && !imm_mbf
                && (degraded
                    || (!imm_mtb
                        && !switch_pending
                        && !retire_pending
                        && !compaction_pending))
            {
                break;
            }
            backoff.snooze();
        }
        // Background work has settled; also settle epoch reclamation. Each
        // round can advance the epoch one step past this thread's own pin,
        // so repeated rounds walk sealed garbage through its two-epoch
        // grace period. The background drain threads keep pinning on their
        // idle beat, which can make any individual advancement attempt
        // fail, so with the shim's counters available we retry until
        // executed catches up to deferred — bounded, because a thread
        // holding a guard open (legitimately) stalls reclamation forever.
        #[cfg(feature = "epoch-shim-stats")]
        {
            // Garbage can also sit in a drain thread's *unsealed* local
            // bag, which only that thread's own idle-beat flush (100us
            // cadence, see drain_loop) can seal — so once backoff stops
            // spinning, block in real sleeps long enough for every drain
            // thread to take an idle beat; pure yields could burn the whole
            // budget before they are scheduled. The budget is a wall-clock
            // deadline (not an iteration count) so a briefly-descheduled
            // drain thread cannot exhaust it, yet a guard held open across
            // quiesce (which legitimately stalls reclamation forever)
            // still cannot hang us.
            // The counters are process-global, so another epoch user in
            // this process (a second store, a raw skiplist) can hold the
            // gap open forever; once pumping stops shrinking it, further
            // rounds are wasted — bail after a stretch of no progress
            // (~6ms of sleeps, dozens of drain idle beats) rather than
            // burning the whole deadline.
            let deadline = std::time::Instant::now() + Duration::from_secs(1);
            let backoff = Backoff::new();
            let mut best_gap = u64::MAX;
            let mut stalled_rounds = 0u32;
            loop {
                let executed = crossbeam_epoch::shim_stats::destructions_executed();
                let deferred = crossbeam_epoch::shim_stats::destructions_deferred();
                if executed == deferred {
                    break;
                }
                let gap = deferred - executed;
                if gap < best_gap {
                    best_gap = gap;
                    stalled_rounds = 0;
                } else {
                    stalled_rounds += 1;
                    if stalled_rounds >= 64 {
                        break;
                    }
                }
                if std::time::Instant::now() >= deadline {
                    break;
                }
                crossbeam_epoch::pin().flush();
                if backoff.is_completed() {
                    std::thread::sleep(Duration::from_micros(100));
                } else {
                    backoff.snooze();
                }
            }
        }
        #[cfg(not(feature = "epoch-shim-stats"))]
        for _ in 0..4 {
            crossbeam_epoch::pin().flush();
        }
    }
}

impl Drop for FloDb {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.wake_persist();
        for handle in self.threads.lock().drain(..) {
            // LOCK-OK: shutdown-only join; the joined workers never take
            // FloDb.threads, and drop is the lock's only contender.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for FloDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloDb")
            .field("memory_usage", &self.memory_usage())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FloDb {
        FloDb::open(FloDbOptions::small_for_tests()).unwrap()
    }

    fn k(n: u64) -> [u8; 8] {
        n.to_be_bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let db = db();
        db.put(b"hello", b"world").unwrap();
        assert_eq!(db.get(b"hello"), Some(b"world".to_vec()));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let db = db();
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn delete_hides_key() {
        let db = db();
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k"), None);
        // Deleting a missing key is fine.
        db.delete(b"never-existed").unwrap();
        assert_eq!(db.get(b"never-existed"), None);
    }

    #[test]
    fn get_falls_through_to_disk() {
        let db = db();
        for i in 0..500u64 {
            db.put(&k(i), &i.to_le_bytes()).unwrap();
        }
        db.flush_all();
        // Everything is on disk now; memory is empty.
        for i in (0..500u64).step_by(37) {
            assert_eq!(db.get(&k(i)), Some(i.to_le_bytes().to_vec()), "key {i}");
        }
        assert!(db.disk_stats().flushes > 0);
    }

    #[test]
    fn delete_shadows_disk_resident_value() {
        let db = db();
        db.put(b"k", b"old").unwrap();
        db.flush_all();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k"), None);
        db.flush_all();
        assert_eq!(db.get(b"k"), None);
    }

    #[test]
    fn scan_returns_sorted_range() {
        let db = db();
        for i in [5u64, 1, 9, 3, 7] {
            db.put(&k(i), &i.to_le_bytes()).unwrap();
        }
        let out = db.scan(&k(2), &k(8));
        let keys: Vec<u64> = out
            .iter()
            .map(|(key, _)| u64::from_be_bytes(key.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn scan_sees_membuffer_writes_via_drain() {
        // Entries that only ever lived in the Membuffer must still appear:
        // the master scan drains them first.
        let db = db();
        db.put(&k(1), b"one").unwrap();
        db.put(&k(2), b"two").unwrap();
        let out = db.scan(&k(0), &k(10));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, b"one".to_vec());
    }

    #[test]
    fn scan_merges_memory_and_disk() {
        let db = db();
        for i in 0..20u64 {
            db.put(&k(i), b"disk").unwrap();
        }
        db.flush_all();
        db.put(&k(5), b"fresh").unwrap();
        db.delete(&k(6)).unwrap();
        let out = db.scan(&k(0), &k(19));
        assert_eq!(out.len(), 19, "deleted key must vanish");
        let five = out
            .iter()
            .find(|(key, _)| key.as_slice() == k(5))
            .unwrap();
        assert_eq!(five.1, b"fresh".to_vec());
    }

    #[test]
    fn empty_scan() {
        let db = db();
        assert!(db.scan(&k(0), &k(100)).is_empty());
    }

    #[test]
    fn stats_track_fast_path() {
        let db = db();
        for i in 0..50u64 {
            db.put(&k(i), b"v").unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.puts, 50);
        assert!(
            stats.fast_level_writes > 0,
            "most writes should hit the Membuffer"
        );
    }

    #[test]
    fn quiesce_drains_membuffer() {
        let db = db();
        for i in 0..100u64 {
            db.put(&k(i), b"v").unwrap();
        }
        db.quiesce();
        let mbf_len = db.inner.view.read(|v| v.mbf.as_ref().unwrap().len());
        assert_eq!(mbf_len, 0, "background drain must empty the Membuffer");
    }

    #[test]
    fn no_membuffer_mode_works() {
        let mut opts = FloDbOptions::small_for_tests();
        opts.membuffer_enabled = false;
        opts.drain_threads = 0;
        let db = FloDb::open(opts).unwrap();
        db.put(b"a", b"1").unwrap();
        assert_eq!(db.get(b"a"), Some(b"1".to_vec()));
        let out = db.scan(b"a", b"z");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn simple_insert_drain_mode_works() {
        let mut opts = FloDbOptions::small_for_tests();
        opts.use_multi_insert = false;
        let db = FloDb::open(opts).unwrap();
        for i in 0..100u64 {
            db.put(&k(i), b"v").unwrap();
        }
        db.quiesce();
        assert_eq!(db.get(&k(42)), Some(b"v".to_vec()));
    }

    #[test]
    fn persist_disabled_drops_memtables() {
        let mut opts = FloDbOptions::small_for_tests();
        opts.persist_enabled = false;
        let db = FloDb::open(opts).unwrap();
        for i in 0..5000u64 {
            db.put(&k(i), &[0u8; 64]).unwrap();
        }
        db.quiesce();
        assert_eq!(db.disk_stats().flushes, 0, "nothing may reach disk");
    }

    #[test]
    fn write_batch_applies_all_ops_in_order() {
        let db = db();
        db.put(b"gone", b"x").unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"gone");
        batch.put(b"a", b"overwritten");
        db.write(&batch).unwrap();
        assert_eq!(db.get(b"a"), Some(b"overwritten".to_vec()));
        assert_eq!(db.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(db.get(b"gone"), None);
        let stats = db.stats();
        assert_eq!(stats.puts, 1 + 3);
        assert_eq!(stats.deletes, 1);
        // An empty batch is a no-op.
        db.write(&WriteBatch::new()).unwrap();
    }

    #[test]
    fn write_batch_survives_crash_as_a_unit() {
        let env: Arc<dyn flodb_storage::Env> = Arc::new(flodb_storage::MemEnv::new(None));
        let mut opts = FloDbOptions::small_for_tests();
        opts.env = Arc::clone(&env);
        opts.wal = WalMode::Enabled { sync: false };
        {
            let db = FloDb::open(opts.clone()).unwrap();
            let mut batch = WriteBatch::new();
            for i in 0..10u64 {
                batch.put(&k(i), &i.to_le_bytes());
            }
            batch.delete(&k(3));
            db.write(&batch).unwrap();
            // Simulated crash: drop without flushing.
        }
        let db = FloDb::open(opts).unwrap();
        for i in 0..10u64 {
            let expect = (i != 3).then(|| i.to_le_bytes().to_vec());
            assert_eq!(db.get(&k(i)), expect, "key {i}");
        }
    }

    #[test]
    fn scan_with_early_break_stops_emission() {
        let db = db();
        for i in 0..20u64 {
            db.put(&k(i), b"v").unwrap();
        }
        let mut seen = Vec::new();
        db.scan_with(&k(0), &k(19), &mut |key, _| {
            seen.push(key.to_vec());
            if seen.len() == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], k(4).to_vec());
        // The counter reflects emitted keys, not the full range.
        assert_eq!(db.stats().scanned_keys, 5);
    }

    #[test]
    fn wal_recovery_restores_memory_component() {
        let env: Arc<dyn flodb_storage::Env> = Arc::new(flodb_storage::MemEnv::new(None));
        let mut opts = FloDbOptions::small_for_tests();
        opts.env = Arc::clone(&env);
        opts.wal = WalMode::Enabled { sync: false };
        {
            let db = FloDb::open(opts.clone()).unwrap();
            db.put(b"alpha", b"1").unwrap();
            db.put(b"beta", b"2").unwrap();
            db.delete(b"alpha").unwrap();
            // Simulated crash: drop without flushing.
        }
        let db = FloDb::open(opts).unwrap();
        assert_eq!(db.get(b"alpha"), None, "tombstone must replay");
        assert_eq!(db.get(b"beta"), Some(b"2".to_vec()));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = Arc::new(db());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = t * 1000 + i;
                    db.put(&k(key), &key.to_le_bytes()).unwrap();
                    if i % 7 == 0 {
                        let _ = db.get(&k(t * 1000 + i / 2));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..500u64).step_by(41) {
                let key = t * 1000 + i;
                assert_eq!(db.get(&k(key)), Some(key.to_le_bytes().to_vec()));
            }
        }
    }

    #[test]
    fn concurrent_scans_and_writes_are_consistent() {
        let db = Arc::new(db());
        for i in 0..100u64 {
            db.put(&k(i), &0u64.to_le_bytes()).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..100u64 {
                        db.put(&k(i), &round.to_le_bytes()).unwrap();
                    }
                    round += 1;
                }
            })
        };
        for _ in 0..20 {
            let out = db.scan(&k(0), &k(99));
            // Serializable snapshot: all 100 keys present; values form a
            // consistent cut (each key's round within 1 generation of the
            // minimum is NOT guaranteed, but presence and order are).
            assert_eq!(out.len(), 100);
            for w in out.windows(2) {
                assert!(w[0].0 < w[1].0, "scan must be sorted");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn master_reuse_mode_trades_freshness_for_drains() {
        let mut opts = FloDbOptions::small_for_tests();
        opts.master_reuse_limit = 4;
        let db = FloDb::open(opts).unwrap();
        for i in 0..50u64 {
            db.put(&k(i), b"v").unwrap();
        }
        // Back-to-back scans of a quiet store: the first drains, the rest
        // reuse its stamp (and stay correct).
        for _ in 0..5 {
            assert_eq!(db.scan(&k(0), &k(49)).len(), 50);
        }
        let f = db.flodb_stats();
        let reused = f.master_reuse_scans.load(Ordering::Relaxed);
        assert!(reused >= 1, "expected reuse on a quiet store, got {reused}");
        // Reused scans may serve a stale-but-consistent snapshot (the
        // Membuffer is not re-drained), but the reuse budget bounds the
        // staleness: within `master_reuse_limit + 1` scans a fresh master
        // drains and surfaces the write.
        db.put(&k(25), b"w").unwrap();
        let mut saw_fresh = false;
        for _ in 0..=5 {
            let out = db.scan(&k(0), &k(49));
            assert_eq!(out.len(), 50, "reused snapshots must stay complete");
            let v25 = out.iter().find(|(key, _)| key.as_slice() == k(25)).unwrap();
            if v25.1 == b"w".to_vec() {
                saw_fresh = true;
                break;
            }
            assert_eq!(v25.1, b"v".to_vec(), "stale value must be the old one");
        }
        assert!(saw_fresh, "the write must appear within the reuse budget");
    }

    #[test]
    fn linearizable_scan_mode() {
        let mut opts = FloDbOptions::small_for_tests();
        opts.linearizable_scans = true;
        let db = FloDb::open(opts).unwrap();
        db.put(b"x", b"1").unwrap();
        let out = db.scan(b"a", b"z");
        assert_eq!(out.len(), 1);
        // A linearizable scan must reflect every prior put.
        db.put(b"y", b"2").unwrap();
        let out = db.scan(b"a", b"z");
        assert_eq!(out.len(), 2);
    }
}
