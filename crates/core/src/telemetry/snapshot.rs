//! Point-in-time telemetry export: counters + histogram quantiles,
//! delta-able between snapshots, with dependency-free Prometheus-style
//! text and JSON encoders.

use crate::api::StoreStats;

use super::histogram::Histogram;
use super::recorder::{OpClass, StageClass};
use super::TelemetryLevel;

/// Quantile summary of one histogram (what dashboards consume; the full
/// bucket vector stays inside [`TelemetrySnapshot`] so snapshots remain
/// delta-able and mergeable without losing resolution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
}

impl HistogramSummary {
    /// Summarizes `h`.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            p50_ns: h.percentile_ns(50.0),
            p95_ns: h.percentile_ns(95.0),
            p99_ns: h.percentile_ns(99.0),
            p999_ns: h.percentile_ns(99.9),
            max_ns: h.max_ns(),
            mean_ns: h.mean_ns(),
        }
    }
}

/// A point-in-time snapshot of everything the engine's telemetry layer
/// recorded: the [`StoreStats`] counters plus (at
/// [`TelemetryLevel::Full`]) the per-op and per-stage latency
/// histograms.
///
/// Snapshots are cumulative since open. [`delta_since`] subtracts an
/// earlier snapshot of the same store to isolate an interval;
/// [`merge_from`] sums snapshots across shards
/// ([`ShardedFloDb::telemetry`](crate::ShardedFloDb::telemetry)).
///
/// [`delta_since`]: TelemetrySnapshot::delta_since
/// [`merge_from`]: TelemetrySnapshot::merge_from
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The level the store was recording at.
    pub level: TelemetryLevel,
    /// Operation and lifecycle counters.
    pub counters: StoreStats,
    /// Per-op latency histograms, indexed by [`OpClass::index`]. Empty
    /// below [`TelemetryLevel::Full`].
    pub ops: [Histogram; 3],
    /// Per-stage duration histograms, indexed by [`StageClass::index`].
    /// Empty below [`TelemetryLevel::Full`].
    pub stages: [Histogram; 9],
}

impl TelemetrySnapshot {
    /// An empty snapshot at `level` (all counters zero, all histograms
    /// empty) — the identity for [`merge_from`](Self::merge_from).
    pub fn empty(level: TelemetryLevel) -> Self {
        Self {
            level,
            counters: StoreStats::default(),
            ops: std::array::from_fn(|_| Histogram::new()),
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// The latency histogram of one op class.
    pub fn op(&self, op: OpClass) -> &Histogram {
        &self.ops[op.index()]
    }

    /// The duration histogram of one engine stage.
    pub fn stage(&self, stage: StageClass) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Quantile summary of one op class.
    pub fn op_summary(&self, op: OpClass) -> HistogramSummary {
        HistogramSummary::of(self.op(op))
    }

    /// Quantile summary of one engine stage.
    pub fn stage_summary(&self, stage: StageClass) -> HistogramSummary {
        HistogramSummary::of(self.stage(stage))
    }

    /// Returns this snapshot minus `earlier` (taken from the same store,
    /// earlier): counters subtract saturating, histograms subtract per
    /// bucket. The two gauges (`wal_generations`, `wal_active_bytes`)
    /// keep this snapshot's value — a gauge has no meaningful delta —
    /// and histogram maxima are upper bounds (see [`Histogram::diff`]).
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            level: self.level,
            counters: stats_sub(&self.counters, &earlier.counters),
            ops: std::array::from_fn(|i| self.ops[i].diff(&earlier.ops[i])),
            stages: std::array::from_fn(|i| self.stages[i].diff(&earlier.stages[i])),
        }
    }

    /// Adds `other` into `self` (counters sum, gauges sum to fleet-wide
    /// totals, histograms merge) — the sharded rollup. The merged level
    /// is the minimum of the two: a quantile over shards is only as
    /// complete as the least-recording shard.
    pub fn merge_from(&mut self, other: &TelemetrySnapshot) {
        self.level = self.level.min(other.level);
        stats_add(&mut self.counters, &other.counters);
        for (mine, theirs) in self.ops.iter_mut().zip(other.ops.iter()) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
    }

    /// Renders the snapshot as Prometheus-style text exposition
    /// (dependency-free; counters as `flodb_<name>`, quantiles as
    /// labeled `flodb_op_latency_ns` / `flodb_stage_duration_ns`).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# flodb telemetry (level={})\n",
            self.level.name()
        ));
        for (name, value) in counter_pairs(&self.counters) {
            out.push_str(&format!("flodb_{name} {value}\n"));
        }
        if self.level != TelemetryLevel::Full {
            return out;
        }
        for op in OpClass::ALL {
            let s = self.op_summary(op);
            let label = op.name();
            out.push_str(&format!(
                "flodb_op_latency_count{{op=\"{label}\"}} {}\n",
                s.count
            ));
            for (q, v) in quantile_pairs(&s) {
                out.push_str(&format!(
                    "flodb_op_latency_ns{{op=\"{label}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
        }
        for stage in StageClass::ALL {
            let s = self.stage_summary(stage);
            let label = stage.name();
            out.push_str(&format!(
                "flodb_stage_duration_count{{stage=\"{label}\"}} {}\n",
                s.count
            ));
            for (q, v) in quantile_pairs(&s) {
                out.push_str(&format!(
                    "flodb_stage_duration_ns{{stage=\"{label}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document (dependency-free,
    /// schema `flodb-telemetry/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"flodb-telemetry/v1\",\n");
        out.push_str(&format!("  \"level\": \"{}\",\n", self.level.name()));
        out.push_str("  \"counters\": {");
        let pairs = counter_pairs(&self.counters);
        for (i, (name, value)) in pairs.iter().enumerate() {
            out.push_str(&format!(
                "\"{name}\": {value}{}",
                if i + 1 == pairs.len() { "" } else { ", " }
            ));
        }
        out.push_str("},\n  \"ops\": [\n");
        for (i, op) in OpClass::ALL.iter().enumerate() {
            json_summary_line(
                &mut out,
                "op",
                op.name(),
                &self.op_summary(*op),
                i + 1 == OpClass::ALL.len(),
            );
        }
        out.push_str("  ],\n  \"stages\": [\n");
        for (i, stage) in StageClass::ALL.iter().enumerate() {
            json_summary_line(
                &mut out,
                "stage",
                stage.name(),
                &self.stage_summary(*stage),
                i + 1 == StageClass::ALL.len(),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_summary_line(
    out: &mut String,
    key: &str,
    label: &str,
    s: &HistogramSummary,
    last: bool,
) {
    out.push_str(&format!(
        "    {{\"{key}\": \"{label}\", \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}}}{}\n",
        s.count,
        s.p50_ns,
        s.p95_ns,
        s.p99_ns,
        s.p999_ns,
        s.max_ns,
        s.mean_ns,
        if last { "" } else { "," }
    ));
}

fn quantile_pairs(s: &HistogramSummary) -> [(&'static str, u64); 5] {
    [
        ("p50", s.p50_ns),
        ("p95", s.p95_ns),
        ("p99", s.p99_ns),
        ("p999", s.p999_ns),
        ("max", s.max_ns),
    ]
}

/// Every counter as a `(name, value)` pair, in [`StoreStats`] field
/// order. Exhaustive destructuring on purpose: adding a stats field
/// without deciding how it exports fails compilation here.
fn counter_pairs(s: &StoreStats) -> Vec<(&'static str, u64)> {
    let StoreStats {
        puts,
        deletes,
        gets,
        scans,
        scanned_keys,
        persists,
        fast_level_writes,
        scan_restarts,
        fallback_scans,
        wal_groups,
        wal_group_records,
        wal_follower_writes,
        wal_rotations,
        wal_retired_bytes,
        wal_generations,
        wal_active_bytes,
        io_retries,
        io_degraded,
        wal_retire_errors,
        write_stall_ns,
        wal_sync_ns,
    } = s;
    vec![
        ("puts", *puts),
        ("deletes", *deletes),
        ("gets", *gets),
        ("scans", *scans),
        ("scanned_keys", *scanned_keys),
        ("persists", *persists),
        ("fast_level_writes", *fast_level_writes),
        ("scan_restarts", *scan_restarts),
        ("fallback_scans", *fallback_scans),
        ("wal_groups", *wal_groups),
        ("wal_group_records", *wal_group_records),
        ("wal_follower_writes", *wal_follower_writes),
        ("wal_rotations", *wal_rotations),
        ("wal_retired_bytes", *wal_retired_bytes),
        ("wal_generations", *wal_generations),
        ("wal_active_bytes", *wal_active_bytes),
        ("io_retries", *io_retries),
        ("io_degraded", *io_degraded),
        ("wal_retire_errors", *wal_retire_errors),
        ("write_stall_ns", *write_stall_ns),
        ("wal_sync_ns", *wal_sync_ns),
    ]
}

/// `a - b` per counter, saturating; the two gauges keep `a`'s value.
/// Exhaustive destructuring on purpose (see [`counter_pairs`]).
fn stats_sub(a: &StoreStats, b: &StoreStats) -> StoreStats {
    let StoreStats {
        puts,
        deletes,
        gets,
        scans,
        scanned_keys,
        persists,
        fast_level_writes,
        scan_restarts,
        fallback_scans,
        wal_groups,
        wal_group_records,
        wal_follower_writes,
        wal_rotations,
        wal_retired_bytes,
        wal_generations,
        wal_active_bytes,
        io_retries,
        io_degraded,
        wal_retire_errors,
        write_stall_ns,
        wal_sync_ns,
    } = a;
    StoreStats {
        puts: puts.saturating_sub(b.puts),
        deletes: deletes.saturating_sub(b.deletes),
        gets: gets.saturating_sub(b.gets),
        scans: scans.saturating_sub(b.scans),
        scanned_keys: scanned_keys.saturating_sub(b.scanned_keys),
        persists: persists.saturating_sub(b.persists),
        fast_level_writes: fast_level_writes.saturating_sub(b.fast_level_writes),
        scan_restarts: scan_restarts.saturating_sub(b.scan_restarts),
        fallback_scans: fallback_scans.saturating_sub(b.fallback_scans),
        wal_groups: wal_groups.saturating_sub(b.wal_groups),
        wal_group_records: wal_group_records.saturating_sub(b.wal_group_records),
        wal_follower_writes: wal_follower_writes.saturating_sub(b.wal_follower_writes),
        wal_rotations: wal_rotations.saturating_sub(b.wal_rotations),
        wal_retired_bytes: wal_retired_bytes.saturating_sub(b.wal_retired_bytes),
        // Gauges: a delta of "live generations" is meaningless; report
        // the later snapshot's state.
        wal_generations: *wal_generations,
        wal_active_bytes: *wal_active_bytes,
        io_retries: io_retries.saturating_sub(b.io_retries),
        io_degraded: io_degraded.saturating_sub(b.io_degraded),
        wal_retire_errors: wal_retire_errors.saturating_sub(b.wal_retire_errors),
        write_stall_ns: write_stall_ns.saturating_sub(b.write_stall_ns),
        wal_sync_ns: wal_sync_ns.saturating_sub(b.wal_sync_ns),
    }
}

/// `into += s` per counter (gauges included: they sum to fleet-wide
/// totals across shards). Exhaustive destructuring on purpose.
fn stats_add(into: &mut StoreStats, s: &StoreStats) {
    let StoreStats {
        puts,
        deletes,
        gets,
        scans,
        scanned_keys,
        persists,
        fast_level_writes,
        scan_restarts,
        fallback_scans,
        wal_groups,
        wal_group_records,
        wal_follower_writes,
        wal_rotations,
        wal_retired_bytes,
        wal_generations,
        wal_active_bytes,
        io_retries,
        io_degraded,
        wal_retire_errors,
        write_stall_ns,
        wal_sync_ns,
    } = s;
    into.puts += puts;
    into.deletes += deletes;
    into.gets += gets;
    into.scans += scans;
    into.scanned_keys += scanned_keys;
    into.persists += persists;
    into.fast_level_writes += fast_level_writes;
    into.scan_restarts += scan_restarts;
    into.fallback_scans += fallback_scans;
    into.wal_groups += wal_groups;
    into.wal_group_records += wal_group_records;
    into.wal_follower_writes += wal_follower_writes;
    into.wal_rotations += wal_rotations;
    into.wal_retired_bytes += wal_retired_bytes;
    into.wal_generations += wal_generations;
    into.wal_active_bytes += wal_active_bytes;
    into.io_retries += io_retries;
    into.io_degraded += io_degraded;
    into.wal_retire_errors += wal_retire_errors;
    into.write_stall_ns += write_stall_ns;
    into.wal_sync_ns += wal_sync_ns;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::empty(TelemetryLevel::Full);
        snap.counters.puts = 10;
        snap.counters.wal_sync_ns = 5_000;
        snap.ops[OpClass::Put.index()].record(1_000);
        snap.ops[OpClass::Put.index()].record(2_000);
        snap.stages[StageClass::WalFsync.index()].record(9_000);
        snap
    }

    #[test]
    fn delta_isolates_the_interval() {
        let early = sample();
        let mut late = early.clone();
        late.counters.puts = 17;
        late.ops[OpClass::Put.index()].record(50_000);
        let delta = late.delta_since(&early);
        assert_eq!(delta.counters.puts, 7);
        assert_eq!(delta.op(OpClass::Put).count(), 1);
        assert!(delta.op_summary(OpClass::Put).p50_ns > 10_000);
        // Stage histogram unchanged across the interval → empty delta.
        assert_eq!(delta.stage(StageClass::WalFsync).count(), 0);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut total = TelemetrySnapshot::empty(TelemetryLevel::Full);
        total.merge_from(&sample());
        total.merge_from(&sample());
        assert_eq!(total.counters.puts, 20);
        assert_eq!(total.op(OpClass::Put).count(), 4);
        assert_eq!(total.stage(StageClass::WalFsync).count(), 2);
        // Merging an Off shard degrades the rollup's level.
        total.merge_from(&TelemetrySnapshot::empty(TelemetryLevel::Off));
        assert_eq!(total.level, TelemetryLevel::Off);
    }

    #[test]
    fn prometheus_text_carries_counters_and_quantiles() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("flodb_puts 10\n"));
        assert!(text.contains("flodb_wal_sync_ns 5000\n"));
        assert!(text.contains("flodb_op_latency_count{op=\"put\"} 2\n"));
        assert!(text.contains("flodb_stage_duration_ns{stage=\"wal_fsync\",quantile=\"p99\"}"));
        // Counters-level exposition omits the (empty) histograms.
        let mut counters_only = sample();
        counters_only.level = TelemetryLevel::Counters;
        let text = counters_only.to_prometheus_text();
        assert!(text.contains("flodb_puts 10\n"));
        assert!(!text.contains("flodb_op_latency_ns"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let doc = sample().to_json();
        assert!(doc.contains("\"schema\": \"flodb-telemetry/v1\""));
        assert!(doc.contains("\"level\": \"full\""));
        assert!(doc.contains("\"puts\": 10"));
        assert!(doc.contains("\"op\": \"put\""));
        assert!(doc.contains("\"stage\": \"wal_fsync\""));
        // Crude balance check (the bench crate owns the real parser).
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn summary_quantiles_are_ordered() {
        let s = sample().op_summary(OpClass::Put);
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert_eq!(s.count, 2);
    }
}
