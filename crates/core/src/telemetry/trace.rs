//! The flight recorder: a fixed-size lock-free ring of structured
//! engine events.
//!
//! Writers claim a slot by ticket (`cursor.fetch_add`) and publish it
//! with a per-slot seqlock: the slot's `seq` goes *empty/published →
//! claimed (odd) → published (even)* with a CAS on the claim, so two
//! writers can never write one slot concurrently — a writer that laps a
//! still-writing predecessor drops its event instead (counted in
//! [`TraceRing::dropped`]). Readers ([`TraceRing::dump`]) validate
//! `seq` before and after reading the payload and skip torn slots, so a
//! dump taken mid-flight returns only fully published events.
//!
//! The atomics come from `flodb_sync::shim::atomic`, so under
//! `--cfg flodb_model` the whole publish path runs on the model
//! checker's instrumented primitives (see `tests/model.rs`,
//! `trace_ring_*`).

use std::time::Instant;

use flodb_sync::lock_order::CORE_TRACE_DUMP;
use flodb_sync::shim::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use flodb_sync::shim::{ranked_mutex, Mutex};

/// What happened, for one flight-recorder event.
///
/// The `a`/`b` payload words of [`TraceEvent`] are per-kind:
///
/// | kind | `a` | `b` |
/// |---|---|---|
/// | `FreezeBegin` | — | — |
/// | `FreezeEnd` | duration (ns) | — |
/// | `Drain` | duration (ns) | — |
/// | `WalRotation` | sealed-segment bytes | duration (ns) |
/// | `WalRetirement` | segments retired | bytes retired |
/// | `Flush` | records flushed | duration (ns) |
/// | `Compaction` | duration (ns) | — |
/// | `StallBegin` | — | — |
/// | `StallEnd` | stall duration (ns) | — |
/// | `IoRetry` | attempt number | — |
/// | `Degraded` | — | — |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Membuffer freeze began (a scan master or capacity trigger).
    FreezeBegin,
    /// Freeze → drain completed; the frozen Membuffer is empty.
    FreezeEnd,
    /// A drain pass moved entries Membuffer → Memtable.
    Drain,
    /// The active WAL segment was sealed and a fresh generation opened.
    WalRotation,
    /// A retirement pass deleted sealed WAL segments.
    WalRetirement,
    /// An immutable Memtable was flushed to disk.
    Flush,
    /// A compaction pass ran on the persist thread.
    Compaction,
    /// A writer began stalling for Memtable room.
    StallBegin,
    /// The stalled writer got room and resumed.
    StallEnd,
    /// A background I/O attempt failed and was retried.
    IoRetry,
    /// The degraded latch tripped (background I/O gave up).
    Degraded,
}

impl TraceEventKind {
    /// Stable label used in dump output.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::FreezeBegin => "freeze_begin",
            TraceEventKind::FreezeEnd => "freeze_end",
            TraceEventKind::Drain => "drain",
            TraceEventKind::WalRotation => "wal_rotation",
            TraceEventKind::WalRetirement => "wal_retirement",
            TraceEventKind::Flush => "flush",
            TraceEventKind::Compaction => "compaction",
            TraceEventKind::StallBegin => "stall_begin",
            TraceEventKind::StallEnd => "stall_end",
            TraceEventKind::IoRetry => "io_retry",
            TraceEventKind::Degraded => "degraded",
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            0 => TraceEventKind::FreezeBegin,
            1 => TraceEventKind::FreezeEnd,
            2 => TraceEventKind::Drain,
            3 => TraceEventKind::WalRotation,
            4 => TraceEventKind::WalRetirement,
            5 => TraceEventKind::Flush,
            6 => TraceEventKind::Compaction,
            7 => TraceEventKind::StallBegin,
            8 => TraceEventKind::StallEnd,
            9 => TraceEventKind::IoRetry,
            10 => TraceEventKind::Degraded,
            _ => return None,
        })
    }
}

/// One published flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global event number (monotone across the whole run; the ring
    /// holds the last `capacity` of them).
    pub ticket: u64,
    /// Microseconds since the ring (i.e. the store) was created.
    pub at_us: u64,
    /// Dense process-local id of the emitting thread.
    pub tid: u32,
    /// What happened.
    pub kind: TraceEventKind,
    /// First payload word (see [`TraceEventKind`] for the per-kind
    /// meaning).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// One ring slot: a seqlock (`seq`) over five payload words.
///
/// `seq` encodes both state and ownership: `0` = never written,
/// `2t + 1` = claimed by ticket `t` (payload being written),
/// `2t + 2` = ticket `t` published.
struct Slot {
    seq: AtomicU64,
    kind: AtomicU32,
    tid: AtomicU32,
    at_us: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            kind: AtomicU32::new(0),
            tid: AtomicU32::new(0),
            at_us: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// The fixed-size lock-free event ring. Memory is bounded at
/// construction: recording never allocates, a full ring overwrites its
/// oldest events, and a writer lapped mid-write loses the newer event
/// (never corrupts the older one).
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Next ticket; slot = ticket % capacity.
    cursor: AtomicU64,
    /// Events dropped because their slot's previous writer had not yet
    /// published (a writer lapped the whole ring mid-write).
    dropped: AtomicU64,
    /// Timestamp origin for [`TraceEvent::at_us`].
    epoch: Instant,
    /// Serializes whole-ring dumps to stderr (the degraded-latch
    /// auto-dump), so two tripping shards interleave lines, not bytes.
    /// Leaf rank: nothing is acquired under it.
    dump_lock: Mutex<()>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// Creates a ring holding the last `capacity` events (rounded up to
    /// a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        Self {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            dump_lock: ranked_mutex(CORE_TRACE_DUMP, ()),
        }
    }

    /// Number of slots (events retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed (dropped ones included).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to a writer lapping a still-writing predecessor.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event. Lock-free and allocation-free; wait-free for
    /// the writer (a claim conflict drops the event rather than spin).
    pub fn push(&self, kind: TraceEventKind, tid: u32, a: u64, b: u64) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let cap = self.slots.len() as u64;
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % cap) as usize];
        // The slot is writable only if its previous lap's writer fully
        // published (or it was never written). Acquire pairs with that
        // writer's publishing Release so its payload stores cannot be
        // ordered after ours.
        let expected = if ticket >= cap { 2 * (ticket - cap) + 2 } else { 0 };
        if slot
            .seq
            .compare_exchange(
                expected,
                2 * ticket + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.kind.store(kind as u32, Ordering::Relaxed);
        slot.tid.store(tid, Ordering::Relaxed);
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        // Release-publish: readers that observe the even seq also
        // observe every payload store above.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Returns every fully published event, oldest first. Slots being
    /// written concurrently are skipped (never torn), so the result is
    /// a consistent sample of the last ≤ `capacity` events.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue; // Empty or mid-write.
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let tid = slot.tid.load(Ordering::Relaxed);
            let at_us = slot.at_us.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Seqlock validation: the payload loads above must complete
            // before the re-read below; the Acquire fence orders them.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // Overwritten while reading.
            }
            let Some(kind) = TraceEventKind::from_u32(kind) else {
                continue;
            };
            out.push(TraceEvent {
                ticket: (seq1 - 2) / 2,
                at_us,
                tid,
                kind,
                a,
                b,
            });
        }
        out.sort_by_key(|e| e.ticket);
        out
    }

    /// Dumps the ring to stderr, one line per event — the degraded-latch
    /// auto-dump. The dump lock only serializes concurrent dumps'
    /// output; recording proceeds untouched.
    pub(crate) fn dump_to_stderr(&self, why: &str) {
        let _serialize = self.dump_lock.lock();
        let events = self.dump();
        eprintln!(
            "flodb trace dump ({why}): {} events, {} recorded, {} dropped",
            events.len(),
            self.recorded(),
            self.dropped()
        );
        for ev in &events {
            eprintln!(
                "  #{:<6} +{:>10}us tid={:<3} {:<14} a={} b={}",
                ev.ticket,
                ev.at_us,
                ev.tid,
                ev.kind.name(),
                ev.a,
                ev.b
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order() {
        let ring = TraceRing::with_capacity(8);
        ring.push(TraceEventKind::FreezeBegin, 1, 0, 0);
        ring.push(TraceEventKind::FreezeEnd, 1, 123, 0);
        ring.push(TraceEventKind::Flush, 2, 10, 20);
        let events = ring.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceEventKind::FreezeBegin);
        assert_eq!(events[1].kind, TraceEventKind::FreezeEnd);
        assert_eq!(events[1].a, 123);
        assert_eq!(events[2].tid, 2);
        assert!(events.windows(2).all(|w| w[0].ticket < w[1].ticket));
    }

    #[test]
    fn wraparound_keeps_only_the_newest() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..10u64 {
            ring.push(TraceEventKind::IoRetry, 0, i, 0);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 4, "ring holds exactly its capacity");
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9], "oldest overwritten first");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn capacity_rounds_up_and_memory_is_bounded() {
        let ring = TraceRing::with_capacity(5);
        assert_eq!(ring.capacity(), 8);
        // Push far more events than slots: the dump never grows past
        // capacity and every surviving ticket is from the final lap.
        for i in 0..10_000u64 {
            ring.push(TraceEventKind::Drain, 0, i, 0);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 8);
        assert!(events.iter().all(|e| e.ticket >= 10_000 - 8));
    }

    #[test]
    fn kind_roundtrips_through_u32() {
        for kind in [
            TraceEventKind::FreezeBegin,
            TraceEventKind::FreezeEnd,
            TraceEventKind::Drain,
            TraceEventKind::WalRotation,
            TraceEventKind::WalRetirement,
            TraceEventKind::Flush,
            TraceEventKind::Compaction,
            TraceEventKind::StallBegin,
            TraceEventKind::StallEnd,
            TraceEventKind::IoRetry,
            TraceEventKind::Degraded,
        ] {
            assert_eq!(TraceEventKind::from_u32(kind as u32), Some(kind));
        }
        assert_eq!(TraceEventKind::from_u32(999), None);
    }

    #[test]
    fn dump_to_stderr_does_not_panic() {
        let ring = TraceRing::with_capacity(4);
        ring.push(TraceEventKind::Degraded, 0, 0, 0);
        ring.dump_to_stderr("unit test");
    }
}
