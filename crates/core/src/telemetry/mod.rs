//! In-engine observability: latency histograms, stage timers, and the
//! flight-recorder event trace.
//!
//! FloDB's pitch is *latency* — write stalls and p99 spikes that plain
//! counters cannot attribute. This module gives the engine three layers
//! of its own measurement (see ARCHITECTURE.md, "Observability"):
//!
//! 1. **Latency histograms** ([`Histogram`], recorded by the private
//!    in-engine `LatencyRecorder`): per-op latencies (put/get/scan) plus
//!    internal stage durations — group-commit wait vs. write vs. fsync,
//!    write-stall duration, freeze→drain, flush, compaction, WAL
//!    rotation and retirement — recorded with relaxed atomics into
//!    thread-striped buckets (no hot-path lock).
//! 2. **Flight recorder** ([`TraceRing`]): a fixed-size lock-free ring
//!    of structured engine events, dumpable via
//!    [`FloDb::trace_dump`](crate::FloDb::trace_dump) and auto-dumped
//!    to stderr when the degraded latch trips.
//! 3. **Export** ([`TelemetrySnapshot`]): counters + quantiles,
//!    delta-able and shard-mergeable, with dependency-free
//!    Prometheus-style text and JSON encoders.
//!
//! Everything is gated by [`TelemetryLevel`]
//! ([`FloDbOptions::telemetry`](crate::FloDbOptions::telemetry)):
//! `Off` allocates nothing and reduces every telemetry call site to a
//! branch on a cached enum; `Counters` adds the flight recorder and two
//! duration counters (`write_stall_ns`, `wal_sync_ns`) on paths that
//! already stall or sync; `Full` adds the histograms.

mod histogram;
mod recorder;
mod snapshot;
mod trace;

pub use histogram::Histogram;
pub use recorder::{OpClass, StageClass};
pub use snapshot::{HistogramSummary, TelemetrySnapshot};
pub use trace::{TraceEvent, TraceEventKind, TraceRing};

pub(crate) use recorder::{small_tid, LatencyRecorder};

/// How much telemetry the engine records; see the module docs for what
/// each level costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryLevel {
    /// Record nothing beyond the existing [`StoreStats`](crate::StoreStats)
    /// counters. Telemetry call sites reduce to a branch on a cached
    /// enum — no allocation, no lock, no atomic.
    Off,
    /// Also run the flight recorder and size stalls/fsyncs
    /// (`write_stall_ns`, `wal_sync_ns`): cheap enough to leave on.
    Counters,
    /// Also record per-op and per-stage latency histograms.
    Full,
}

impl TelemetryLevel {
    /// Stable lowercase label (`off` / `counters` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }
}

/// Events the flight recorder retains (once wrapped, oldest are
/// overwritten).
const RING_EVENTS: usize = 1024;

/// The engine-side telemetry state: the cached level plus the
/// level-gated recorder and ring. `Off` holds two `None`s — the whole
/// subsystem is then one enum field's worth of memory.
#[derive(Debug)]
pub(crate) struct EngineTelemetry {
    level: TelemetryLevel,
    recorder: Option<LatencyRecorder>,
    ring: Option<TraceRing>,
}

impl EngineTelemetry {
    pub(crate) fn new(level: TelemetryLevel) -> Self {
        Self {
            level,
            recorder: (level == TelemetryLevel::Full).then(LatencyRecorder::new),
            ring: (level >= TelemetryLevel::Counters)
                .then(|| TraceRing::with_capacity(RING_EVENTS)),
        }
    }

    /// True at `Counters` and `Full` (events + duration counters).
    #[inline]
    pub(crate) fn counters(&self) -> bool {
        self.level >= TelemetryLevel::Counters
    }

    /// True at `Full` (histograms).
    #[inline]
    pub(crate) fn full(&self) -> bool {
        self.level == TelemetryLevel::Full
    }

    /// Records an op latency (no-op below `Full`).
    #[inline]
    pub(crate) fn record_op(&self, op: OpClass, ns: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.record_op(op, ns);
        }
    }

    /// Records a stage duration (no-op below `Full`).
    #[inline]
    pub(crate) fn record_stage(&self, stage: StageClass, ns: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.record_stage(stage, ns);
        }
    }

    /// Emits a flight-recorder event (no-op below `Counters`).
    #[inline]
    pub(crate) fn event(&self, kind: TraceEventKind, a: u64, b: u64) {
        if let Some(ring) = &self.ring {
            ring.push(kind, small_tid(), a, b);
        }
    }

    /// The published event trace, oldest first (empty at `Off`).
    pub(crate) fn trace_dump(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map(TraceRing::dump).unwrap_or_default()
    }

    /// Dumps the event trace to stderr (the degraded-latch auto-dump);
    /// no-op at `Off`.
    pub(crate) fn dump_to_stderr(&self, why: &str) {
        if let Some(ring) = &self.ring {
            ring.dump_to_stderr(why);
        }
    }

    /// Builds the exportable snapshot around the caller-supplied
    /// counters.
    pub(crate) fn snapshot(&self, counters: crate::api::StoreStats) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::empty(self.level);
        snap.counters = counters;
        if let Some(recorder) = &self.recorder {
            snap.ops = recorder.snapshot_ops();
            snap.stages = recorder.snapshot_stages();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_allocates_nothing() {
        let t = EngineTelemetry::new(TelemetryLevel::Off);
        assert!(t.recorder.is_none());
        assert!(t.ring.is_none());
        // Every entry point is a safe no-op.
        t.record_op(OpClass::Put, 100);
        t.record_stage(StageClass::WalFsync, 100);
        t.event(TraceEventKind::Flush, 1, 2);
        assert!(t.trace_dump().is_empty());
        t.dump_to_stderr("noop");
        let snap = t.snapshot(crate::api::StoreStats::default());
        assert_eq!(snap.level, TelemetryLevel::Off);
        assert_eq!(snap.op(OpClass::Put).count(), 0);
    }

    #[test]
    fn counters_gets_the_ring_but_no_histograms() {
        let t = EngineTelemetry::new(TelemetryLevel::Counters);
        assert!(t.recorder.is_none());
        assert!(t.ring.is_some());
        t.event(TraceEventKind::StallBegin, 0, 0);
        t.record_op(OpClass::Put, 100); // dropped: no recorder
        assert_eq!(t.trace_dump().len(), 1);
        let snap = t.snapshot(crate::api::StoreStats::default());
        assert_eq!(snap.op(OpClass::Put).count(), 0);
    }

    #[test]
    fn full_records_everything() {
        let t = EngineTelemetry::new(TelemetryLevel::Full);
        t.record_op(OpClass::Get, 250);
        t.record_stage(StageClass::WriteStall, 7_000);
        t.event(TraceEventKind::StallEnd, 7_000, 0);
        let snap = t.snapshot(crate::api::StoreStats::default());
        assert_eq!(snap.op(OpClass::Get).count(), 1);
        assert_eq!(snap.stage(StageClass::WriteStall).count(), 1);
        assert_eq!(t.trace_dump().len(), 1);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Full);
        assert_eq!(TelemetryLevel::Full.name(), "full");
    }
}
