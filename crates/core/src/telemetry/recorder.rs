//! Thread-sharded latency recording on relaxed atomics.
//!
//! The hot path records a sample with three relaxed RMWs into a
//! per-thread-striped bucket array — no lock, no allocation, no
//! ordering stronger than `Relaxed` (each counter is independent; the
//! snapshot derives its total from the buckets it actually read, so no
//! cross-counter invariant needs synchronizing).

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use super::histogram::{bucket_index, Histogram, NUM_BUCKETS};

/// Operation classes with per-op latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `put` / `delete` / `write` (all acknowledged mutations).
    Put,
    /// Point lookups.
    Get,
    /// Range scans (whole scan, restarts included).
    Scan,
}

impl OpClass {
    /// Every op class, in stable export order.
    pub const ALL: [OpClass; 3] = [OpClass::Put, OpClass::Get, OpClass::Scan];

    /// Stable label used in exposition output.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Scan => "scan",
        }
    }

    /// Index into [`OpClass::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Internal engine stages with duration histograms (recorded at
/// [`TelemetryLevel::Full`](super::TelemetryLevel::Full)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageClass {
    /// Time a writer spent inside the group-commit submission *minus*
    /// the commit it led (leaders: queue wait + follower handoff;
    /// followers: the whole wait for their group's leader).
    CommitWait,
    /// WAL frame append under the log lock (fsync excluded).
    WalWrite,
    /// `fsync` of the WAL file inside a committed group.
    WalFsync,
    /// Writer stall waiting for Memtable room.
    WriteStall,
    /// Membuffer freeze → drain completion (the scan-master grace).
    FreezeDrain,
    /// Immutable-Memtable flush to disk (retries included).
    MemtableFlush,
    /// One compaction pass on the persist thread.
    Compaction,
    /// WAL segment rotation (sealing + fresh-segment creation).
    WalRotation,
    /// One WAL retirement pass (checkpoint mark + segment deletes).
    WalRetirement,
}

impl StageClass {
    /// Every stage, in stable export order.
    pub const ALL: [StageClass; 9] = [
        StageClass::CommitWait,
        StageClass::WalWrite,
        StageClass::WalFsync,
        StageClass::WriteStall,
        StageClass::FreezeDrain,
        StageClass::MemtableFlush,
        StageClass::Compaction,
        StageClass::WalRotation,
        StageClass::WalRetirement,
    ];

    /// Stable label used in exposition output.
    pub fn name(self) -> &'static str {
        match self {
            StageClass::CommitWait => "commit_wait",
            StageClass::WalWrite => "wal_write",
            StageClass::WalFsync => "wal_fsync",
            StageClass::WriteStall => "write_stall",
            StageClass::FreezeDrain => "freeze_drain",
            StageClass::MemtableFlush => "memtable_flush",
            StageClass::Compaction => "compaction",
            StageClass::WalRotation => "wal_rotation",
            StageClass::WalRetirement => "wal_retirement",
        }
    }

    /// Index into [`StageClass::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A histogram recorded into concurrently with relaxed atomics.
///
/// `snapshot` reads the buckets relaxed and derives the sample count
/// from their sum, so a snapshot taken mid-record is merely slightly
/// stale, never internally inconsistent.
#[derive(Debug)]
pub(crate) struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Histogram::from_parts(
            buckets,
            u128::from(self.sum_ns.load(Ordering::Relaxed)),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// Stripes per hot (per-op) histogram: threads hash onto stripes by a
/// cheap process-local thread id, so concurrent recorders of the same
/// latency do not collide on one bucket's cache line.
const OP_SHARDS: usize = 8;

/// An [`AtomicHistogram`] striped `OP_SHARDS` ways by thread id.
#[derive(Debug)]
struct ShardedHistogram {
    shards: Box<[AtomicHistogram]>,
}

impl ShardedHistogram {
    fn new() -> Self {
        Self {
            shards: (0..OP_SHARDS).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.shards[small_tid() as usize % OP_SHARDS].record(ns);
    }

    fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in self.shards.iter() {
            out.merge(&shard.snapshot());
        }
        out
    }
}

/// The engine's latency recorder: striped per-op histograms (the hot
/// path, every operation) plus unstriped per-stage histograms (recorded
/// at background-ish frequencies — group commits, flushes, stalls).
#[derive(Debug)]
pub(crate) struct LatencyRecorder {
    ops: [ShardedHistogram; OpClass::ALL.len()],
    stages: [AtomicHistogram; StageClass::ALL.len()],
}

impl LatencyRecorder {
    pub(crate) fn new() -> Self {
        Self {
            ops: std::array::from_fn(|_| ShardedHistogram::new()),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    #[inline]
    pub(crate) fn record_op(&self, op: OpClass, ns: u64) {
        self.ops[op.index()].record(ns);
    }

    #[inline]
    pub(crate) fn record_stage(&self, stage: StageClass, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    pub(crate) fn snapshot_ops(&self) -> [Histogram; OpClass::ALL.len()] {
        std::array::from_fn(|i| self.ops[i].snapshot())
    }

    pub(crate) fn snapshot_stages(&self) -> [Histogram; StageClass::ALL.len()] {
        std::array::from_fn(|i| self.stages[i].snapshot())
    }
}

/// A small dense process-local thread id (0, 1, 2, ...), assigned on
/// first use. Used to stripe histograms and to stamp flight-recorder
/// events — cheaper and denser than the OS thread id.
pub(crate) fn small_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    TID.with(|cell| {
        let v = cell.get();
        if v != u32::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(v);
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for ns in [0u64, 7, 100, 1000, 12_345, 1 << 30] {
            atomic.record(ns);
            plain.record(ns);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn sharded_snapshot_merges_all_stripes() {
        let sharded = ShardedHistogram::new();
        // Spread records across stripes explicitly (one thread always
        // lands on one stripe, so write each stripe directly).
        for (i, shard) in sharded.shards.iter().enumerate() {
            shard.record(1000 * (i as u64 + 1));
        }
        let snap = sharded.snapshot();
        assert_eq!(snap.count(), OP_SHARDS as u64);
        assert_eq!(snap.max_ns(), 1000 * OP_SHARDS as u64);
    }

    #[test]
    fn recorder_routes_by_class() {
        let rec = LatencyRecorder::new();
        rec.record_op(OpClass::Put, 500);
        rec.record_op(OpClass::Get, 100);
        rec.record_stage(StageClass::WalFsync, 9000);
        let ops = rec.snapshot_ops();
        assert_eq!(ops[OpClass::Put.index()].count(), 1);
        assert_eq!(ops[OpClass::Get.index()].count(), 1);
        assert_eq!(ops[OpClass::Scan.index()].count(), 0);
        let stages = rec.snapshot_stages();
        assert_eq!(stages[StageClass::WalFsync.index()].count(), 1);
        assert_eq!(stages[StageClass::CommitWait.index()].count(), 0);
    }

    #[test]
    fn small_tids_are_stable_and_distinct() {
        let here = small_tid();
        assert_eq!(small_tid(), here, "stable within a thread");
        let other = std::thread::spawn(small_tid).join().unwrap();
        assert_ne!(here, other, "distinct across threads");
    }
}
