//! Log-linear latency histograms (median / p99 reporting, Figures 3-4).
//!
//! This is the engine's one histogram implementation: the workload
//! driver's per-thread recording (`flodb-workloads` re-exports this
//! type) and the in-engine [`LatencyRecorder`](super::LatencyRecorder)
//! both build on it, so quantile math cannot diverge between the
//! harness and the store.

/// Linear sub-buckets per power-of-two octave (HdrHistogram-style);
/// the relative resolution is `1/SUB_BUCKETS` ≈ 3%.
const SUB_BUCKETS: usize = 32;
/// log2 of `SUB_BUCKETS`.
const SUB_SHIFT: u32 = 5;
/// Total buckets: values below `SUB_BUCKETS` get exact buckets, octaves
/// 5..=63 get `SUB_BUCKETS` each.
pub(super) const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_SHIFT as usize) * SUB_BUCKETS;

/// A lock-free-to-merge latency histogram with log-linear nanosecond
/// buckets: exact below 32 ns, then 32 linear sub-buckets per power of
/// two (≈3% relative error), which is fine enough to resolve the
/// latency-vs-memory-size trends of Figures 3-4.
///
/// Each thread records into its own histogram; the driver merges them at
/// the end, so recording needs no synchronization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
pub(super) fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros(); // >= SUB_SHIFT here.
    let sub = ((ns >> (octave - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    ((octave - SUB_SHIFT) as usize + 1) * SUB_BUCKETS + sub
}

/// Returns the `[lo, hi)` value range of bucket `i` (the top bucket's
/// upper bound saturates at `u64::MAX`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i / SUB_BUCKETS - 1) as u32 + SUB_SHIFT;
    let sub = (i % SUB_BUCKETS) as u64;
    let step = 1u64 << (octave - SUB_SHIFT);
    let lo = (1u64 << octave) + sub * step;
    (lo, lo.saturating_add(step))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Rebuilds a histogram from raw bucket counts (the atomic recorder's
    /// snapshot path). `count` is derived from the buckets so the
    /// invariant `count == Σ buckets` holds even when the counts were
    /// read with relaxed atomics.
    pub(super) fn from_parts(buckets: Vec<u64>, sum_ns: u128, max_ns: u64) -> Self {
        debug_assert_eq!(buckets.len(), NUM_BUCKETS);
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            sum_ns,
            max_ns,
        }
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Returns the samples recorded since `earlier` (per-bucket
    /// saturating subtraction): the delta between two cumulative
    /// snapshots of the same histogram. `max_ns` is kept from `self` —
    /// a maximum is not delta-able, so the delta's max is an upper bound
    /// (exact whenever the interval contains the all-time maximum).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        Histogram::from_parts(buckets, sum_ns, self.max_ns)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Maximum recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate value at percentile `p` in `[0, 100]` (bucket
    /// midpoint, ≈3% relative error), 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (p50).
    pub fn median_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for ns in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(ns);
            assert!(i >= prev, "bucket index must not decrease (ns={ns})");
            assert!(i < NUM_BUCKETS);
            prev = i;
        }
    }

    #[test]
    fn bucket_bounds_invert_index() {
        for ns in [0u64, 5, 31, 32, 100, 999, 4096, 1_000_000, 1 << 40] {
            let i = bucket_index(ns);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (lo..hi).contains(&ns),
                "ns={ns} not in bucket {i} = [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for ns in [10u64, 100, 1000, 10_000, 100_000] {
            for _ in 0..100 {
                h.record(ns);
            }
        }
        assert!(h.percentile_ns(10.0) <= h.percentile_ns(50.0));
        assert!(h.percentile_ns(50.0) <= h.percentile_ns(99.0));
        assert!(h.percentile_ns(99.0) <= h.max_ns());
    }

    #[test]
    fn median_within_three_percent() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(1000);
        }
        let m = h.median_ns() as f64;
        assert!((m - 1000.0).abs() / 1000.0 < 0.04, "median {m}");
    }

    #[test]
    fn resolves_small_latency_shifts() {
        // A 25% shift must be visible — the motivation for log-linear
        // buckets (power-of-two buckets collapse 1000 and 1250 together).
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..1000 {
            a.record(1000);
            b.record(1250);
        }
        let (ma, mb) = (a.median_ns() as f64, b.median_ns() as f64);
        assert!(mb / ma > 1.15, "25% shift collapsed: {ma} vs {mb}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.mean_ns() > 100.0);
        assert_eq!(a.max_ns(), 300);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(100.0) > 0);
    }

    #[test]
    fn exact_buckets_below_threshold() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(7);
        }
        assert_eq!(h.median_ns(), 7, "small values are exact");
    }

    #[test]
    fn diff_recovers_the_interval() {
        let mut early = Histogram::new();
        early.record(100);
        early.record(200);
        let mut late = early.clone();
        late.record(1000);
        late.record(1000);
        let delta = late.diff(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.median_ns(), late.percentile_ns(99.0));
        // Delta of a snapshot against itself is empty.
        assert_eq!(late.diff(&late).count(), 0);
    }
}
