//! Multithreaded scan coordination: master and piggybacking scans.
//!
//! "A master scan is a scan that starts when no other scan is concurrently
//! running. A piggybacking scan is a scan that starts while some other scan
//! is concurrently running. At any given time, only one master scan may be
//! running" (§4.4). The master drains the Membuffer and publishes a scan
//! sequence number; piggybacking scans reuse it, spreading the drain cost
//! over many scans. Chains of piggybacking scans are bounded so the reused
//! sequence number does not grow stale without bound.

use flodb_sync::lock_order::SCAN_COORDINATOR;
use flodb_sync::shim::{ranked_condvar, ranked_mutex, Condvar, Mutex};

/// The role a scan was admitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanRole {
    /// Must drain the Membuffer and establish a sequence number.
    Master,
    /// A master that reuses the previous master's still-fresh sequence
    /// number instead of draining again (§4.4's low-concurrency
    /// optimization: "avoid fully draining the Membuffer too often").
    MasterReuse(u64),
    /// Reuses the published sequence number of the running chain.
    Piggyback(u64),
}

#[derive(Debug, Default)]
struct ScanState {
    master_active: bool,
    /// Sequence number of the live chain, if one is published.
    published_seq: Option<u64>,
    /// Scans admitted into the current chain.
    chain_len: u32,
    /// Scans currently executing (any role).
    active: u32,
    /// Sequence number established by the most recent master, surviving
    /// the chain's death (for master-reuse).
    last_master_seq: Option<u64>,
    /// Masters that reused `last_master_seq` since it was established.
    reuse_count: u32,
}

/// Admission control for scans.
#[derive(Debug)]
pub struct ScanCoordinator {
    state: Mutex<ScanState>,
    cv: Condvar,
}

impl Default for ScanCoordinator {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanCoordinator {
    /// Creates an idle coordinator.
    pub fn new() -> Self {
        Self {
            state: ranked_mutex(SCAN_COORDINATOR, ScanState::default()),
            cv: ranked_condvar(SCAN_COORDINATOR),
        }
    }

    /// Admits a scan.
    ///
    /// With `linearizable == true` every scan becomes a fresh master
    /// (waiting for the running one to finish), which makes all scans
    /// linearizable with respect to updates at the cost of a drain per
    /// scan (§4.4). `master_reuse_limit > 0` lets up to that many
    /// consecutive masters reuse the previous master's sequence number
    /// instead of re-draining (the §4.4 low-concurrency optimization;
    /// such scans are serializable but not linearizable).
    pub fn enter(&self, chain_limit: u32, master_reuse_limit: u32, linearizable: bool) -> ScanRole {
        let mut st = self.state.lock();
        loop {
            if !linearizable {
                if let Some(seq) = st.published_seq {
                    if st.active > 0 && st.chain_len < chain_limit {
                        st.chain_len += 1;
                        st.active += 1;
                        return ScanRole::Piggyback(seq);
                    }
                }
            }
            if !st.master_active {
                st.master_active = true;
                st.chain_len = 0;
                st.active += 1;
                if !linearizable {
                    if let Some(seq) = st.last_master_seq {
                        if st.reuse_count < master_reuse_limit {
                            st.reuse_count += 1;
                            st.published_seq = Some(seq);
                            return ScanRole::MasterReuse(seq);
                        }
                    }
                }
                st.published_seq = None;
                return ScanRole::Master;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Publishes the master's established sequence number, releasing
    /// waiting piggybackers.
    pub fn publish(&self, seq: u64) {
        let mut st = self.state.lock();
        debug_assert!(st.master_active);
        st.published_seq = Some(seq);
        st.last_master_seq = Some(seq);
        st.reuse_count = 0;
        self.cv.notify_all();
    }

    /// Records a scan finishing under `role`.
    pub fn exit(&self, role: ScanRole) {
        let mut st = self.state.lock();
        st.active -= 1;
        if matches!(role, ScanRole::Master | ScanRole::MasterReuse(_)) {
            st.master_active = false;
        }
        if st.active == 0 {
            // The chain dies with its last member: a later scan must
            // re-establish freshness (master-reuse may still revive
            // `last_master_seq`, within its own limit).
            st.published_seq = None;
            st.chain_len = 0;
        }
        self.cv.notify_all();
    }

    /// Drops the reusable master sequence number (called when a reusing
    /// scan restarts, so the retry drains fresh state instead of spinning
    /// on a stale stamp).
    pub fn invalidate_reuse(&self) {
        let mut st = self.state.lock();
        st.last_master_seq = None;
    }

    /// Number of currently executing scans (diagnostics).
    #[cfg(test)]
    pub fn active_scans(&self) -> u32 {
        self.state.lock().active
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    #[test]
    fn first_scan_is_master() {
        let c = ScanCoordinator::new();
        let role = c.enter(8, 0, false);
        assert_eq!(role, ScanRole::Master);
        c.publish(5);
        c.exit(role);
        assert_eq!(c.active_scans(), 0);
    }

    #[test]
    fn second_scan_piggybacks_on_published_seq() {
        let c = ScanCoordinator::new();
        let master = c.enter(8, 0, false);
        c.publish(42);
        let second = c.enter(8, 0, false);
        assert_eq!(second, ScanRole::Piggyback(42));
        c.exit(second);
        c.exit(master);
    }

    #[test]
    fn chain_ends_when_all_scans_exit() {
        let c = ScanCoordinator::new();
        let master = c.enter(8, 0, false);
        c.publish(42);
        c.exit(master);
        // No active scan remains: the next scan must be a master.
        let next = c.enter(8, 0, false);
        assert_eq!(next, ScanRole::Master);
        c.exit(next);
    }

    #[test]
    fn chain_limit_forces_new_master() {
        let c = ScanCoordinator::new();
        let master = c.enter(1, 0, false);
        c.publish(7);
        let pig = c.enter(1, 0, false);
        assert_eq!(pig, ScanRole::Piggyback(7));
        // Chain limit reached: the next admission must wait for the master
        // slot; release the master so it can proceed as master.
        let c2 = Arc::new(c);
        let waiter = {
            let c2 = Arc::clone(&c2);
            thread::spawn(move || {
                let role = c2.enter(1, 0, false);
                assert_eq!(role, ScanRole::Master);
                c2.exit(role);
            })
        };
        thread::sleep(Duration::from_millis(30));
        c2.exit(master);
        waiter.join().unwrap();
        c2.exit(pig);
    }

    #[test]
    fn linearizable_mode_never_piggybacks() {
        let c = ScanCoordinator::new();
        let master = c.enter(8, 0, true);
        c.publish(3);
        // A linearizable scan must wait rather than piggyback.
        let c = Arc::new(c);
        let got_master = Arc::new(AtomicU32::new(0));
        let waiter = {
            let c = Arc::clone(&c);
            let got_master = Arc::clone(&got_master);
            thread::spawn(move || {
                let role = c.enter(8, 0, true);
                assert_eq!(role, ScanRole::Master);
                got_master.store(1, Ordering::SeqCst);
                c.exit(role);
            })
        };
        thread::sleep(Duration::from_millis(30));
        assert_eq!(got_master.load(Ordering::SeqCst), 0);
        c.exit(master);
        waiter.join().unwrap();
    }

    #[test]
    fn master_reuse_skips_drain_within_limit() {
        let c = ScanCoordinator::new();
        let m1 = c.enter(8, 2, false);
        assert_eq!(m1, ScanRole::Master);
        c.publish(10);
        c.exit(m1);
        // Chain died (no active scans), but reuse is allowed twice.
        assert_eq!(c.enter(8, 2, false), ScanRole::MasterReuse(10));
        c.exit(ScanRole::MasterReuse(10));
        assert_eq!(c.enter(8, 2, false), ScanRole::MasterReuse(10));
        c.exit(ScanRole::MasterReuse(10));
        // Limit exhausted: the next master drains fresh.
        let m2 = c.enter(8, 2, false);
        assert_eq!(m2, ScanRole::Master);
        c.publish(20);
        c.exit(m2);
        // A fresh publication resets the budget.
        assert_eq!(c.enter(8, 2, false), ScanRole::MasterReuse(20));
        c.exit(ScanRole::MasterReuse(20));
    }

    #[test]
    fn master_reuse_disabled_by_default_limit() {
        let c = ScanCoordinator::new();
        let m1 = c.enter(8, 0, false);
        c.publish(10);
        c.exit(m1);
        assert_eq!(c.enter(8, 0, false), ScanRole::Master);
    }

    #[test]
    fn invalidate_reuse_forces_fresh_master() {
        let c = ScanCoordinator::new();
        let m1 = c.enter(8, 4, false);
        c.publish(10);
        c.exit(m1);
        c.invalidate_reuse();
        assert_eq!(c.enter(8, 4, false), ScanRole::Master);
    }

    #[test]
    fn piggybackers_can_join_a_reuse_chain() {
        let c = ScanCoordinator::new();
        let m1 = c.enter(8, 1, false);
        c.publish(10);
        c.exit(m1);
        let reuse = c.enter(8, 1, false);
        assert_eq!(reuse, ScanRole::MasterReuse(10));
        // A reusing master republishes the seq, so piggybackers join it.
        assert_eq!(c.enter(8, 1, false), ScanRole::Piggyback(10));
        c.exit(ScanRole::Piggyback(10));
        c.exit(reuse);
    }

    #[test]
    fn piggybackers_wait_for_publication() {
        let c = Arc::new(ScanCoordinator::new());
        let master = c.enter(8, 0, false);
        let seqs = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&c);
            let seqs = Arc::clone(&seqs);
            handles.push(thread::spawn(move || {
                let role = c.enter(8, 0, false);
                if let ScanRole::Piggyback(seq) = role {
                    seqs.lock().push(seq);
                }
                c.exit(role);
            }));
        }
        thread::sleep(Duration::from_millis(20));
        c.publish(99);
        c.exit(master);
        for h in handles {
            h.join().unwrap();
        }
        // All concurrent scans piggybacked on seq 99 (or became masters
        // after the chain died; with the master held until publish, at
        // least one must have reused 99).
        assert!(seqs.lock().iter().all(|&s| s == 99));
    }
}
