//! The drain pipeline: moving entries Membuffer → Memtable.
//!
//! Draining (Figure 6) claims batches of marked entries from Membuffer
//! buckets, stamps them with fresh sequence numbers, inserts them into the
//! skiplist — with one multi-insert per batch, exploiting the partition
//! neighborhood (§4.3) — and finally removes them from the Membuffer,
//! skipping any entry that was concurrently updated in place.
//!
//! Reclamation note: nothing in this pipeline holds an epoch-protected
//! pointer across stages. [`DrainedEntry`] carries *owned clones* made
//! under the claiming pin, so the hand-off Membuffer → skiplist is
//! pointer-free; the retire of the removed `HtEntry` happens inside
//! [`MemBuffer::remove_drained`] under that call's own pin.

use flodb_membuffer::{DrainedEntry, MemBuffer, RemoveToken};
use flodb_memtable::{BatchEntry, SkipList};
use flodb_sync::SequenceGenerator;

use crate::view::{ImmMembuffer, ViewCell};

/// How a batch of drained entries is applied to the skiplist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainStyle {
    /// One multi-insert per batch (the paper's design).
    MultiInsert,
    /// One plain insert per entry (the Figure 17 ablation).
    SimpleInsert,
}

/// Applies `drained` to `mtb` with fresh sequence numbers, then removes
/// the moved entries from `mbf`. Returns the number of entries moved.
pub fn apply_batch(
    mbf: &MemBuffer,
    mtb: &SkipList,
    seq: &SequenceGenerator,
    drained: Vec<DrainedEntry>,
    style: DrainStyle,
) -> usize {
    if drained.is_empty() {
        return 0;
    }
    let n = drained.len();
    let first_seq = seq.next_block(n as u64);
    let mut tokens: Vec<RemoveToken> = Vec::with_capacity(n);
    match style {
        DrainStyle::MultiInsert => {
            let mut batch = Vec::with_capacity(n);
            for (i, d) in drained.into_iter().enumerate() {
                tokens.push(d.token);
                batch.push(BatchEntry {
                    key: d.key,
                    value: d.value,
                    seq: first_seq + i as u64,
                });
            }
            mtb.multi_insert(batch);
        }
        DrainStyle::SimpleInsert => {
            for (i, d) in drained.into_iter().enumerate() {
                mtb.insert(&d.key, d.value.as_deref(), first_seq + i as u64);
                tokens.push(d.token);
            }
        }
    }
    mbf.remove_drained(&tokens);
    n
}

/// Drains up to `max_entries` from `mbf`, sweeping the bucket range
/// `[range_start, range_start + range_len)` from relative position
/// `cursor` (wrapping within the range). Returns `(entries_moved,
/// next_cursor)`.
///
/// Sweeping buckets in order keeps each batch inside one partition most of
/// the time, which is what makes multi-insert path reuse effective.
///
/// Each background drainer must own a *disjoint* bucket range: two
/// drainers sharing a bucket could both have a claim of the same key in
/// flight (the first claims, a writer updates in place, the second claims
/// the fresh entry), and their Memtable inserts could then land in an
/// order that leaves the stale value stamped with the newer sequence
/// number — a lost update.
pub fn drain_sweep(
    mbf: &MemBuffer,
    mtb: &SkipList,
    seq: &SequenceGenerator,
    range_start: usize,
    range_len: usize,
    cursor: usize,
    max_entries: usize,
    style: DrainStyle,
) -> (usize, usize) {
    debug_assert!(range_start + range_len <= mbf.total_buckets());
    let len = range_len.max(1);
    let mut cursor = cursor % len;
    let mut moved = 0;
    let mut scanned = 0;
    let mut pending: Vec<DrainedEntry> = Vec::new();
    while scanned < len && moved + pending.len() < max_entries {
        pending.extend(mbf.claim_bucket(range_start + cursor));
        cursor = (cursor + 1) % len;
        scanned += 1;
        if pending.len() >= max_entries.min(64) {
            moved += apply_batch(mbf, mtb, seq, std::mem::take(&mut pending), style);
        }
    }
    moved += apply_batch(mbf, mtb, seq, pending, style);
    (moved, cursor)
}

/// Participates in the cooperative full drain of a frozen Membuffer
/// (master scans, helping writers and the WAL-retirement checkpoint,
/// Algorithm 2 lines 12-16), resolving the target Memtable *inside each
/// chunk's RCU read-side critical section* of `view`.
///
/// Claims chunks from the shared tracker until none remain; returns the
/// number of entries this participant moved.
///
/// The per-chunk view coupling is what makes the help race-safe against
/// the persist thread: resolving the Memtable once up front (an `Arc`
/// clone) and inserting outside any critical section would let a persist
/// switch land between the lookup and the insert — the batch would then
/// go into the *immutable* Memtable after its flush already collected
/// entries, and be dropped with it: acknowledged writes silently lost.
/// Inside the read-side section the switch's grace period waits for the
/// in-flight chunk instead, so every drained entry lands either in the
/// snapshot the flush collects or in the fresh Memtable — never in the
/// gap. A switch mid-drain simply routes later chunks to the new table.
pub fn help_drain_imm_via(
    imm: &ImmMembuffer,
    view: &ViewCell,
    seq: &SequenceGenerator,
    style: DrainStyle,
) -> usize {
    let mut moved = 0;
    // Mutation hook for the model-checker regression suite
    // (tests/model_mutation.rs): resolve the Memtable once, outside any
    // critical section — re-introducing the pre-PR-5 race this function's
    // docs describe, where a persist switch lands between lookup and
    // insert. Never set outside that suite.
    #[cfg(flodb_model_mutation)]
    let mtb = view.read(|v| std::sync::Arc::clone(&v.mtb));
    while let Some(chunk) = imm.tracker.claim() {
        let drained = imm.buffer.claim_bucket(chunk);
        #[cfg(flodb_model_mutation)]
        {
            moved += apply_batch(&imm.buffer, &mtb, seq, drained, style);
        }
        #[cfg(not(flodb_model_mutation))]
        {
            moved += view.read(|v| apply_batch(&imm.buffer, &v.mtb, seq, drained, style));
        }
        imm.tracker.finish();
    }
    moved
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use flodb_membuffer::MemBufferConfig;

    use super::*;

    fn small_mbf() -> MemBuffer {
        MemBuffer::new(MemBufferConfig {
            partition_bits: 2,
            buckets_per_partition: 32,
        })
    }

    #[test]
    fn sweep_moves_everything() {
        let mbf = small_mbf();
        let mtb = SkipList::new();
        let seq = SequenceGenerator::new();
        for i in 0..100u64 {
            mbf.add(&i.to_be_bytes(), Some(&i.to_le_bytes()));
        }
        let total = mbf.total_buckets();
        let (moved, _) =
            drain_sweep(&mbf, &mtb, &seq, 0, total, 0, usize::MAX, DrainStyle::MultiInsert);
        assert_eq!(moved, 100);
        assert_eq!(mbf.len(), 0);
        assert_eq!(mtb.len(), 100);
        // Sequence numbers were assigned.
        assert!(mtb.get(&5u64.to_be_bytes()).unwrap().seq >= 1);
    }

    #[test]
    fn sweep_respects_entry_budget() {
        let mbf = small_mbf();
        let mtb = SkipList::new();
        let seq = SequenceGenerator::new();
        for i in 0..100u64 {
            mbf.add(&i.to_be_bytes(), Some(b"v"));
        }
        let total = mbf.total_buckets();
        let (moved, cursor) =
            drain_sweep(&mbf, &mtb, &seq, 0, total, 0, 10, DrainStyle::MultiInsert);
        assert!(moved >= 10, "should move at least the budget");
        assert!(moved < 100, "budget must bound the sweep");
        assert_eq!(mbf.len(), 100 - moved);
        // Resuming from the cursor eventually drains the rest.
        let (rest, _) =
            drain_sweep(&mbf, &mtb, &seq, 0, total, cursor, usize::MAX, DrainStyle::MultiInsert);
        assert_eq!(moved + rest, 100);
    }

    #[test]
    fn simple_and_multi_styles_agree() {
        for style in [DrainStyle::MultiInsert, DrainStyle::SimpleInsert] {
            let mbf = small_mbf();
            let mtb = SkipList::new();
            let seq = SequenceGenerator::new();
            for i in 0..50u64 {
                mbf.add(&i.to_be_bytes(), Some(&i.to_le_bytes()));
            }
            let total = mbf.total_buckets();
            drain_sweep(&mbf, &mtb, &seq, 0, total, 0, usize::MAX, style);
            assert_eq!(mtb.len(), 50, "{style:?}");
            for i in 0..50u64 {
                let v = mtb.get(&i.to_be_bytes()).unwrap();
                assert_eq!(v.value.as_deref(), Some(i.to_le_bytes().as_slice()));
            }
        }
    }

    #[test]
    fn tombstones_drain_as_tombstones() {
        let mbf = small_mbf();
        let mtb = SkipList::new();
        let seq = SequenceGenerator::new();
        mbf.add(b"gone", None);
        drain_sweep(
            &mbf,
            &mtb,
            &seq,
            0,
            mbf.total_buckets(),
            0,
            usize::MAX,
            DrainStyle::MultiInsert,
        );
        assert!(mtb.get(b"gone").unwrap().is_tombstone());
    }

    #[test]
    fn cooperative_imm_drain_completes_with_helpers() {
        let mbf = Arc::new(small_mbf());
        // Small u64 keys all share their top bits, so they all land in
        // partition 0 (the paper's skew vulnerability, §4.3): only that
        // partition's capacity is usable. Count what was accepted.
        let mut accepted = 0;
        for i in 0..200u64 {
            if mbf.add(&i.to_be_bytes(), Some(b"v")) == flodb_membuffer::AddResult::Added {
                accepted += 1;
            }
        }
        assert!(accepted > 0);
        let imm = Arc::new(ImmMembuffer::new(Arc::clone(&mbf)));
        let mtb = Arc::new(SkipList::new());
        let view = Arc::new(ViewCell::new(crate::view::MemView {
            mbf: None,
            imm_mbf: Some(Arc::clone(&imm)),
            mtb: Arc::clone(&mtb),
            imm_mtb: None,
        }));
        let seq = Arc::new(SequenceGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let imm = Arc::clone(&imm);
            let view = Arc::clone(&view);
            let seq = Arc::clone(&seq);
            handles.push(std::thread::spawn(move || {
                help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert)
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, accepted);
        assert!(imm.tracker.is_complete());
        assert_eq!(mtb.len(), accepted);
        assert_eq!(mbf.len(), 0);
    }

    #[test]
    fn view_coupled_help_routes_late_chunks_to_a_switched_memtable() {
        // A persist switch mid-drain must not lose entries: chunks drained
        // before the switch land in the old table, chunks after in the new
        // one — and the two tables together hold everything.
        let mbf = Arc::new(small_mbf());
        let mut accepted = 0;
        for i in 0..100u64 {
            if mbf.add(&i.to_be_bytes(), Some(b"v")) == flodb_membuffer::AddResult::Added {
                accepted += 1;
            }
        }
        let imm = Arc::new(ImmMembuffer::new(Arc::clone(&mbf)));
        let old_mtb = Arc::new(SkipList::new());
        let view = ViewCell::new(crate::view::MemView {
            mbf: None,
            imm_mbf: Some(Arc::clone(&imm)),
            mtb: Arc::clone(&old_mtb),
            imm_mtb: None,
        });
        let seq = SequenceGenerator::new();
        // Drain a few chunks into the current table...
        let mut moved = 0;
        for _ in 0..3 {
            if let Some(chunk) = imm.tracker.claim() {
                let drained = imm.buffer.claim_bucket(chunk);
                moved += view.read(|v| {
                    apply_batch(&imm.buffer, &v.mtb, &seq, drained, DrainStyle::MultiInsert)
                });
                imm.tracker.finish();
            }
        }
        // ...then a persist-style switch...
        let new_mtb = Arc::new(SkipList::new());
        view.update(|old| crate::view::MemView {
            mtb: Arc::clone(&new_mtb),
            imm_mtb: Some(Arc::clone(&old.mtb)),
            ..old.clone()
        });
        // ...and the rest of the cooperative drain follows the view.
        moved += help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert);
        assert_eq!(moved, accepted);
        assert_eq!(old_mtb.len() + new_mtb.len(), accepted, "no entry lost");
    }
}
