//! The store-facing API shared by FloDB and every baseline (v2).
//!
//! The paper's §2.1 interface (put/get/delete/scan) is reproduced as the
//! [`KvStore`] trait, redesigned around three production realities:
//!
//! - **Fallibility.** `put`/`delete`/`write` return
//!   `Result<(), `[`WriteError`]`>`: a store with a commit log can fail to
//!   acknowledge a write, and the caller — not a panic inside the store —
//!   decides what to do about it. See [`WriteError`] for the poisoning
//!   contract.
//! - **Batches.** [`WriteBatch`] buffers several put/delete operations and
//!   [`KvStore::write`] commits them as one unit. On FloDB the whole batch
//!   is encoded into a single group-commit submission, so it lands in one
//!   WAL frame and crash recovery replays it all-or-nothing.
//! - **Streaming scans.** [`KvStore::scan_with`] visits entries in key
//!   order through a callback that can terminate early
//!   ([`ControlFlow::Break`]); [`KvStore::scan`] is the collecting
//!   convenience built on top of it.

use std::ops::ControlFlow;

pub use crate::error::WriteError;

/// One entry returned by a scan.
pub type ScanEntry = (Vec<u8>, Vec<u8>);

/// One buffered operation of a [`WriteBatch`].
#[derive(Debug, Clone)]
struct BatchOp {
    key: Box<[u8]>,
    /// `None` is a delete (tombstone insert).
    value: Option<Box<[u8]>>,
}

/// A reusable buffer of put/delete operations, committed atomically by
/// [`KvStore::write`].
///
/// Operations are applied in insertion order, so a later op on the same
/// key wins. The batch is plain data — building one touches no store —
/// and [`clear`](Self::clear) retains the op buffer's capacity, so a
/// loader can fill/commit/clear the same batch in a loop.
///
/// # Examples
///
/// ```
/// use flodb_core::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(b"user:1", b"alice");
/// batch.put(b"user:2", b"bob");
/// batch.delete(b"user:0");
/// assert_eq!(batch.len(), 3);
/// assert_eq!((batch.puts(), batch.deletes()), (2, 1));
/// batch.clear();
/// assert!(batch.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
    puts: u64,
    deletes: u64,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers an insert/overwrite of `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push(BatchOp {
            key: Box::from(key),
            value: Some(Box::from(value)),
        });
        self.puts += 1;
        self
    }

    /// Buffers a logical removal of `key` (tombstone insert).
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.ops.push(BatchOp {
            key: Box::from(key),
            value: None,
        });
        self.deletes += 1;
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffered put operations.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Buffered delete operations.
    pub fn deletes(&self) -> u64 {
        self.deletes
    }

    /// Empties the batch, retaining the op buffer's capacity for reuse.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.puts = 0;
        self.deletes = 0;
    }

    /// Iterates the buffered operations in insertion order; a `None`
    /// value is a delete.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.ops
            .iter()
            .map(|op| (op.key.as_ref(), op.value.as_deref()))
    }
}

/// Aggregate operation counters common to all stores, used by the
/// benchmark harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed put operations (batch puts included).
    pub puts: u64,
    /// Completed delete operations (batch deletes included).
    pub deletes: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed scan operations.
    pub scans: u64,
    /// Keys returned across all scans.
    pub scanned_keys: u64,
    /// Memtable flushes to disk.
    pub persists: u64,
    /// Writes absorbed directly by the fast memory level (FloDB's
    /// Membuffer; zero for single-level baselines).
    pub fast_level_writes: u64,
    /// Scan restarts caused by concurrent updates (FloDB only).
    pub scan_restarts: u64,
    /// Fallback (writer-blocking) scans (FloDB only).
    pub fallback_scans: u64,
    /// WAL commit groups written (FloDB only; zero with the WAL off).
    pub wal_groups: u64,
    /// Records across all WAL commit groups (FloDB only); divide by
    /// `wal_groups` for the mean records per group.
    pub wal_group_records: u64,
    /// Writes acknowledged as group-commit followers — their record rode
    /// in a group another thread committed (FloDB only). The leader split
    /// is `wal_groups`.
    pub wal_follower_writes: u64,
    /// WAL segment rotations — the active segment was sealed at a group
    /// boundary and a fresh generation opened (FloDB only).
    pub wal_rotations: u64,
    /// Total bytes of WAL segments retired after a persisted checkpoint
    /// covered their records (FloDB only).
    pub wal_retired_bytes: u64,
    /// Gauge: live WAL generations on disk — sealed awaiting retirement
    /// plus the active one (FloDB only; 0 with the WAL off).
    pub wal_generations: u64,
    /// Gauge: bytes in the active WAL segment, header included (FloDB
    /// only; 0 with the WAL off).
    pub wal_active_bytes: u64,
    /// Background I/O attempts retried after a transient failure, and
    /// WAL rotations deferred by a failed segment creation (FloDB only).
    pub io_retries: u64,
    /// Background I/O operations abandoned after exhausting their
    /// retries; flush/compaction abandonments also latch the store
    /// degraded — writes rejected, reads still served (FloDB only).
    pub io_degraded: u64,
    /// WAL retirement passes that failed to record the oldest-live mark
    /// or delete retired segment files, leaving the segments on disk as
    /// stale-but-harmless leftovers (FloDB only).
    pub wal_retire_errors: u64,
    /// Total nanoseconds writers spent stalled waiting for Memtable room
    /// (FloDB only; 0 below `TelemetryLevel::Counters` — the companion
    /// of `write_stalls`, sizing the stalls it counts).
    pub write_stall_ns: u64,
    /// Total nanoseconds spent in WAL fsync inside committed groups
    /// (FloDB only; 0 below `TelemetryLevel::Counters` or with
    /// `sync: false`).
    pub wal_sync_ns: u64,
}

/// The uniform key-value store interface (§2.1 of the paper, v2 surface).
///
/// All five systems in this repository — FloDB and the LevelDB,
/// HyperLevelDB, RocksDB and RocksDB/cLSM baselines — implement this trait
/// so workloads and benchmarks treat them interchangeably.
///
/// # Fallibility and poisoning
///
/// The write methods return `Err(`[`WriteError`]`)` when a write could not
/// be durably acknowledged; `Err` means the operation was **not** applied.
/// Stores without a commit log (the baselines, or FloDB with
/// `WalMode::Disabled`) never fail structurally and always return `Ok`.
/// After a WAL failure the store is *poisoned*: reads and scans keep
/// serving the acknowledged state, but every subsequent write is rejected
/// with [`WriteError::Poisoned`] carrying the original failure. Reopening
/// the store recovers the acknowledged prefix from the log.
pub trait KvStore: Send + Sync {
    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// [`WriteError`] if the commit log rejected the write; the write was
    /// not applied.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError>;

    /// Logically removes `key` (tombstone insert).
    ///
    /// # Errors
    ///
    /// [`WriteError`] if the commit log rejected the write; the delete was
    /// not applied.
    fn delete(&self, key: &[u8]) -> Result<(), WriteError>;

    /// Commits every operation in `batch` as one unit.
    ///
    /// Crash atomicity: on stores with a commit log, the whole batch is
    /// logged as a single frame, so recovery replays it all-or-nothing —
    /// a crash can never resurrect half a batch. Visibility is *not*
    /// transactional: a concurrent reader may observe a prefix of the
    /// batch while it is being applied to the memory component.
    ///
    /// The default implementation applies the operations one by one (no
    /// crash atomicity); every real store in this repository overrides it
    /// to apply the batch under its write serialization.
    ///
    /// # Errors
    ///
    /// [`WriteError`] if the commit log rejected the batch; none of its
    /// operations were applied.
    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        for (key, value) in batch.iter() {
            match value {
                Some(value) => self.put(key, value)?,
                None => self.delete(key)?,
            }
        }
        Ok(())
    }

    /// Returns the current value of `key`, or `None` if absent or deleted.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Streams all live entries with `low <= key <= high`, in key order,
    /// into `visitor`; returning [`ControlFlow::Break`] stops the scan.
    ///
    /// Scans are serializable: the visited sequence is a consistent
    /// snapshot of the store at some point between invocation and return
    /// (point-in-time semantics, §2.1). Implementations with optimistic
    /// concurrency (FloDB's restart protocol) may defer emission until an
    /// attempt validates; multi-versioned stores stream straight off the
    /// merge, so an early `Break` also prunes the remaining merge work.
    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    );

    /// Returns all live entries with `low <= key <= high`, in key order —
    /// the collecting convenience over [`scan_with`](Self::scan_with).
    fn scan(&self, low: &[u8], high: &[u8]) -> Vec<ScanEntry> {
        let mut out = Vec::new();
        self.scan_with(low, high, &mut |key, value| {
            out.push((key.to_vec(), value.to_vec()));
            ControlFlow::Continue(())
        });
        out
    }

    /// Human-readable system name (for benchmark tables).
    fn name(&self) -> &'static str;

    /// Operation counters; stores without instrumentation return defaults.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Blocks until queued background work (drains, flushes, compactions)
    /// has settled; used by tests and between benchmark phases.
    ///
    /// Epoch reclamation is settled on a best-effort basis: implementations
    /// pump the collector until its counters converge, but give up after a
    /// bounded wait (other threads — or other stores in the same process —
    /// holding guards can legitimately stall reclamation indefinitely).
    /// Callers needing exact convergence should re-invoke until the
    /// reclamation counters agree.
    fn quiesce(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;

    impl KvStore for Null {
        fn put(&self, _: &[u8], _: &[u8]) -> Result<(), WriteError> {
            Ok(())
        }
        fn delete(&self, _: &[u8]) -> Result<(), WriteError> {
            Ok(())
        }
        fn get(&self, _: &[u8]) -> Option<Vec<u8>> {
            None
        }
        fn scan_with(
            &self,
            _: &[u8],
            _: &[u8],
            _: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
        ) {
        }
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn default_trait_methods() {
        let s = Null;
        assert_eq!(s.stats(), StoreStats::default());
        s.quiesce();
        assert_eq!(s.name(), "null");
        assert!(s.scan(b"a", b"z").is_empty());
        // The default batch write routes through put/delete.
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v").delete(b"k");
        s.write(&batch).unwrap();
    }

    #[test]
    fn write_batch_builder_and_reuse() {
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.delete(b"b");
        batch.put(b"a", b"2");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.puts(), 2);
        assert_eq!(batch.deletes(), 1);
        let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = batch
            .iter()
            .map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec)))
            .collect();
        assert_eq!(
            ops,
            vec![
                (b"a".to_vec(), Some(b"1".to_vec())),
                (b"b".to_vec(), None),
                (b"a".to_vec(), Some(b"2".to_vec())),
            ]
        );
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!((batch.puts(), batch.deletes()), (0, 0));
    }

    /// A tiny sorted store to exercise the provided `scan` + early break.
    struct Sorted(Vec<(Vec<u8>, Vec<u8>)>);

    impl KvStore for Sorted {
        fn put(&self, _: &[u8], _: &[u8]) -> Result<(), WriteError> {
            Ok(())
        }
        fn delete(&self, _: &[u8]) -> Result<(), WriteError> {
            Ok(())
        }
        fn get(&self, _: &[u8]) -> Option<Vec<u8>> {
            None
        }
        fn scan_with(
            &self,
            low: &[u8],
            high: &[u8],
            visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
        ) {
            for (k, v) in &self.0 {
                if k.as_slice() >= low
                    && k.as_slice() <= high
                    && visitor(k, v).is_break()
                {
                    return;
                }
            }
        }
        fn name(&self) -> &'static str {
            "sorted"
        }
    }

    #[test]
    fn provided_scan_collects_and_break_terminates() {
        let store = Sorted(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
            (b"c".to_vec(), b"3".to_vec()),
        ]);
        assert_eq!(store.scan(b"a", b"c").len(), 3);
        let mut seen = 0;
        store.scan_with(b"a", b"c", &mut |_, _| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 2, "Break must stop the scan");
    }
}
