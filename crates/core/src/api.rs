//! The store-facing API shared by FloDB and every baseline.

use std::sync::Arc;

use flodb_storage::StorageError;

/// One entry returned by a scan.
pub type ScanEntry = (Vec<u8>, Vec<u8>);

/// Why a write could not be durably acknowledged.
///
/// Produced by [`crate::FloDb::try_put`] / [`crate::FloDb::try_delete`]
/// when the write-ahead log is enabled and its append (or fsync) fails.
/// The error is shared: every member of a failed commit group receives the
/// same underlying [`StorageError`], and none of the group's writes are
/// acknowledged or applied to the memory component.
#[derive(Debug, Clone)]
pub enum WriteError {
    /// This write's log append failed. The store is now *poisoned*: reads
    /// and scans keep working, but subsequent writes are rejected with
    /// [`WriteError::Poisoned`] — after a lost append, later writes could
    /// otherwise be acknowledged yet replay without their predecessors.
    Wal(Arc<StorageError>),
    /// An earlier log failure poisoned the store (the original failure is
    /// attached); this write was rejected without touching the log.
    Poisoned(Arc<StorageError>),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wal(e) => write!(f, "write-ahead log append failed: {e}"),
            Self::Poisoned(e) => {
                write!(f, "store poisoned by an earlier WAL failure: {e}")
            }
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wal(e) | Self::Poisoned(e) => Some(e.as_ref()),
        }
    }
}

/// Aggregate operation counters common to all stores, used by the
/// benchmark harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed put operations.
    pub puts: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed scan operations.
    pub scans: u64,
    /// Keys returned across all scans.
    pub scanned_keys: u64,
    /// Memtable flushes to disk.
    pub persists: u64,
    /// Writes absorbed directly by the fast memory level (FloDB's
    /// Membuffer; zero for single-level baselines).
    pub fast_level_writes: u64,
    /// Scan restarts caused by concurrent updates (FloDB only).
    pub scan_restarts: u64,
    /// Fallback (writer-blocking) scans (FloDB only).
    pub fallback_scans: u64,
    /// WAL commit groups written (FloDB only; zero with the WAL off).
    pub wal_groups: u64,
    /// Records across all WAL commit groups (FloDB only); divide by
    /// `wal_groups` for the mean records per group.
    pub wal_group_records: u64,
}

/// The uniform key-value store interface (§2.1 of the paper).
///
/// All five systems in this repository — FloDB and the LevelDB,
/// HyperLevelDB, RocksDB and RocksDB/cLSM baselines — implement this trait
/// so workloads and benchmarks treat them interchangeably.
pub trait KvStore: Send + Sync {
    /// Inserts or overwrites `key`.
    fn put(&self, key: &[u8], value: &[u8]);

    /// Logically removes `key` (tombstone insert).
    fn delete(&self, key: &[u8]);

    /// Returns the current value of `key`, or `None` if absent or deleted.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Returns all live entries with `low <= key <= high`, in key order.
    ///
    /// Scans are serializable: the result is a consistent snapshot of the
    /// store at some point between invocation and return (point-in-time
    /// semantics, §2.1).
    fn scan(&self, low: &[u8], high: &[u8]) -> Vec<ScanEntry>;

    /// Human-readable system name (for benchmark tables).
    fn name(&self) -> &'static str;

    /// Operation counters; stores without instrumentation return defaults.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Blocks until queued background work (drains, flushes, compactions)
    /// has settled; used by tests and between benchmark phases.
    ///
    /// Epoch reclamation is settled on a best-effort basis: implementations
    /// pump the collector until its counters converge, but give up after a
    /// bounded wait (other threads — or other stores in the same process —
    /// holding guards can legitimately stall reclamation indefinitely).
    /// Callers needing exact convergence should re-invoke until the
    /// reclamation counters agree.
    fn quiesce(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;

    impl KvStore for Null {
        fn put(&self, _: &[u8], _: &[u8]) {}
        fn delete(&self, _: &[u8]) {}
        fn get(&self, _: &[u8]) -> Option<Vec<u8>> {
            None
        }
        fn scan(&self, _: &[u8], _: &[u8]) -> Vec<ScanEntry> {
            Vec::new()
        }
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn default_trait_methods() {
        let s = Null;
        assert_eq!(s.stats(), StoreStats::default());
        s.quiesce();
        assert_eq!(s.name(), "null");
    }
}
