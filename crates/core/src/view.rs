//! The RCU-protected view of the memory components.
//!
//! FloDB switches memory components — installing a fresh Membuffer before
//! a scan drain, or a fresh Memtable before persisting — "using RCU, which
//! never blocks any updates or reads" (§4.2). [`ViewCell`] realizes that: a
//! single atomic pointer to an immutable [`MemView`] snapshot; readers and
//! writers dereference it inside an RCU read-side critical section, and
//! switchers install a new snapshot then wait one grace period, which
//! doubles as the paper's `MemBufferRCUWait`/`MemTableRCUWait` (all
//! in-flight operations against the old snapshot have completed when
//! `update` returns).

use flodb_membuffer::{DrainTracker, MemBuffer};
use flodb_memtable::SkipList;
use flodb_sync::shim::atomic::{AtomicBool, AtomicPtr, Ordering};
use flodb_sync::lock_order::CORE_VIEW_SWITCH;
use flodb_sync::shim::{ranked_mutex, Arc, Mutex};
use flodb_sync::RcuDomain;

/// An immutable Membuffer being fully drained before a scan, plus the
/// work-sharing tracker used by the master scanner and helping writers.
#[derive(Debug)]
pub struct ImmMembuffer {
    /// The frozen buffer.
    pub buffer: Arc<MemBuffer>,
    /// Chunk tracker shared by all draining participants.
    pub tracker: DrainTracker,
    /// Set by the freezer once the freeze's grace period has elapsed —
    /// i.e. every in-flight write against the frozen buffer has landed.
    ///
    /// The frozen view (this struct included) is published *before* the
    /// grace period runs, so paused writers can see it while stragglers
    /// are still adding to the frozen buffer. A helper claiming buckets
    /// in that window would miss a straggler's entry landing in an
    /// already-claimed bucket — the entry would then be dropped with the
    /// buffer: a lost acknowledged write. Helpers must hold off until
    /// [`Self::drain_ready`].
    ready: AtomicBool,
}

impl ImmMembuffer {
    /// Freezes `buffer` for draining (not yet claimable, see
    /// [`Self::open_for_drain`]).
    pub fn new(buffer: Arc<MemBuffer>) -> Self {
        let tracker = buffer.drain_tracker();
        Self {
            buffer,
            tracker,
            ready: AtomicBool::new(false),
        }
    }

    /// Declares the freeze's grace period over: bucket claims may begin.
    pub fn open_for_drain(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// Whether draining may begin (the grace period has elapsed).
    pub fn drain_ready(&self) -> bool {
        // Mutation hook for the model-checker regression suite
        // (tests/model_mutation.rs): pretend the gate is always open,
        // re-introducing the pre-PR-5 lost-acked-write race where helpers
        // claim buckets while straggler writes are still landing. Never
        // set outside that suite.
        #[cfg(flodb_model_mutation)]
        {
            return true;
        }
        #[cfg(not(flodb_model_mutation))]
        self.ready.load(Ordering::Acquire)
    }
}

/// One immutable snapshot of the four memory components
/// (MBF, IMM_MBF, MTB, IMM_MTB in Algorithm 2's notation).
#[derive(Debug, Clone)]
pub struct MemView {
    /// The mutable Membuffer absorbing writes.
    pub mbf: Option<Arc<MemBuffer>>,
    /// A Membuffer frozen by a master scan, while its drain is incomplete.
    pub imm_mbf: Option<Arc<ImmMembuffer>>,
    /// The mutable Memtable.
    pub mtb: Arc<SkipList>,
    /// A Memtable frozen for persisting, until its flush completes.
    pub imm_mtb: Option<Arc<SkipList>>,
}

/// The RCU cell holding the current [`MemView`].
pub struct ViewCell {
    ptr: AtomicPtr<MemView>,
    domain: RcuDomain,
    /// Serializes view switches (persist thread vs. master scans); user
    /// operations never take this lock.
    switch_lock: Mutex<()>,
}

impl ViewCell {
    /// Creates a cell holding `view`.
    pub fn new(view: MemView) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(view))),
            domain: RcuDomain::new(),
            switch_lock: ranked_mutex(CORE_VIEW_SWITCH, ()),
        }
    }

    /// Runs `f` against the current view inside an RCU critical section.
    ///
    /// The entire operation (e.g. a Membuffer add or Memtable insert) runs
    /// inside the section, so a concurrent [`ViewCell::update`] returns
    /// only after `f` has finished — the property Algorithm 3 needs before
    /// draining.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&MemView) -> R) -> R {
        let _guard = self.domain.read_lock();
        // SAFETY: The pointer is only replaced by `update`, which frees the
        // old view strictly after a grace period; we are inside a read-side
        // critical section, so the view is live.
        let view = unsafe { &*self.ptr.load(Ordering::Acquire) };
        f(view)
    }

    /// Returns a clone of the current view (Arc bumps only).
    ///
    /// Long-running operations (scans, persist) snapshot the view and then
    /// leave the critical section, so they never delay grace periods.
    pub fn snapshot(&self) -> MemView {
        self.read(MemView::clone)
    }

    /// Atomically replaces the view with `make(current)` and waits one
    /// grace period.
    ///
    /// On return, every operation that might have observed the old view
    /// has completed: pending Membuffer adds are in the frozen buffer,
    /// pending Memtable inserts are in the frozen table. Switches are
    /// serialized among themselves but never block readers or writers.
    pub fn update(&self, make: impl FnOnce(&MemView) -> MemView) {
        let _switch = self.switch_lock.lock();
        let old_ptr = self.ptr.load(Ordering::Acquire);
        // SAFETY: Only `update` (serialized by `switch_lock`) replaces the
        // pointer, and frees strictly after a grace period.
        let old = unsafe { &*old_ptr };
        let new = Box::into_raw(Box::new(make(old)));
        self.ptr.store(new, Ordering::Release);
        self.domain.synchronize();
        // SAFETY: The grace period has elapsed: no reader can still hold a
        // reference into the old view box.
        drop(unsafe { Box::from_raw(old_ptr) });
    }
}

impl Drop for ViewCell {
    fn drop(&mut self) {
        // SAFETY: Exclusive access; no readers can exist.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

impl std::fmt::Debug for ViewCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::thread;

    use flodb_membuffer::MemBufferConfig;

    use super::*;

    fn view() -> MemView {
        MemView {
            mbf: Some(Arc::new(MemBuffer::new(MemBufferConfig {
                partition_bits: 2,
                buckets_per_partition: 8,
            }))),
            imm_mbf: None,
            mtb: Arc::new(SkipList::new()),
            imm_mtb: None,
        }
    }

    #[test]
    fn read_sees_current_view() {
        let cell = ViewCell::new(view());
        cell.read(|v| {
            assert!(v.imm_mbf.is_none());
            assert!(v.mtb.is_empty());
        });
    }

    #[test]
    fn update_replaces_view() {
        let cell = ViewCell::new(view());
        let new_mtb = Arc::new(SkipList::new());
        new_mtb.insert(b"k", Some(b"v"), 1);
        cell.update(|old| MemView {
            mtb: Arc::clone(&new_mtb),
            imm_mtb: Some(Arc::clone(&old.mtb)),
            ..old.clone()
        });
        cell.read(|v| {
            assert_eq!(v.mtb.len(), 1);
            assert!(v.imm_mtb.is_some());
        });
    }

    #[test]
    fn update_waits_for_inflight_readers() {
        let cell = Arc::new(ViewCell::new(view()));
        let in_read = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));

        let reader = {
            let cell = Arc::clone(&cell);
            let in_read = Arc::clone(&in_read);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                cell.read(|v| {
                    let mtb = Arc::clone(&v.mtb);
                    in_read.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        thread::yield_now();
                    }
                    // The old view must still be alive here.
                    mtb.insert(b"late", Some(b"w"), 42);
                });
            })
        };
        while !in_read.load(Ordering::SeqCst) {
            thread::yield_now();
        }

        let updater = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.update(|old| MemView {
                    imm_mtb: Some(Arc::clone(&old.mtb)),
                    mtb: Arc::new(SkipList::new()),
                    ..old.clone()
                });
            })
        };
        thread::sleep(std::time::Duration::from_millis(50));
        assert!(!updater.is_finished(), "update returned during a read");
        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        updater.join().unwrap();
        // The reader's insert landed in the now-immutable table.
        cell.read(|v| {
            assert_eq!(v.imm_mtb.as_ref().unwrap().len(), 1);
            assert!(v.mtb.is_empty());
        });
    }

    #[test]
    fn snapshot_outlives_switch() {
        let cell = ViewCell::new(view());
        let snap = cell.snapshot();
        cell.update(|old| MemView {
            mtb: Arc::new(SkipList::new()),
            ..old.clone()
        });
        // The snapshot still references the pre-switch memtable.
        snap.mtb.insert(b"z", Some(b"1"), 1);
        assert_eq!(snap.mtb.len(), 1);
    }

    #[test]
    fn concurrent_reads_and_updates_are_safe() {
        let cell = Arc::new(ViewCell::new(view()));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cell.read(|v| {
                        assert!(v.mbf.is_some());
                        n += v.mtb.len() as u64;
                    });
                }
                n
            }));
        }
        for _ in 0..200 {
            cell.update(|old| old.clone());
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
