//! Typed errors for the v2 store API.
//!
//! Every fallible public operation reports a structured, matchable error:
//! [`WriteError`] for the write path (log append failures and the poison
//! latch), [`OptionsError`] for configuration validation, [`OpenError`]
//! for store construction and recovery, and the umbrella [`Error`] that
//! unifies them for callers who funnel everything through one type (e.g.
//! `fn main() -> Result<(), flodb::Error>`).

use std::sync::Arc;

use flodb_storage::StorageError;

/// Why a write could not be durably acknowledged.
///
/// Produced by [`crate::KvStore::put`] / [`crate::KvStore::delete`] /
/// [`crate::KvStore::write`] when the write-ahead log is enabled and its
/// append (or fsync) fails. The error is shared: every member of a failed
/// commit group receives the same underlying [`StorageError`], and none of
/// the group's writes are acknowledged or applied to the memory component.
#[derive(Debug, Clone)]
pub enum WriteError {
    /// This write's log append failed. The store is now *poisoned*: reads
    /// and scans keep working, but subsequent writes are rejected with
    /// [`WriteError::Poisoned`] — after a lost append, later writes could
    /// otherwise be acknowledged yet replay without their predecessors.
    Wal(Arc<StorageError>),
    /// An earlier failure latched the store closed to writes (the
    /// original failure is attached); this write was rejected without
    /// touching the log. Two latches produce this: the WAL *poison*
    /// latch (a lost append) and the *degraded* health latch (a
    /// background flush or compaction that kept failing through its
    /// bounded retries — accepting writes would then grow memory without
    /// bound). Either way reads keep serving everything acknowledged,
    /// and a reopen recovers the acknowledged prefix from the log — the
    /// defined path back to health (ARCHITECTURE.md "Failure model").
    Poisoned(Arc<StorageError>),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wal(e) => write!(f, "write-ahead log append failed: {e}"),
            Self::Poisoned(e) => {
                write!(f, "store closed to writes by an earlier failure: {e}")
            }
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wal(e) | Self::Poisoned(e) => Some(e.as_ref()),
        }
    }
}

/// A structured reason a [`crate::FloDbOptions`] value is inconsistent.
///
/// Returned by [`crate::FloDbOptions::validate`] (and therefore by
/// [`crate::FloDb::open`], wrapped in [`OpenError::Options`]). Each
/// variant carries the offending value so callers can report or repair
/// the configuration programmatically.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionsError {
    /// `membuffer_fraction` must lie in `[0, 1)` (the Memtable needs a
    /// non-empty share of the memory budget).
    MembufferFraction {
        /// The rejected fraction.
        got: f64,
    },
    /// `partition_bits` exceeds the supported maximum of 16.
    PartitionBits {
        /// The rejected bit count.
        got: u32,
    },
    /// The Membuffer is enabled but `drain_threads` is zero — nothing
    /// would ever move entries into the Memtable.
    NoDrainThreads,
    /// `memory_bytes` is below the 64 KiB minimum.
    MemoryBytes {
        /// The rejected byte budget.
        got: usize,
    },
    /// `wal_group_max_bytes` is zero, which would stall every commit
    /// group behind the backpressure gate.
    ZeroWalGroupBytes,
    /// `wal_segment_max_bytes` is zero, which would seal a fresh segment
    /// after every single commit group.
    ZeroWalSegmentBytes,
    /// A sharded store was configured with zero shards — there would be
    /// nowhere to route any key.
    ZeroShards,
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MembufferFraction { got } => {
                write!(f, "membuffer_fraction must be in [0, 1), got {got}")
            }
            Self::PartitionBits { got } => {
                write!(f, "partition_bits must be <= 16, got {got}")
            }
            Self::NoDrainThreads => {
                write!(f, "drain_threads must be >= 1 when the Membuffer is enabled")
            }
            Self::MemoryBytes { got } => {
                write!(f, "memory_bytes must be at least 64 KiB, got {got}")
            }
            Self::ZeroWalGroupBytes => write!(f, "wal_group_max_bytes must be positive"),
            Self::ZeroWalSegmentBytes => {
                write!(f, "wal_segment_max_bytes must be positive")
            }
            Self::ZeroShards => write!(f, "shards must be >= 1"),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Why [`crate::FloDb::open`] failed.
#[derive(Debug)]
pub enum OpenError {
    /// The options failed validation before anything was touched.
    Options(OptionsError),
    /// The storage layer failed: manifest recovery, log replay, the
    /// recovery flush, log pruning, or creating the fresh log file.
    Storage(StorageError),
    /// A background thread (drain or persist) could not be spawned.
    Spawn(std::io::Error),
    /// The store root's sticky sharding record disagrees with the
    /// requested shard layout. The count and hash seed decide which shard
    /// owns each key, so silently honoring the new layout would route
    /// reads away from the shards holding their data; reopen with the
    /// on-disk layout instead.
    ShardMismatch {
        /// The layout recorded on disk: `(shards, hash_seed)`.
        on_disk: (u32, u64),
        /// The layout this open requested: `(shards, hash_seed)`.
        requested: (u32, u64),
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Options(e) => write!(f, "invalid options: {e}"),
            Self::Storage(e) => write!(f, "storage failure during open: {e}"),
            Self::Spawn(e) => write!(f, "failed to spawn background thread: {e}"),
            Self::ShardMismatch { on_disk, requested } => write!(
                f,
                "store was created with {} shards (hash seed {:#x}) but this \
                 open requested {} shards (hash seed {:#x}); the sharding \
                 layout is sticky",
                on_disk.0, on_disk.1, requested.0, requested.1
            ),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Options(e) => Some(e),
            Self::Storage(e) => Some(e),
            Self::Spawn(e) => Some(e),
            Self::ShardMismatch { .. } => None,
        }
    }
}

impl From<OptionsError> for OpenError {
    fn from(e: OptionsError) -> Self {
        Self::Options(e)
    }
}

impl From<StorageError> for OpenError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// The unified FloDB error: everything a store can report, one type.
///
/// [`crate::FloDb::open`] returns [`OpenError`] and the write path returns
/// [`WriteError`]; both convert into `Error` with `?`, so applications can
/// thread a single error type end to end:
///
/// ```
/// use flodb_core::{Error, FloDb, FloDbOptions, KvStore};
///
/// fn run() -> Result<(), Error> {
///     let db = FloDb::open(FloDbOptions::small_for_tests())?;
///     db.put(b"k", b"v")?;
///     Ok(())
/// }
/// run().unwrap();
/// ```
#[derive(Debug)]
pub enum Error {
    /// Opening (or recovering) the store failed.
    Open(OpenError),
    /// A write was rejected; see [`WriteError`] for the poisoning
    /// contract.
    Write(WriteError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Open(e) => write!(f, "{e}"),
            Self::Write(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Open(e) => Some(e),
            Self::Write(e) => Some(e),
        }
    }
}

impl From<OpenError> for Error {
    fn from(e: OpenError) -> Self {
        Self::Open(e)
    }
}

impl From<WriteError> for Error {
    fn from(e: WriteError) -> Self {
        Self::Write(e)
    }
}

impl From<OptionsError> for Error {
    fn from(e: OptionsError) -> Self {
        Self::Open(OpenError::Options(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chains() {
        let io = StorageError::Io(std::io::Error::other("disk on fire"));
        let write = WriteError::Wal(Arc::new(io));
        assert!(write.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&write).is_some());

        let open = OpenError::Options(OptionsError::NoDrainThreads);
        assert!(open.to_string().contains("drain_threads"));

        let unified: Error = open.into();
        assert!(matches!(unified, Error::Open(OpenError::Options(_))));
        assert!(unified.to_string().contains("drain_threads"));

        let unified: Error = WriteError::Poisoned(Arc::new(StorageError::Io(
            std::io::Error::other("x"),
        )))
        .into();
        assert!(matches!(unified, Error::Write(WriteError::Poisoned(_))));
    }

    #[test]
    fn shard_mismatch_is_typed_and_displayable() {
        let e = OpenError::ShardMismatch {
            on_disk: (4, 0x5eed),
            requested: (7, 0x5eed),
        };
        assert!(e.to_string().contains("4 shards"));
        assert!(e.to_string().contains("7 shards"));
        assert!(std::error::Error::source(&e).is_none());
        let unified: Error = e.into();
        assert!(matches!(
            unified,
            Error::Open(OpenError::ShardMismatch {
                on_disk: (4, _),
                requested: (7, _)
            })
        ));
        assert!(OptionsError::ZeroShards.to_string().contains("shards"));
    }

    #[test]
    fn options_error_is_matchable() {
        let e = OptionsError::MemoryBytes { got: 1 };
        match e {
            OptionsError::MemoryBytes { got } => assert_eq!(got, 1),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
