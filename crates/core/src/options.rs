//! Configuration for a FloDB instance.

use std::sync::Arc;

use flodb_storage::{DiskOptions, Env, MemEnv, ThrottleConfig};

use crate::error::OptionsError;
use crate::telemetry::TelemetryLevel;

/// Write-ahead-log durability mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMode {
    /// No commit log; a crash loses the memory component (the default for
    /// benchmarks, matching the paper's setup).
    Disabled,
    /// Append every update to the log before acknowledging.
    Enabled {
        /// Fsync each batch (durability over latency).
        sync: bool,
    },
}

/// Options controlling the FloDB memory component, background threads and
/// disk substrate.
#[derive(Clone)]
pub struct FloDbOptions {
    /// Total memory-component byte budget (Membuffer + Memtable). The
    /// paper's default is 128 MB (§5.1).
    pub memory_bytes: usize,
    /// Fraction of `memory_bytes` given to the Membuffer; the paper uses
    /// 1/4 (§5.1).
    pub membuffer_fraction: f64,
    /// Number of most-significant key bits selecting a Membuffer partition
    /// (`l`, §4.3).
    pub partition_bits: u32,
    /// Expected average entry footprint, used to size Membuffer buckets
    /// (paper workloads: 8 B keys + 256 B values).
    pub avg_entry_bytes: usize,
    /// Number of background draining threads (§4.2; at least 1 unless the
    /// Membuffer is disabled).
    pub drain_threads: usize,
    /// Entries a drainer accumulates before one multi-insert.
    pub drain_batch_entries: usize,
    /// Use skiplist multi-insert for draining; `false` falls back to
    /// simple inserts (the Figure 17 ablation).
    pub use_multi_insert: bool,
    /// Enable the Membuffer level; `false` degenerates to the classic
    /// single-level design ("No HT" in Figure 17).
    pub membuffer_enabled: bool,
    /// Scan restarts tolerated before the writer-blocking fallback
    /// (RESTART_THRESHOLD in Algorithm 3).
    pub scan_restart_threshold: u32,
    /// Maximum piggybacking-chain length before a scan must establish a
    /// fresh sequence number (§4.4).
    pub piggyback_chain_limit: u32,
    /// Consecutive master scans allowed to reuse the previous master's
    /// sequence number without re-draining the Membuffer (§4.4's
    /// low-concurrency optimization). `0` disables reuse: every master
    /// drains and is linearizable with respect to updates.
    pub master_reuse_limit: u32,
    /// Force every scan to establish a fresh sequence number (linearizable
    /// scans at the cost of a full drain per scan, §4.4 "Correctness").
    pub linearizable_scans: bool,
    /// Persist immutable Memtables to disk; `false` drops them instead,
    /// isolating memory-component throughput (the Figure 17 mode).
    pub persist_enabled: bool,
    /// Memtable byte size that triggers a persist.
    pub memtable_flush_trigger_fraction: f64,
    /// Commit-log mode.
    pub wal: WalMode,
    /// Commit the log through the leader/follower group-commit pipeline
    /// (one frame, one write, at most one fsync per *group*). `false`
    /// falls back to the pre-group-commit design — every put appends its
    /// own frame under a global mutex — kept as an ablation and as the
    /// bench baseline. Ignored when `wal` is [`WalMode::Disabled`].
    pub wal_group_commit: bool,
    /// Soft cap on the encoded bytes of one WAL commit group: writers that
    /// would grow the open group past this wait for the next group
    /// (backpressure). A single oversized record still commits alone.
    pub wal_group_max_bytes: usize,
    /// Extra time a group-commit leader lingers for its group to fill
    /// before committing. Zero (the default) adds no artificial latency:
    /// groups then form only from writers that arrived while the previous
    /// group was committing.
    pub wal_group_max_wait: std::time::Duration,
    /// Active WAL segment size (bytes, header included) that makes the
    /// group-commit leader roll to a fresh generation at the next group
    /// boundary. Sealed generations are retired (deleted) once a persisted
    /// checkpoint covers their records, so with the manifest enabled the
    /// on-disk log stays bounded by roughly one segment under indefinite
    /// write traffic, and recovery replays only the live generations.
    pub wal_segment_max_bytes: usize,
    /// How many yield iterations a group-commit follower spins on the
    /// committed counter before parking on a futex
    /// (`GroupCommitConfig::follower_spin`).
    ///
    /// The default of 64 was tuned on a 1-CPU container, where the yields
    /// are what hand the core back to the leader; on real multi-core
    /// hardware the budget should track the leader's commit latency
    /// instead — raise it (hundreds) for microsecond buffered appends,
    /// lower it toward 0 (park immediately) when commits fsync a slow
    /// device. The default constructors read the
    /// `FLODB_WAL_FOLLOWER_SPIN` environment variable so the retune needs
    /// no rebuild.
    pub wal_follower_spin: u32,
    /// Disk component tuning.
    pub disk: DiskOptions,
    /// Storage environment (simulated or real disk).
    pub env: Arc<dyn Env>,
    /// Run compactions on the persist thread after each flush.
    pub compact_after_flush: bool,
    /// How much the engine measures itself (see
    /// [`crate::telemetry::TelemetryLevel`]): `Off` reduces every
    /// telemetry site to a branch on a cached enum, `Counters` adds the
    /// flight recorder plus stall/fsync duration counters, `Full` adds
    /// per-op and per-stage latency histograms.
    pub telemetry: TelemetryLevel,
}

impl std::fmt::Debug for FloDbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloDbOptions")
            .field("memory_bytes", &self.memory_bytes)
            .field("membuffer_fraction", &self.membuffer_fraction)
            .field("partition_bits", &self.partition_bits)
            .field("drain_threads", &self.drain_threads)
            .field("use_multi_insert", &self.use_multi_insert)
            .field("membuffer_enabled", &self.membuffer_enabled)
            .field("persist_enabled", &self.persist_enabled)
            .finish_non_exhaustive()
    }
}

impl FloDbOptions {
    /// Paper-shaped defaults on an unthrottled in-memory disk: 128 MB
    /// memory component split 1/4 Membuffer, 3/4 Memtable.
    pub fn default_in_memory() -> Self {
        Self {
            memory_bytes: 128 * 1024 * 1024,
            membuffer_fraction: 0.25,
            partition_bits: 4,
            avg_entry_bytes: 280,
            drain_threads: 1,
            drain_batch_entries: 256,
            use_multi_insert: true,
            membuffer_enabled: true,
            scan_restart_threshold: 8,
            piggyback_chain_limit: 8,
            master_reuse_limit: 0,
            linearizable_scans: false,
            persist_enabled: true,
            memtable_flush_trigger_fraction: 1.0,
            wal: WalMode::Disabled,
            wal_group_commit: true,
            wal_group_max_bytes: 1024 * 1024,
            wal_group_max_wait: std::time::Duration::ZERO,
            wal_segment_max_bytes: 64 * 1024 * 1024,
            wal_follower_spin: follower_spin_from_env(),
            disk: DiskOptions::default(),
            env: Arc::new(MemEnv::new(None)),
            compact_after_flush: true,
            telemetry: TelemetryLevel::Counters,
        }
    }

    /// Same shape throttled like the paper's SSD (Figure 9's persistence
    /// bottleneck).
    pub fn paper_ssd() -> Self {
        Self {
            env: Arc::new(MemEnv::new(Some(ThrottleConfig::paper_ssd()))),
            ..Self::default_in_memory()
        }
    }

    /// A tiny configuration for unit and integration tests: small memory
    /// component, aggressive flushing, fast compaction.
    pub fn small_for_tests() -> Self {
        let mut disk = DiskOptions::default();
        disk.compaction.l0_trigger = 2;
        disk.compaction.base_level_bytes = 64 * 1024;
        disk.compaction.target_file_bytes = 32 * 1024;
        Self {
            memory_bytes: 256 * 1024,
            avg_entry_bytes: 64,
            // Big enough that short tests stay in one generation; rotation
            // tests shrink it explicitly.
            wal_segment_max_bytes: 256 * 1024,
            disk,
            ..Self::default_in_memory()
        }
    }

    /// Byte budget of the Membuffer level.
    pub fn membuffer_bytes(&self) -> usize {
        (self.memory_bytes as f64 * self.membuffer_fraction) as usize
    }

    /// Byte budget of the Memtable level.
    pub fn memtable_bytes(&self) -> usize {
        self.memory_bytes - self.membuffer_bytes()
    }

    /// Memtable size that triggers persisting.
    pub fn memtable_flush_trigger(&self) -> usize {
        (self.memtable_bytes() as f64 * self.memtable_flush_trigger_fraction) as usize
    }

    /// Validates option consistency, reporting the first violation as a
    /// structured, matchable [`OptionsError`].
    pub fn validate(&self) -> Result<(), OptionsError> {
        if !(0.0..1.0).contains(&self.membuffer_fraction) {
            return Err(OptionsError::MembufferFraction {
                got: self.membuffer_fraction,
            });
        }
        if self.partition_bits > 16 {
            return Err(OptionsError::PartitionBits {
                got: self.partition_bits,
            });
        }
        if self.membuffer_enabled && self.drain_threads == 0 {
            return Err(OptionsError::NoDrainThreads);
        }
        if self.memory_bytes < 64 * 1024 {
            return Err(OptionsError::MemoryBytes {
                got: self.memory_bytes,
            });
        }
        if self.wal_group_max_bytes == 0 {
            return Err(OptionsError::ZeroWalGroupBytes);
        }
        if self.wal_segment_max_bytes == 0 {
            return Err(OptionsError::ZeroWalSegmentBytes);
        }
        Ok(())
    }
}

/// Reads the `FLODB_WAL_FOLLOWER_SPIN` override (see
/// [`FloDbOptions::wal_follower_spin`]), falling back to the 1-CPU-tuned
/// default of 64.
fn follower_spin_from_env() -> u32 {
    std::env::var("FLODB_WAL_FOLLOWER_SPIN")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_split_is_quarter() {
        let o = FloDbOptions::default_in_memory();
        assert_eq!(o.membuffer_bytes(), 32 * 1024 * 1024);
        assert_eq!(o.memtable_bytes(), 96 * 1024 * 1024);
        o.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut o = FloDbOptions::small_for_tests();
        o.membuffer_fraction = 1.5;
        assert!(matches!(
            o.validate(),
            Err(OptionsError::MembufferFraction { got }) if got == 1.5
        ));

        let mut o = FloDbOptions::small_for_tests();
        o.drain_threads = 0;
        assert_eq!(o.validate(), Err(OptionsError::NoDrainThreads));

        let mut o = FloDbOptions::small_for_tests();
        o.membuffer_enabled = false;
        o.drain_threads = 0;
        assert!(o.validate().is_ok(), "no drainers needed without Membuffer");

        let mut o = FloDbOptions::small_for_tests();
        o.memory_bytes = 1;
        assert_eq!(o.validate(), Err(OptionsError::MemoryBytes { got: 1 }));

        let mut o = FloDbOptions::small_for_tests();
        o.wal_group_max_bytes = 0;
        assert_eq!(o.validate(), Err(OptionsError::ZeroWalGroupBytes));

        let mut o = FloDbOptions::small_for_tests();
        o.partition_bits = 17;
        assert_eq!(o.validate(), Err(OptionsError::PartitionBits { got: 17 }));

        let mut o = FloDbOptions::small_for_tests();
        o.wal_segment_max_bytes = 0;
        assert_eq!(o.validate(), Err(OptionsError::ZeroWalSegmentBytes));
    }
}
