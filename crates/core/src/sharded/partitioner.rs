//! The seeded stable hash that routes keys to shards.

/// Maps every key to one of `shards` partitions with a seeded FNV-1a
/// hash.
///
/// Three properties the sharded store depends on, all covered by the
/// equivalence proptest:
///
/// - **total** — every byte string maps to exactly one shard in
///   `0..shards`;
/// - **stable** — the mapping is a pure function of `(shards, seed, key)`,
///   so it survives reopen (both inputs are persisted in the store root's
///   sticky sharding record) and never depends on insertion order or any
///   runtime state;
/// - **deterministic across platforms** — hand-rolled FNV-1a over the key
///   bytes, no `std::hash` (whose `RandomState` is seeded per process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: u32,
    seed: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Partitioner {
    /// Creates a partitioner over `shards` partitions (must be >= 1,
    /// enforced by the router's options validation) hashing with `seed`.
    pub fn new(shards: u32, seed: u64) -> Self {
        debug_assert!(shards >= 1);
        Self { shards, seed }
    }

    /// The shard index owning `key`, in `0..self.shards()`.
    pub fn shard_of(&self, key: &[u8]) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        // Fold the seed in as a pre-key prefix so distinct seeds give
        // independent partitions of the same keyspace.
        let mut h = FNV_OFFSET ^ self.seed;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // FNV leaves its high bits poorly mixed (each input byte reaches
        // them only through carries), so run a splitmix64-style finalizer
        // before the multiply-shift range reduction, which consumes the
        // high bits.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (((u128::from(h) * u128::from(self.shards)) >> 64) as u64) as u32
    }

    /// Number of partitions.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_stable() {
        let p = Partitioner::new(7, 0x5eed);
        for i in 0..10_000u64 {
            let key = i.to_be_bytes();
            let s = p.shard_of(&key);
            assert!(s < 7);
            // Pure function: same inputs, same shard, every time.
            assert_eq!(s, Partitioner::new(7, 0x5eed).shard_of(&key));
        }
        assert_eq!(p.shard_of(b""), p.shard_of(b""), "empty key is routable");
    }

    #[test]
    fn spreads_keys_reasonably() {
        let p = Partitioner::new(4, 1);
        let mut counts = [0u32; 4];
        for i in 0..8_000u64 {
            counts[p.shard_of(&i.to_be_bytes()) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (1000..3000).contains(&c),
                "shard {shard} got {c} of 8000 uniform keys"
            );
        }
    }

    #[test]
    fn seed_changes_the_partition() {
        let a = Partitioner::new(4, 1);
        let b = Partitioner::new(4, 2);
        let moved = (0..1_000u64)
            .filter(|i| a.shard_of(&i.to_be_bytes()) != b.shard_of(&i.to_be_bytes()))
            .count();
        assert!(moved > 250, "only {moved}/1000 keys moved between seeds");
    }

    #[test]
    fn single_shard_short_circuits() {
        let p = Partitioner::new(1, 99);
        assert_eq!(p.shard_of(b"anything"), 0);
    }
}
