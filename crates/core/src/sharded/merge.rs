//! K-way merge of per-shard scan snapshots.
//!
//! Generalizes the 3-way cursor merge the LsmCore baseline uses for
//! memtable/immutable/disk: each shard contributes one sorted snapshot,
//! cursors advance over them, and the minimum head key is emitted next.
//! Hash partitioning makes keys unique across shards, so unlike the LSM
//! merge there is no freshest-sequence arbitration — at most one cursor
//! holds any given key.

use std::ops::ControlFlow;

use crate::api::ScanEntry;

/// Streams the merged union of `snapshots` (each sorted, mutually
/// disjoint) into `visitor` in global key order; `ControlFlow::Break`
/// stops the merge immediately, pruning both the remaining emission and
/// the cursor advancement over every shard. Returns the number of entries
/// emitted.
pub(crate) fn merge_snapshots(
    snapshots: &[Vec<ScanEntry>],
    visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
) -> u64 {
    let mut cursors = vec![0usize; snapshots.len()];
    let mut emitted = 0u64;
    loop {
        // Linear minimum over the N heads: N is the shard count (single
        // digits), where a scan through an array beats a binary heap.
        let mut min: Option<usize> = None;
        for (i, snapshot) in snapshots.iter().enumerate() {
            let Some(head) = snapshot.get(cursors[i]) else {
                continue;
            };
            match min {
                Some(m) if snapshots[m][cursors[m]].0 <= head.0 => {}
                _ => min = Some(i),
            }
        }
        let Some(m) = min else {
            return emitted; // Every cursor exhausted.
        };
        let (key, value) = &snapshots[m][cursors[m]];
        cursors[m] += 1;
        emitted += 1;
        if visitor(key, value).is_break() {
            return emitted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str) -> ScanEntry {
        (k.as_bytes().to_vec(), k.as_bytes().to_vec())
    }

    fn collect(snapshots: &[Vec<ScanEntry>]) -> Vec<String> {
        let mut out = Vec::new();
        merge_snapshots(snapshots, &mut |k, _| {
            out.push(String::from_utf8(k.to_vec()).unwrap());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn merges_in_global_key_order() {
        let snapshots = vec![
            vec![entry("b"), entry("e"), entry("h")],
            vec![entry("a"), entry("f")],
            vec![],
            vec![entry("c"), entry("d"), entry("g")],
        ];
        assert_eq!(collect(&snapshots), ["a", "b", "c", "d", "e", "f", "g", "h"]);
    }

    #[test]
    fn break_stops_mid_merge() {
        let snapshots = vec![vec![entry("a"), entry("c")], vec![entry("b"), entry("d")]];
        let mut seen = Vec::new();
        let emitted = merge_snapshots(&snapshots, &mut |k, _| {
            seen.push(k.to_vec());
            if k == b"b" {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(emitted, 2);
        assert_eq!(seen, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn empty_input_emits_nothing() {
        assert!(collect(&[]).is_empty());
        assert!(collect(&[vec![], vec![]]).is_empty());
    }
}
