//! Hash-partitioned sharding: N FloDB instances behind one [`KvStore`].
//!
//! The ROADMAP's multi-core story: a single FloDB instance serializes its
//! group commit behind one leader and one fsync stream; N instances give
//! N independent Membuffers, WALs, drain pipelines, and persist threads.
//! This module family is the router over them —
//!
//! - [`partitioner`] — the seeded stable key hash deciding shard
//!   ownership (total, insertion-order independent, persisted);
//! - [`router`] — [`ShardedFloDb`]: the full `KvStore` over the shard
//!   set, including [`WriteBatch`](crate::WriteBatch) splitting with
//!   annotated per-shard WAL frames;
//! - `merge` (private) — the k-way merge fanning per-shard scan
//!   snapshots into one ordered stream;
//! - `stats` (private) — per-shard stats summed into the router-level
//!   view.
//!
//! [`KvStore`]: crate::KvStore

pub mod partitioner;
mod merge;
pub mod router;
mod stats;

pub use partitioner::Partitioner;
pub use router::{ShardedFloDb, ShardedOptions, DEFAULT_HASH_SEED};
