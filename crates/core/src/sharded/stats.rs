//! Aggregation of per-shard [`StoreStats`] into one router-level view.

use crate::api::StoreStats;

/// Sums every counter (and gauge) across `per_shard`.
///
/// Counters add up to exactly the totals an unsharded store would report
/// for the same operations — the router itself counts nothing, each
/// operation is counted once by the shard that executed it, so
/// aggregation can never double-count. The two gauges
/// (`wal_generations`, `wal_active_bytes`) sum to fleet-wide totals:
/// "live WAL generations across all shards" is the quantity the
/// bounded-log invariant cares about. One router-level scan fans out to
/// every shard, so the aggregated `scans` counts shard-scans: expect
/// `shards ×` the logical scan count.
///
/// The destructuring is exhaustive on purpose: adding a field to
/// [`StoreStats`] without deciding how it aggregates fails compilation
/// here.
pub(crate) fn aggregate(per_shard: &[StoreStats]) -> StoreStats {
    let mut total = StoreStats::default();
    for s in per_shard {
        let StoreStats {
            puts,
            deletes,
            gets,
            scans,
            scanned_keys,
            persists,
            fast_level_writes,
            scan_restarts,
            fallback_scans,
            wal_groups,
            wal_group_records,
            wal_follower_writes,
            wal_rotations,
            wal_retired_bytes,
            wal_generations,
            wal_active_bytes,
            io_retries,
            io_degraded,
            wal_retire_errors,
            write_stall_ns,
            wal_sync_ns,
        } = s;
        total.puts += puts;
        total.deletes += deletes;
        total.gets += gets;
        total.scans += scans;
        total.scanned_keys += scanned_keys;
        total.persists += persists;
        total.fast_level_writes += fast_level_writes;
        total.scan_restarts += scan_restarts;
        total.fallback_scans += fallback_scans;
        total.wal_groups += wal_groups;
        total.wal_group_records += wal_group_records;
        total.wal_follower_writes += wal_follower_writes;
        total.wal_rotations += wal_rotations;
        total.wal_retired_bytes += wal_retired_bytes;
        total.wal_generations += wal_generations;
        total.wal_active_bytes += wal_active_bytes;
        total.io_retries += io_retries;
        total.io_degraded += io_degraded;
        total.wal_retire_errors += wal_retire_errors;
        total.write_stall_ns += write_stall_ns;
        total.wal_sync_ns += wal_sync_ns;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_every_field() {
        let a = StoreStats {
            puts: 1,
            deletes: 2,
            gets: 3,
            scans: 4,
            scanned_keys: 5,
            persists: 6,
            fast_level_writes: 7,
            scan_restarts: 8,
            fallback_scans: 9,
            wal_groups: 10,
            wal_group_records: 11,
            wal_follower_writes: 12,
            wal_rotations: 13,
            wal_retired_bytes: 14,
            wal_generations: 15,
            wal_active_bytes: 16,
            io_retries: 17,
            io_degraded: 18,
            wal_retire_errors: 19,
            write_stall_ns: 20,
            wal_sync_ns: 21,
        };
        let total = aggregate(&[a.clone(), a.clone(), StoreStats::default()]);
        assert_eq!(total.puts, 2);
        assert_eq!(total.wal_active_bytes, 32);
        assert_eq!(total.wal_retire_errors, 38);
        assert_eq!(total.write_stall_ns, 40);
        assert_eq!(total.wal_sync_ns, 42);
        assert_eq!(aggregate(&[]), StoreStats::default());
        assert_eq!(aggregate(std::slice::from_ref(&a)), a);
    }
}
