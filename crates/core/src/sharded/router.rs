//! The [`ShardedFloDb`] router: N FloDB instances behind one `KvStore`.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flodb_storage::sharding::{read_sharding, shard_dir_name, write_sharding, ShardingSpec};
use flodb_storage::wal::BatchAnnotation;
use flodb_storage::PrefixEnv;

use crate::api::{KvStore, StoreStats, WriteBatch};
use crate::error::{OpenError, OptionsError, WriteError};
use crate::options::FloDbOptions;
use crate::sharded::merge::merge_snapshots;
use crate::sharded::partitioner::Partitioner;
use crate::sharded::stats::aggregate;
use crate::store::FloDb;
use crate::telemetry::TelemetrySnapshot;

/// Default partitioner seed when the caller does not pick one.
pub const DEFAULT_HASH_SEED: u64 = 0xF10D_B5EE_D000_0001;

/// Configuration for a [`ShardedFloDb`]: the shard layout plus the
/// per-shard FloDB options template.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Number of FloDB instances to partition the keyspace across
    /// (validation rejects 0 with [`OptionsError::ZeroShards`]). Sticky:
    /// recorded in the store root on first open, and a later open with a
    /// different count is [`OpenError::ShardMismatch`].
    pub shards: u32,
    /// Seed of the routing hash (see [`Partitioner`]). Sticky like
    /// `shards`, and for the same reason: it decides key placement.
    pub hash_seed: u64,
    /// Per-shard options template. Each shard gets a clone with its `env`
    /// replaced by a `shard-NN/` sub-namespace of this template's env, so
    /// every shard runs its own Membuffer, WAL, and background threads
    /// against its own directory. Budget note: `memory_bytes` is
    /// *per shard* — N shards use N × `memory_bytes`.
    pub base: FloDbOptions,
}

impl ShardedOptions {
    /// `shards` instances over `base`, with the default hash seed.
    pub fn new(shards: u32, base: FloDbOptions) -> Self {
        Self {
            shards,
            hash_seed: DEFAULT_HASH_SEED,
            base,
        }
    }
}

/// N independent FloDB instances behind one [`KvStore`]: point ops route
/// by a seeded stable hash of the key, scans fan out and k-way merge,
/// and batches split into per-shard sub-batches.
///
/// # Cross-shard atomicity
///
/// [`KvStore::write`] splits a batch into per-shard sub-batches and
/// commits each as **one group-commit frame in that shard's WAL**, tagged
/// with a shared batch id and the count of sibling sub-batches
/// ([`BatchAnnotation`]). Recovery is therefore *per-shard
/// all-or-nothing, relaxed cross-shard*: a sub-batch replays whole or not
/// at all (frames are CRC-checked units), but a crash may persist a
/// strict subset of a batch's shards. See ARCHITECTURE.md "Sharding" for
/// the full recovery rule and its rationale.
///
/// # Scans
///
/// Each shard materializes a validated snapshot through its own restart
/// protocol ([`FloDb::scan_snapshot`]); the router merges the N sorted
/// snapshots in key order. `ControlFlow::Break` stops the merge
/// immediately — emission and cursor work over every shard are pruned,
/// though each shard's snapshot was already built (the restart protocol
/// validates whole ranges, not prefixes).
///
/// # Examples
///
/// ```
/// use flodb_core::{FloDbOptions, KvStore, ShardedFloDb, ShardedOptions};
///
/// let db = ShardedFloDb::open(ShardedOptions::new(
///     4,
///     FloDbOptions::small_for_tests(),
/// ))
/// .unwrap();
/// db.put(b"user:1", b"alice").unwrap();
/// db.put(b"user:2", b"bob").unwrap();
/// assert_eq!(db.get(b"user:1"), Some(b"alice".to_vec()));
/// assert_eq!(db.scan(b"user:", b"user:~").len(), 2);
/// ```
pub struct ShardedFloDb {
    shards: Vec<FloDb>,
    partitioner: Partitioner,
    /// Next batch id for sub-batch annotations; ids are unique per open
    /// store handle, which is all recovery needs (sibling frames of one
    /// split share an id, different splits in the same logs differ).
    next_batch_id: AtomicU64,
}

impl std::fmt::Debug for ShardedFloDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFloDb")
            .field("shards", &self.shards.len())
            .field("hash_seed", &self.partitioner.seed())
            .finish_non_exhaustive()
    }
}

impl ShardedFloDb {
    /// Opens (or recovers) `shards` FloDB instances under the root env of
    /// `opts.base`, each in its own `shard-NN/` namespace.
    ///
    /// The first open of a root writes a sticky sharding record (count +
    /// hash seed); every later open verifies it and fails with
    /// [`OpenError::ShardMismatch`] on disagreement — honoring a changed
    /// layout would silently route reads away from the shards holding
    /// their keys.
    ///
    /// # Errors
    ///
    /// [`OpenError::Options`] for invalid options (including zero
    /// shards), [`OpenError::ShardMismatch`] as above, and whatever any
    /// shard's own open reports.
    pub fn open(opts: ShardedOptions) -> Result<Self, OpenError> {
        if opts.shards == 0 {
            return Err(OptionsError::ZeroShards.into());
        }
        opts.base.validate()?;
        let root = Arc::clone(&opts.base.env);
        let requested = ShardingSpec {
            shards: opts.shards,
            hash_seed: opts.hash_seed,
        };
        match read_sharding(root.as_ref()).map_err(OpenError::Storage)? {
            Some(on_disk) if on_disk != requested => {
                return Err(OpenError::ShardMismatch {
                    on_disk: (on_disk.shards, on_disk.hash_seed),
                    requested: (requested.shards, requested.hash_seed),
                });
            }
            Some(_) => {}
            None => write_sharding(root.as_ref(), &requested).map_err(OpenError::Storage)?,
        }
        let mut shards = Vec::with_capacity(opts.shards as usize);
        for i in 0..opts.shards {
            let mut shard_opts = opts.base.clone();
            shard_opts.env = Arc::new(PrefixEnv::new(Arc::clone(&root), &shard_dir_name(i)));
            shards.push(FloDb::open(shard_opts)?);
        }
        Ok(Self {
            shards,
            partitioner: Partitioner::new(opts.shards, opts.hash_seed),
            next_batch_id: AtomicU64::new(1),
        })
    }

    /// Number of shards behind this router.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The routing partitioner (shard count + seed, as persisted).
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Per-shard stats snapshots, indexed by shard — the imbalance gauge.
    /// [`KvStore::stats`] returns their sum.
    pub fn per_shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(KvStore::stats).collect()
    }

    /// Fleet-wide telemetry: every shard's snapshot merged into one
    /// (counters summed, histograms merged — see
    /// [`TelemetrySnapshot::merge_from`]). Pair with
    /// [`Self::per_shard_telemetry`] to find the shard behind a tail.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut total = match self.shards.first() {
            Some(first) => first.telemetry(),
            None => return TelemetrySnapshot::empty(crate::TelemetryLevel::Off),
        };
        for shard in &self.shards[1..] {
            total.merge_from(&shard.telemetry());
        }
        total
    }

    /// Per-shard telemetry snapshots, indexed by shard — the latency
    /// imbalance gauge ([`Self::telemetry`] returns their merge).
    pub fn per_shard_telemetry(&self) -> Vec<TelemetrySnapshot> {
        self.shards.iter().map(FloDb::telemetry).collect()
    }

    /// Shard indexes currently latched degraded (see
    /// [`FloDb::is_degraded`]). Failure isolation is per shard: a
    /// poisoned or degraded shard rejects *its* writes, while sibling
    /// shards keep serving reads and writes untouched — the router never
    /// propagates one shard's latch to another.
    pub fn degraded_shards(&self) -> Vec<u32> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_degraded())
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn shard_for(&self, key: &[u8]) -> &FloDb {
        &self.shards[self.partitioner.shard_of(key) as usize]
    }
}

impl KvStore for ShardedFloDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), WriteError> {
        self.shard_for(key).put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<(), WriteError> {
        self.shard_for(key).delete(key)
    }

    /// Splits `batch` into per-shard sub-batches and commits each as one
    /// annotated group-commit frame in its shard's WAL.
    ///
    /// On `Err`, the failing shard applied nothing (its shard is
    /// poisoned), but sub-batches already committed to *earlier* shards
    /// stay applied — the documented relaxed cross-shard contract; a
    /// crash has the same shape.
    fn write(&self, batch: &WriteBatch) -> Result<(), WriteError> {
        if batch.is_empty() || self.shards.len() == 1 {
            // One shard holds the whole batch: plain single-store
            // atomicity applies and no annotation is needed (the empty
            // case still observes shard 0's poison latch).
            return self.shards[0].write(batch);
        }
        let mut subs: Vec<WriteBatch> = vec![WriteBatch::new(); self.shards.len()];
        for (key, value) in batch.iter() {
            let sub = &mut subs[self.partitioner.shard_of(key) as usize];
            match value {
                Some(value) => sub.put(key, value),
                None => sub.delete(key),
            };
        }
        let shard_count = subs.iter().filter(|s| !s.is_empty()).count() as u32;
        let batch_id = self.next_batch_id.fetch_add(1, Ordering::Relaxed);
        for (shard, sub) in subs.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            self.shards[shard].write_tagged(
                sub,
                BatchAnnotation {
                    batch_id,
                    shard: shard as u32,
                    shard_count,
                    ops: sub.len() as u32,
                },
            )?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard_for(key).get(key)
    }

    fn scan_with(
        &self,
        low: &[u8],
        high: &[u8],
        visitor: &mut dyn FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    ) {
        let snapshots: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.scan_snapshot(low, high))
            .collect();
        merge_snapshots(&snapshots, visitor);
    }

    fn name(&self) -> &'static str {
        "ShardedFloDB"
    }

    fn stats(&self) -> StoreStats {
        aggregate(&self.per_shard_stats())
    }

    fn quiesce(&self) {
        for shard in &self.shards {
            shard.quiesce();
        }
    }
}
