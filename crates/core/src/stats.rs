//! Operation counters for FloDB.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::api::StoreStats;

/// Atomic counters tracking FloDB's behaviour, cheap enough for the hot
/// path (relaxed increments on cache-local lines).
#[derive(Debug, Default)]
pub struct FloDbStats {
    /// Put operations completed.
    pub puts: AtomicU64,
    /// Delete operations completed.
    pub deletes: AtomicU64,
    /// Get operations completed.
    pub gets: AtomicU64,
    /// Scan operations completed.
    pub scans: AtomicU64,
    /// Keys returned by scans.
    pub scanned_keys: AtomicU64,
    /// Writes absorbed directly by the Membuffer (fast path).
    pub membuffer_writes: AtomicU64,
    /// Writes that fell through to the Memtable (slow path).
    pub memtable_writes: AtomicU64,
    /// Entries moved Membuffer → Memtable by drains.
    pub drained_entries: AtomicU64,
    /// Multi-insert batches executed by drains.
    pub drain_batches: AtomicU64,
    /// Memtable flushes to disk.
    pub persists: AtomicU64,
    /// Scan restarts due to concurrent updates.
    pub scan_restarts: AtomicU64,
    /// Writer-blocking fallback scans.
    pub fallback_scans: AtomicU64,
    /// Piggybacking scans (reused a master's sequence number).
    pub piggyback_scans: AtomicU64,
    /// Master scans (established a sequence number).
    pub master_scans: AtomicU64,
    /// Master scans that reused a previous master's sequence number
    /// without draining (§4.4 optimization).
    pub master_reuse_scans: AtomicU64,
    /// Times a writer helped drain the immutable Membuffer.
    pub writer_drain_helps: AtomicU64,
    /// Times a writer stalled waiting for Memtable room.
    pub write_stalls: AtomicU64,
    /// WAL commit groups written (each is one frame, one write, at most
    /// one fsync). In the legacy per-put pipeline every record is its own
    /// group.
    pub wal_groups: AtomicU64,
    /// Records across all WAL commit groups; divide by [`Self::wal_groups`]
    /// for the mean group size.
    pub wal_group_records: AtomicU64,
    /// Writes acknowledged as group-commit followers (their record rode in
    /// a group another thread committed). The leader split is
    /// [`Self::wal_groups`].
    pub wal_follower_writes: AtomicU64,
    /// WAL segment rotations: the leader sealed the active segment at a
    /// group boundary and rolled to a fresh generation.
    pub wal_rotations: AtomicU64,
    /// Total bytes of sealed WAL segments retired (deleted) after a
    /// persisted checkpoint covered their records.
    pub wal_retired_bytes: AtomicU64,
    /// Gauge: live WAL generations on disk, sealed-awaiting-retirement
    /// plus the active one (0 with the WAL disabled).
    pub wal_generations: AtomicU64,
    /// Gauge: bytes in the active WAL segment, header included (0 with
    /// the WAL disabled).
    pub wal_active_bytes: AtomicU64,
    /// Background I/O attempts retried after a transient failure (flush,
    /// compaction, retirement record/delete), plus WAL rotations deferred
    /// by a failed segment creation — each retried at the next group
    /// boundary. Nonzero with zero [`Self::io_degraded`] means the device
    /// misbehaved and the store rode it out.
    pub io_retries: AtomicU64,
    /// Background I/O operations abandoned after exhausting their
    /// retries. A flush or compaction abandonment also latches the store
    /// degraded (writes rejected, reads still served — see
    /// ARCHITECTURE.md "Failure model"); a retirement abandonment only
    /// leaves segment files behind (tracked by
    /// [`Self::wal_retire_errors`]).
    pub io_degraded: AtomicU64,
    /// Retirement passes that failed to durably record the oldest-live
    /// mark or to delete retired segment files. The affected segments
    /// stay on disk as stale-but-harmless leftovers (pruned at the next
    /// open); only disk-footprint boundedness degrades.
    pub wal_retire_errors: AtomicU64,
    /// Total nanoseconds writers spent stalled waiting for Memtable room
    /// — the duration companion of [`Self::write_stalls`]. Recorded at
    /// `TelemetryLevel::Counters` and above (0 at `Off`).
    pub write_stall_ns: AtomicU64,
    /// Total nanoseconds spent fsyncing the WAL inside committed groups.
    /// Recorded at `TelemetryLevel::Counters` and above (0 at `Off`, and
    /// with `sync: false` there is nothing to record).
    pub wal_sync_ns: AtomicU64,
}

/// A snapshot of epoch-based memory reclamation activity (see
/// [`FloDbStats::reclamation`]).
///
/// Under sustained update traffic `destructions_executed` trails
/// `destructions_deferred` by at most the garbage currently inside its
/// grace period; at quiescence the two converge. A permanently growing gap
/// would indicate a stuck participant (e.g. a guard held forever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclamationStats {
    /// Total retired allocations handed to the epoch collector.
    pub destructions_deferred: u64,
    /// Total retired allocations whose destructor has actually run.
    pub destructions_executed: u64,
}

impl FloDbStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots the epoch-reclamation counters.
    ///
    /// The figures are process-global (the epoch collector is shared by
    /// every Membuffer and Memtable in the process), monotonically
    /// increasing, and come from the offline `crossbeam-epoch` shim's
    /// observability hook. With the `epoch-shim-stats` feature disabled
    /// (i.e. when the real crossbeam-epoch crate is swapped back in, which
    /// has no such hook) both counters read zero.
    pub fn reclamation() -> ReclamationStats {
        #[cfg(feature = "epoch-shim-stats")]
        {
            ReclamationStats {
                destructions_deferred: crossbeam_epoch::shim_stats::destructions_deferred(),
                destructions_executed: crossbeam_epoch::shim_stats::destructions_executed(),
            }
        }
        #[cfg(not(feature = "epoch-shim-stats"))]
        {
            ReclamationStats::default()
        }
    }

    /// Snapshots the counters into the cross-store [`StoreStats`] shape.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            scanned_keys: self.scanned_keys.load(Ordering::Relaxed),
            persists: self.persists.load(Ordering::Relaxed),
            fast_level_writes: self.membuffer_writes.load(Ordering::Relaxed),
            scan_restarts: self.scan_restarts.load(Ordering::Relaxed),
            fallback_scans: self.fallback_scans.load(Ordering::Relaxed),
            wal_groups: self.wal_groups.load(Ordering::Relaxed),
            wal_group_records: self.wal_group_records.load(Ordering::Relaxed),
            wal_follower_writes: self.wal_follower_writes.load(Ordering::Relaxed),
            wal_rotations: self.wal_rotations.load(Ordering::Relaxed),
            wal_retired_bytes: self.wal_retired_bytes.load(Ordering::Relaxed),
            wal_generations: self.wal_generations.load(Ordering::Relaxed),
            wal_active_bytes: self.wal_active_bytes.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_degraded: self.io_degraded.load(Ordering::Relaxed),
            wal_retire_errors: self.wal_retire_errors.load(Ordering::Relaxed),
            write_stall_ns: self.write_stall_ns.load(Ordering::Relaxed),
            wal_sync_ns: self.wal_sync_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclamation_counters_are_monotone() {
        let before = FloDbStats::reclamation();
        // Retire something through the collector so the deferred counter
        // must move (process-global, so only >= assertions are safe here).
        let guard = crossbeam_epoch::pin();
        let value = crossbeam_epoch::Owned::new(7u64).into_shared(&guard);
        // SAFETY: never published; we hold the only pointer.
        unsafe { guard.defer_destroy(value) };
        drop(guard);
        let after = FloDbStats::reclamation();
        if cfg!(feature = "epoch-shim-stats") {
            assert!(after.destructions_deferred > before.destructions_deferred);
        }
        assert!(after.destructions_executed >= before.destructions_executed);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = FloDbStats::default();
        FloDbStats::bump(&s.puts);
        FloDbStats::bump(&s.puts);
        FloDbStats::add(&s.scanned_keys, 10);
        let snap = s.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.scanned_keys, 10);
        assert_eq!(snap.gets, 0);
    }
}
