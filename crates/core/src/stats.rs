//! Operation counters for FloDB.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::api::StoreStats;

/// Atomic counters tracking FloDB's behaviour, cheap enough for the hot
/// path (relaxed increments on cache-local lines).
#[derive(Debug, Default)]
pub struct FloDbStats {
    /// Put operations completed.
    pub puts: AtomicU64,
    /// Delete operations completed.
    pub deletes: AtomicU64,
    /// Get operations completed.
    pub gets: AtomicU64,
    /// Scan operations completed.
    pub scans: AtomicU64,
    /// Keys returned by scans.
    pub scanned_keys: AtomicU64,
    /// Writes absorbed directly by the Membuffer (fast path).
    pub membuffer_writes: AtomicU64,
    /// Writes that fell through to the Memtable (slow path).
    pub memtable_writes: AtomicU64,
    /// Entries moved Membuffer → Memtable by drains.
    pub drained_entries: AtomicU64,
    /// Multi-insert batches executed by drains.
    pub drain_batches: AtomicU64,
    /// Memtable flushes to disk.
    pub persists: AtomicU64,
    /// Scan restarts due to concurrent updates.
    pub scan_restarts: AtomicU64,
    /// Writer-blocking fallback scans.
    pub fallback_scans: AtomicU64,
    /// Piggybacking scans (reused a master's sequence number).
    pub piggyback_scans: AtomicU64,
    /// Master scans (established a sequence number).
    pub master_scans: AtomicU64,
    /// Master scans that reused a previous master's sequence number
    /// without draining (§4.4 optimization).
    pub master_reuse_scans: AtomicU64,
    /// Times a writer helped drain the immutable Membuffer.
    pub writer_drain_helps: AtomicU64,
    /// Times a writer stalled waiting for Memtable room.
    pub write_stalls: AtomicU64,
}

impl FloDbStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots the counters into the cross-store [`StoreStats`] shape.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            scanned_keys: self.scanned_keys.load(Ordering::Relaxed),
            persists: self.persists.load(Ordering::Relaxed),
            fast_level_writes: self.membuffer_writes.load(Ordering::Relaxed),
            scan_restarts: self.scan_restarts.load(Ordering::Relaxed),
            fallback_scans: self.fallback_scans.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = FloDbStats::default();
        FloDbStats::bump(&s.puts);
        FloDbStats::bump(&s.puts);
        FloDbStats::add(&s.scanned_keys, 10);
        let snap = s.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.scanned_keys, 10);
        assert_eq!(snap.gets, 0);
    }
}
