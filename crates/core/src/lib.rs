//! FloDB: a two-tier LSM memory component with concurrent reads, writes
//! and scans.
//!
//! This crate is the paper's primary contribution (*FloDB: Unlocking Memory
//! in Persistent Key-Value Stores*, EuroSys 2017): a log-structured-merge
//! key-value store whose memory component has **two levels** —
//!
//! - the **Membuffer**, a small, fast, partitioned concurrent hash table
//!   ([`flodb_membuffer::MemBuffer`]) that absorbs writes at hash-table
//!   latency regardless of memory-component size, and
//! - the **Memtable**, a large, sorted, lock-free skiplist
//!   ([`flodb_memtable::SkipList`]) that background *drain* threads fill
//!   using the skiplist multi-insert, and from which a *persist* thread
//!   flushes immutable snapshots to the LevelDB-style disk component
//!   ([`flodb_storage::DiskComponent`]).
//!
//! The user-facing operations follow the paper's Algorithms 2 and 3: `get`
//! walks MBF → IMM_MBF → MTB → IMM_MTB → disk; `put`/`delete` complete in
//! the Membuffer when its bucket has room and fall through to the Memtable
//! otherwise; `scan` drains the Membuffer (master scan), takes a sequence
//! number, and iterates the sorted levels, restarting if a concurrent
//! in-place update overtakes it, with a writer-blocking fallback bounding
//! restarts. Memory components are switched with RCU
//! ([`flodb_sync::RcuDomain`]) so readers and writers never block on a
//! switch.
//!
//! # Examples
//!
//! ```
//! use flodb_core::{FloDb, FloDbOptions, KvStore};
//!
//! let db = FloDb::open(FloDbOptions::small_for_tests()).unwrap();
//! db.put(b"key", b"value");
//! assert_eq!(db.get(b"key"), Some(b"value".to_vec()));
//! db.delete(b"key");
//! assert_eq!(db.get(b"key"), None);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

mod api;
mod error;
mod options;
mod scan;
pub mod sharded;
mod stats;
mod store;
pub mod telemetry;

// Model-checker builds (`RUSTFLAGS="--cfg flodb_model"`) expose the drain
// pipeline and the RCU view cell so tests/model*.rs in the umbrella crate
// can drive the freeze/drain machinery under the flodb-check scheduler
// (the loom convention). Normal builds keep them private.
#[cfg(flodb_model)]
pub mod drain;
#[cfg(flodb_model)]
pub mod view;
#[cfg(not(flodb_model))]
mod drain;
#[cfg(not(flodb_model))]
mod view;

pub use api::{KvStore, ScanEntry, StoreStats, WriteBatch};
pub use error::{Error, OpenError, OptionsError, WriteError};
pub use options::{FloDbOptions, WalMode};
pub use sharded::{Partitioner, ShardedFloDb, ShardedOptions};
pub use stats::{FloDbStats, ReclamationStats};
pub use store::FloDb;
pub use telemetry::{TelemetryLevel, TelemetrySnapshot};
