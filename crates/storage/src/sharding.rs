//! The sticky sharding record: a store root's shard layout, on disk.
//!
//! A sharded store hash-partitions the keyspace across N independent
//! store instances, each under its own `shard-NN/` sub-namespace of one
//! root environment. Both the shard **count** and the partitioner's hash
//! **seed** decide which shard owns a key, so they must never silently
//! change across reopen — a different count (or seed) would route reads
//! away from the shard that holds the data. This module persists them in
//! a tiny checksummed record file at the root, written once when the
//! sharded store is first created and verified on every subsequent open.
//!
//! Framing matches the manifest and WAL (`[len u32][crc u32][payload]`);
//! a torn or corrupt record is reported as corruption, never silently
//! treated as "unsharded" — that would re-route every key.

use crate::env::Env;
use crate::error::{Result, StorageError};
use crate::record::crc32;

/// Name of the sharding record file at the store root.
pub const SHARDING_FILE: &str = "SHARDING";

/// Magic bytes opening the sharding record payload.
const SHARDING_MAGIC: &[u8; 8] = b"FLODBSHD";

/// The persisted shard layout: how many shards, and the seed their
/// partitioner hashes keys with. Both are sticky for the store's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingSpec {
    /// Number of hash partitions (one sub-store each).
    pub shards: u32,
    /// Seed of the stable key hash routing point operations.
    pub hash_seed: u64,
}

impl ShardingSpec {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(20);
        payload.extend_from_slice(SHARDING_MAGIC);
        payload.extend_from_slice(&self.shards.to_le_bytes());
        payload.extend_from_slice(&self.hash_seed.to_le_bytes());
        payload
    }

    fn decode(payload: &[u8]) -> Result<Self> {
        if payload.len() < 20 || &payload[..8] != SHARDING_MAGIC.as_slice() {
            return Err(StorageError::Corruption(
                "sharding record has a bad magic or is truncated".into(),
            ));
        }
        Ok(Self {
            shards: u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
            hash_seed: u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes")),
        })
    }
}

/// Writes (and syncs) the sharding record at the root of `env`, then syncs
/// the directory so the record's existence survives a crash along with the
/// shard directories it describes.
///
/// If any step fails, the half-written record is removed (best effort)
/// before the error is returned: the record is only ever written before
/// any shard holds data, so a later open can safely retry creation —
/// whereas a torn record left behind would read as corruption on every
/// subsequent open, bricking the root over one transient I/O error.
pub fn write_sharding(env: &dyn Env, spec: &ShardingSpec) -> Result<()> {
    let payload = spec.encode();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    let result = (|| {
        let mut file = env.new_writable(SHARDING_FILE)?;
        file.append(&frame)?;
        file.sync()?;
        file.finish()?;
        env.sync_dir()
    })();
    if result.is_err() && env.exists(SHARDING_FILE) {
        let _ = env.delete(SHARDING_FILE);
    }
    result
}

/// Reads the sharding record at the root of `env`.
///
/// Returns `Ok(None)` when no record exists (a fresh root). An existing
/// but torn or checksum-failing record is corruption: unlike a WAL tail,
/// this file is written once, synced, and never appended to, so no crash
/// interleaving legitimately truncates it after creation succeeded.
pub fn read_sharding(env: &dyn Env) -> Result<Option<ShardingSpec>> {
    if !env.exists(SHARDING_FILE) {
        return Ok(None);
    }
    let file = env.open_random(SHARDING_FILE)?;
    let data = file.read_at(0, file.len() as usize)?;
    if data.len() < 8 {
        return Err(StorageError::Corruption("sharding record truncated".into()));
    }
    let len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if data.len() < 8 + len {
        return Err(StorageError::Corruption("sharding record truncated".into()));
    }
    let payload = &data[8..8 + len];
    if crc32(payload) != crc {
        return Err(StorageError::Corruption(
            "sharding record checksum mismatch".into(),
        ));
    }
    ShardingSpec::decode(payload).map(Some)
}

/// Returns the canonical shard sub-directory name (`shard-NN`, two digits
/// minimum so listings sort in shard order for the common N <= 99).
pub fn shard_dir_name(index: u32) -> String {
    format!("shard-{index:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    #[test]
    fn roundtrip_and_fresh_root() {
        let env = MemEnv::new(None);
        assert_eq!(read_sharding(&env).unwrap(), None);
        let spec = ShardingSpec {
            shards: 7,
            hash_seed: 0xDEAD_BEEF,
        };
        write_sharding(&env, &spec).unwrap();
        assert_eq!(read_sharding(&env).unwrap(), Some(spec));
    }

    #[test]
    fn torn_or_corrupt_record_is_an_error_not_unsharded() {
        let env = MemEnv::new(None);
        let spec = ShardingSpec {
            shards: 4,
            hash_seed: 9,
        };
        write_sharding(&env, &spec).unwrap();
        let full = env.open_random(SHARDING_FILE).unwrap();
        let bytes = full.read_at(0, full.len() as usize).unwrap();

        // Every strict prefix must fail loudly.
        for cut in 1..bytes.len() {
            let mut f = env.new_writable(SHARDING_FILE).unwrap();
            f.append(&bytes[..cut]).unwrap();
            assert!(read_sharding(&env).is_err(), "cut at {cut}");
        }

        // A flipped payload byte must fail the checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let mut f = env.new_writable(SHARDING_FILE).unwrap();
        f.append(&corrupt).unwrap();
        assert!(read_sharding(&env).is_err());
    }

    #[test]
    fn failed_creation_leaves_no_torn_record_behind() {
        use std::sync::Arc;

        use crate::fault::{FaultEnv, FaultKind, FaultPlan};

        let env = FaultEnv::new(Arc::new(MemEnv::new(None)));
        let spec = ShardingSpec {
            shards: 4,
            hash_seed: 9,
        };
        for site in ["sharding-create", "sharding-append", "sharding-sync", "dir-sync"] {
            env.arm(FaultPlan::persistent(site, FaultKind::Io));
            assert!(write_sharding(&env, &spec).is_err(), "{site}");
            env.disarm_all();
            // The failed creation must be retryable: no torn record may
            // read as corruption, which would brick the root for good.
            assert_eq!(read_sharding(&env).unwrap(), None, "{site}");
        }
        write_sharding(&env, &spec).unwrap();
        assert_eq!(read_sharding(&env).unwrap(), Some(spec));
    }

    #[test]
    fn shard_dir_names_sort_in_shard_order() {
        assert_eq!(shard_dir_name(0), "shard-00");
        assert_eq!(shard_dir_name(41), "shard-41");
        assert_eq!(shard_dir_name(100), "shard-100");
        let mut names: Vec<String> = (0..16).map(shard_dir_name).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);
    }
}
