//! Leveled compaction: merging files downwards through the hierarchy.
//!
//! Reproduces LevelDB's shape (§2.1): L0 compacts on file count, deeper
//! levels on byte size with a 10× growth ratio; an L0 compaction consumes
//! every L0 file (they may overlap) plus the overlapping files of L1;
//! deeper compactions take one file plus its L+1 overlap. The merge keeps,
//! for each key, the record with the largest sequence number, and drops
//! tombstones when the output reaches the bottom of the data.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::error::Result;
use crate::record::Record;
use crate::sstable::{table_file_name, TableBuilder, TableIterator};
use crate::table_cache::TableCache;
use crate::version::{FileHandle, FileMeta, Version, VersionEdit, NUM_LEVELS};

/// Tunables for the leveled structure.
#[derive(Debug, Clone, Copy)]
pub struct CompactionConfig {
    /// Number of L0 files that triggers an L0→L1 compaction.
    pub l0_trigger: usize,
    /// Byte budget of L1; level `n` holds `base * ratio^(n-1)`.
    pub base_level_bytes: u64,
    /// Level-to-level growth ratio.
    pub level_ratio: u64,
    /// Target size of compaction output files.
    pub target_file_bytes: u64,
    /// Data block size for output tables.
    pub block_bytes: usize,
    /// Bloom filter budget for output tables.
    pub bloom_bits_per_key: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            l0_trigger: 4,
            base_level_bytes: 8 * 1024 * 1024,
            level_ratio: 10,
            target_file_bytes: 2 * 1024 * 1024,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

impl CompactionConfig {
    /// Maximum bytes allowed at `level` before it wants compaction.
    pub fn level_max_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut max = self.base_level_bytes;
        for _ in 1..level {
            max = max.saturating_mul(self.level_ratio);
        }
        max
    }
}

/// A selected compaction: inputs at `level` merging into `level + 1`.
#[derive(Debug)]
pub struct CompactionJob {
    /// The source level.
    pub level: usize,
    /// Files taken from `level`.
    pub inputs: Vec<Arc<FileHandle>>,
    /// Overlapping files taken from `level + 1`.
    pub next_inputs: Vec<Arc<FileHandle>>,
}

impl CompactionJob {
    /// Key range covered by all inputs.
    fn key_range(&self) -> (Box<[u8]>, Box<[u8]>) {
        let mut lo: Option<&[u8]> = None;
        let mut hi: Option<&[u8]> = None;
        for f in self.inputs.iter().chain(&self.next_inputs) {
            if lo.is_none_or(|l| f.smallest.as_ref() < l) {
                lo = Some(&f.smallest);
            }
            if hi.is_none_or(|h| f.largest.as_ref() > h) {
                hi = Some(&f.largest);
            }
        }
        (
            Box::from(lo.unwrap_or(&[])),
            Box::from(hi.unwrap_or(&[])),
        )
    }
}

/// Chooses the most urgent compaction, if any.
///
/// Scores: L0 by file count over trigger, deeper levels by bytes over
/// budget; the level with the highest score ≥ 1.0 wins.
pub fn pick_compaction(version: &Version, cfg: &CompactionConfig) -> Option<CompactionJob> {
    let mut best: Option<(f64, usize)> = None;
    let l0_score = version.levels[0].len() as f64 / cfg.l0_trigger as f64;
    if l0_score >= 1.0 {
        best = Some((l0_score, 0));
    }
    for level in 1..NUM_LEVELS - 1 {
        let score = version.level_bytes(level) as f64 / cfg.level_max_bytes(level) as f64;
        if score >= 1.0 && best.is_none_or(|(s, _)| score > s) {
            best = Some((score, level));
        }
    }
    let (_, level) = best?;

    let inputs: Vec<Arc<FileHandle>> = if level == 0 {
        // L0 files overlap each other; take them all so the merge sees a
        // consistent freshest-wins view.
        version.levels[0].clone()
    } else {
        // Take the file with the smallest key (simple deterministic cursor).
        vec![Arc::clone(version.levels[level].first()?)]
    };
    if inputs.is_empty() {
        return None;
    }

    let lo = inputs
        .iter()
        .map(|f| f.smallest.clone())
        .min()
        .expect("non-empty inputs");
    let hi = inputs
        .iter()
        .map(|f| f.largest.clone())
        .max()
        .expect("non-empty inputs");
    let next_inputs = version.overlapping(level + 1, &lo, &hi);

    Some(CompactionJob {
        level,
        inputs,
        next_inputs,
    })
}

/// A k-way merge cursor over table iterators that yields, per key, the
/// record with the largest sequence number.
pub struct MergeCursor {
    iters: Vec<TableIterator>,
    /// Heap of (key, seq, iter index), ordered smallest key first, and
    /// largest seq first within a key.
    heap: BinaryHeap<Reverse<(Box<[u8]>, Reverse<u64>, usize)>>,
}

impl MergeCursor {
    /// Builds a cursor over `iters`; each must already be positioned.
    pub fn new(iters: Vec<TableIterator>) -> Self {
        let mut cursor = Self {
            iters,
            heap: BinaryHeap::new(),
        };
        for i in 0..cursor.iters.len() {
            cursor.push_from(i);
        }
        cursor
    }

    fn push_from(&mut self, i: usize) {
        if self.iters[i].valid() {
            let r = self.iters[i].record();
            self.heap
                .push(Reverse((r.key.clone(), Reverse(r.seq), i)));
        }
    }

    /// Returns the next key's freshest record, merging duplicates.
    pub fn next_merged(&mut self) -> Result<Option<Record>> {
        let Some(Reverse((key, _, i))) = self.heap.pop() else {
            return Ok(None);
        };
        let freshest = self.iters[i].record().clone();
        self.iters[i].next()?;
        self.push_from(i);
        // Discard older versions of the same key from other inputs.
        while let Some(Reverse((k, _, _))) = self.heap.peek() {
            if k.as_ref() != key.as_ref() {
                break;
            }
            let Reverse((_, _, j)) = self.heap.pop().expect("peeked");
            self.iters[j].next()?;
            self.push_from(j);
        }
        Ok(Some(freshest))
    }
}

/// Runs `job`, writing output files and returning the version edit plus the
/// metadata of the new files.
///
/// `drop_tombstones` should be true only when nothing below the output
/// level can hold shadowed versions of the job's key range.
pub fn run_compaction(
    env: &dyn crate::env::Env,
    cache: &dyn TableCache,
    job: &CompactionJob,
    cfg: &CompactionConfig,
    new_file_number: &mut dyn FnMut() -> u64,
    drop_tombstones: bool,
) -> Result<VersionEdit> {
    let mut iters = Vec::new();
    for f in job.inputs.iter().chain(&job.next_inputs) {
        let table = cache.get(f.number)?;
        let mut it = table.iter();
        it.seek_to_first()?;
        iters.push(it);
    }
    let mut cursor = MergeCursor::new(iters);

    let mut edit = VersionEdit::default();
    let out_level = job.level + 1;
    let mut builder: Option<(u64, TableBuilder)> = None;

    while let Some(record) = cursor.next_merged()? {
        if drop_tombstones && record.is_tombstone() {
            continue;
        }
        if builder.is_none() {
            let number = new_file_number();
            let file = env.new_writable(&table_file_name(number))?;
            builder = Some((
                number,
                TableBuilder::new(file, cfg.block_bytes, cfg.bloom_bits_per_key),
            ));
        }
        let (_, b) = builder.as_mut().expect("just ensured");
        b.add(&record)?;
        if b.file_size() >= cfg.target_file_bytes {
            let (number, b) = builder.take().expect("present");
            let meta = b.finish()?;
            edit.add(
                out_level,
                FileMeta {
                    number,
                    size: meta.file_size,
                    smallest: meta.smallest,
                    largest: meta.largest,
                    entries: meta.entries,
                    largest_seq: meta.largest_seq,
                },
            );
        }
    }
    if let Some((number, b)) = builder.take() {
        if b.entries() > 0 {
            let meta = b.finish()?;
            edit.add(
                out_level,
                FileMeta {
                    number,
                    size: meta.file_size,
                    smallest: meta.smallest,
                    largest: meta.largest,
                    entries: meta.entries,
                    largest_seq: meta.largest_seq,
                },
            );
        }
    }
    for f in &job.inputs {
        edit.delete(job.level, f.number);
    }
    for f in &job.next_inputs {
        edit.delete(out_level, f.number);
    }
    let _ = job.key_range(); // Exercised by tests; reserved for seek-bounded merges.
    Ok(edit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Env, MemEnv};
    use crate::table_cache::ShardedTableCache;
    use crate::version::VersionSet;

    fn write_table(env: &Arc<dyn Env>, number: u64, records: &[Record]) -> FileMeta {
        let mut b = TableBuilder::new(
            env.new_writable(&table_file_name(number)).unwrap(),
            512,
            10,
        );
        for r in records {
            b.add(r).unwrap();
        }
        let meta = b.finish().unwrap();
        FileMeta {
            number,
            size: meta.file_size,
            smallest: meta.smallest,
            largest: meta.largest,
            entries: meta.entries,
            largest_seq: meta.largest_seq,
        }
    }

    fn put(k: u64, seq: u64) -> Record {
        Record::put(k.to_be_bytes().as_slice(), seq, seq.to_be_bytes().as_slice())
    }

    #[test]
    fn level_budgets_grow_geometrically() {
        let cfg = CompactionConfig::default();
        assert_eq!(cfg.level_max_bytes(1), cfg.base_level_bytes);
        assert_eq!(cfg.level_max_bytes(2), cfg.base_level_bytes * 10);
        assert_eq!(cfg.level_max_bytes(3), cfg.base_level_bytes * 100);
    }

    #[test]
    fn no_compaction_when_quiet() {
        let cfg = CompactionConfig::default();
        let v = Version::empty();
        assert!(pick_compaction(&v, &cfg).is_none());
    }

    #[test]
    fn l0_compaction_takes_all_l0_files() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let vs = VersionSet::new();
        let cfg = CompactionConfig {
            l0_trigger: 2,
            ..Default::default()
        };
        let mut edit = VersionEdit::default();
        for i in 1..=3u64 {
            edit.add(0, write_table(&env, i, &[put(10, i), put(20, i)]));
        }
        let (v, _) = vs.apply(&edit).unwrap();
        let job = pick_compaction(&v, &cfg).expect("L0 over trigger");
        assert_eq!(job.level, 0);
        assert_eq!(job.inputs.len(), 3);
    }

    #[test]
    fn merge_keeps_freshest_and_deletes_inputs() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let cache = ShardedTableCache::new(Arc::clone(&env), 16, 2);
        let vs = VersionSet::new();
        let cfg = CompactionConfig {
            l0_trigger: 2,
            ..Default::default()
        };
        let mut edit = VersionEdit::default();
        // Older file: keys 1..10 at seq 1; newer file: keys 5..15 at seq 2.
        let old: Vec<Record> = (1..=10).map(|k| put(k, 1)).collect();
        let new: Vec<Record> = (5..=15).map(|k| put(k, 2)).collect();
        edit.add(0, write_table(&env, 1, &old));
        edit.add(0, write_table(&env, 2, &new));
        let (v, _) = vs.apply(&edit).unwrap();

        let job = pick_compaction(&v, &cfg).unwrap();
        let mut next = 100u64;
        let out_edit = run_compaction(
            env.as_ref(),
            &cache,
            &job,
            &cfg,
            &mut || {
                next += 1;
                next
            },
            true,
        )
        .unwrap();
        let (v2, deleted) = vs.apply(&out_edit).unwrap();
        assert_eq!(deleted.len(), 2);
        assert!(v2.levels[0].is_empty());
        assert!(!v2.levels[1].is_empty());

        // Check merged contents: keys 1..15, overlap keys carry seq 2.
        let table = cache.get(v2.levels[1][0].number).unwrap();
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        let mut seen = Vec::new();
        while it.valid() {
            let r = it.record();
            seen.push((
                u64::from_be_bytes(r.key.as_ref().try_into().unwrap()),
                r.seq,
            ));
            it.next().unwrap();
        }
        assert_eq!(seen.len(), 15);
        for (k, seq) in seen {
            let expect = if (5..=15).contains(&k) { 2 } else { 1 };
            assert_eq!(seq, expect, "key {k}");
        }
    }

    #[test]
    fn tombstones_dropped_only_when_asked() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let cache = ShardedTableCache::new(Arc::clone(&env), 16, 2);
        let meta = write_table(
            &env,
            1,
            &[
                Record::tombstone(1u64.to_be_bytes().as_slice(), 5),
                put(2, 5),
            ],
        );
        let job = CompactionJob {
            level: 0,
            inputs: vec![Arc::new(FileHandle::new(meta))],
            next_inputs: vec![],
        };
        let cfg = CompactionConfig::default();

        let mut n = 10u64;
        let edit_keep = run_compaction(
            env.as_ref(),
            &cache,
            &job,
            &cfg,
            &mut || {
                n += 1;
                n
            },
            false,
        )
        .unwrap();
        // Tombstone kept: output has 2 entries.
        assert_eq!(edit_keep.added[0].1.entries, 2);

        let mut n2 = 20u64;
        let edit_drop = run_compaction(
            env.as_ref(),
            &cache,
            &job,
            &cfg,
            &mut || {
                n2 += 1;
                n2
            },
            true,
        )
        .unwrap();
        assert_eq!(edit_drop.added[0].1.entries, 1);
    }

    #[test]
    fn output_splits_at_target_size() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let cache = ShardedTableCache::new(Arc::clone(&env), 16, 2);
        let records: Vec<Record> = (0..2000u64).map(|k| put(k, 1)).collect();
        let meta = write_table(&env, 1, &records);
        let job = CompactionJob {
            level: 0,
            inputs: vec![Arc::new(FileHandle::new(meta))],
            next_inputs: vec![],
        };
        let cfg = CompactionConfig {
            target_file_bytes: 8 * 1024,
            ..Default::default()
        };
        let mut n = 10u64;
        let edit = run_compaction(
            env.as_ref(),
            &cache,
            &job,
            &cfg,
            &mut || {
                n += 1;
                n
            },
            true,
        )
        .unwrap();
        assert!(
            edit.added.len() > 1,
            "2000 records at ~30B should split beyond 8KB files"
        );
        let total: u64 = edit.added.iter().map(|(_, m)| m.entries).sum();
        assert_eq!(total, 2000);
    }
}
