//! Table (fd) caches: open-table handles keyed by file number.
//!
//! LevelDB keeps "thread-local versions and one shared version of the
//! file-descriptor cache in memory, acquiring a global lock to access the
//! shared version" — which FloDB found to be "a major scalability
//! bottleneck" and replaced "with a more scalable, concurrent hash table"
//! (§4, footnote 2). Both designs live here:
//!
//! - [`GlobalLockTableCache`] — one mutex around one map, reproducing the
//!   baselines' contention point;
//! - [`ShardedTableCache`] — lock striping over many shards, the
//!   replacement FloDB uses.
//!
//! Both implement [`TableCache`] so stores pick their poison via config.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flodb_sync::lock_order::{CACHE_GLOBAL, CACHE_SHARD};
use flodb_sync::shim::{ranked_mutex, Mutex};

use crate::env::Env;
use crate::error::Result;
use crate::sstable::{table_file_name, Table};

/// Cache hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to open the table.
    pub misses: u64,
}

/// An open-table cache.
pub trait TableCache: Send + Sync {
    /// Returns the open table for `file_number`, opening it on miss.
    fn get(&self, file_number: u64) -> Result<Arc<Table>>;
    /// Drops the cached handle for `file_number` (after file deletion).
    fn evict(&self, file_number: u64);
    /// Returns hit/miss counters.
    fn stats(&self) -> CacheStats;
}

struct Shard {
    /// file number -> (table, last-use tick).
    map: HashMap<u64, (Arc<Table>, u64)>,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
        }
    }

    fn get_or_open(
        &mut self,
        env: &Arc<dyn Env>,
        file_number: u64,
        capacity: usize,
        tick: u64,
        stats: &(AtomicU64, AtomicU64),
    ) -> Result<Arc<Table>> {
        if let Some((table, last)) = self.map.get_mut(&file_number) {
            *last = tick;
            stats.0.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(table));
        }
        stats.1.fetch_add(1, Ordering::Relaxed);
        let file = env.open_random(&table_file_name(file_number))?;
        let table = Arc::new(Table::open(file)?);
        if self.map.len() >= capacity {
            // Evict the least recently used entry in this shard.
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (_, last))| *last) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(file_number, (Arc::clone(&table), tick));
        Ok(table)
    }
}

/// Lock-striped concurrent table cache (FloDB's replacement, footnote 2).
pub struct ShardedTableCache {
    env: Arc<dyn Env>,
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    stats: (AtomicU64, AtomicU64),
}

impl ShardedTableCache {
    /// Creates a cache with `capacity` total entries over `shards` stripes.
    pub fn new(env: Arc<dyn Env>, capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            env,
            shards: (0..shards).map(|_| ranked_mutex(CACHE_SHARD, Shard::new())).collect(),
            per_shard_capacity: (capacity / shards).max(1),
            tick: AtomicU64::new(0),
            stats: (AtomicU64::new(0), AtomicU64::new(0)),
        }
    }
}

impl TableCache for ShardedTableCache {
    fn get(&self, file_number: u64) -> Result<Arc<Table>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(file_number as usize) % self.shards.len()];
        shard.lock().get_or_open(
            &self.env,
            file_number,
            self.per_shard_capacity,
            tick,
            &self.stats,
        )
    }

    fn evict(&self, file_number: u64) {
        let shard = &self.shards[(file_number as usize) % self.shards.len()];
        shard.lock().map.remove(&file_number);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.0.load(Ordering::Relaxed),
            misses: self.stats.1.load(Ordering::Relaxed),
        }
    }
}

/// Single-mutex table cache, reproducing the LevelDB fd-cache bottleneck.
pub struct GlobalLockTableCache {
    env: Arc<dyn Env>,
    state: Mutex<Shard>,
    capacity: usize,
    tick: AtomicU64,
    stats: (AtomicU64, AtomicU64),
}

impl GlobalLockTableCache {
    /// Creates a cache holding at most `capacity` open tables.
    pub fn new(env: Arc<dyn Env>, capacity: usize) -> Self {
        Self {
            env,
            state: ranked_mutex(CACHE_GLOBAL, Shard::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            stats: (AtomicU64::new(0), AtomicU64::new(0)),
        }
    }
}

impl TableCache for GlobalLockTableCache {
    fn get(&self, file_number: u64) -> Result<Arc<Table>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        self.state
            .lock()
            .get_or_open(&self.env, file_number, self.capacity, tick, &self.stats)
    }

    fn evict(&self, file_number: u64) {
        self.state.lock().map.remove(&file_number);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.0.load(Ordering::Relaxed),
            misses: self.stats.1.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;
    use crate::record::Record;
    use crate::sstable::TableBuilder;

    fn env_with_tables(n: u64) -> Arc<dyn Env> {
        let env = MemEnv::new(None);
        for i in 1..=n {
            let mut b = TableBuilder::new(env.new_writable(&table_file_name(i)).unwrap(), 512, 10);
            b.add(&Record::put(i.to_be_bytes().as_slice(), i, b"v".as_slice()))
                .unwrap();
            b.finish().unwrap();
        }
        Arc::new(env)
    }

    #[test]
    fn sharded_hits_after_first_open() {
        let cache = ShardedTableCache::new(env_with_tables(3), 8, 4);
        cache.get(1).unwrap();
        cache.get(1).unwrap();
        cache.get(2).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn global_lock_semantics_match() {
        let cache = GlobalLockTableCache::new(env_with_tables(3), 8);
        cache.get(1).unwrap();
        cache.get(1).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn eviction_caps_capacity() {
        let cache = GlobalLockTableCache::new(env_with_tables(5), 2);
        for i in 1..=5 {
            cache.get(i).unwrap();
        }
        // Re-fetching the latest should hit; the earliest should miss.
        let before = cache.stats();
        cache.get(5).unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1);
        cache.get(1).unwrap();
        assert_eq!(cache.stats().misses, before.misses + 1);
    }

    #[test]
    fn evict_removes_handle() {
        let cache = ShardedTableCache::new(env_with_tables(1), 4, 2);
        cache.get(1).unwrap();
        cache.evict(1);
        cache.get(1).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn missing_file_is_error() {
        let cache = ShardedTableCache::new(env_with_tables(1), 4, 2);
        assert!(cache.get(99).is_err());
    }

    #[test]
    fn concurrent_gets_are_safe() {
        let cache = Arc::new(ShardedTableCache::new(env_with_tables(8), 16, 4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for round in 0..200u64 {
                    let table = cache.get(round % 8 + 1).unwrap();
                    assert_eq!(table.entries(), 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
