//! Error type shared by the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure (real filesystem envs).
    Io(std::io::Error),
    /// A file or object was not found.
    NotFound(String),
    /// On-disk data failed validation (bad magic, CRC mismatch, truncation).
    Corruption(String),
    /// The operation is invalid in the current state.
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::NotFound(what) => write!(f, "not found: {what}"),
            Self::Corruption(why) => write!(f, "corruption: {why}"),
            Self::InvalidArgument(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::NotFound("f".into()).to_string().contains("f"));
        assert!(StorageError::Corruption("bad".into())
            .to_string()
            .contains("bad"));
        let io: StorageError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("io error"));
    }
}
