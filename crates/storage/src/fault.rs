//! Deterministic fault injection for any [`Env`].
//!
//! [`FaultEnv`] wraps an inner environment and injects failures at
//! **named trip points** — (file class × operation class) pairs such as
//! `"segment-append"` or `"manifest-sync"` — according to armed
//! [`FaultPlan`]s. Because every byte the store persists flows through
//! the [`Env`] trait, classifying operations here covers the whole I/O
//! surface without instrumenting a single consumer: the WAL, manifest,
//! SSTables, the sharding record, and directory syncs all pick up their
//! trip points from the file names they already use.
//!
//! Plans are deterministic: a plan armed as "fail the 3rd matching
//! operation, twice" fires on exactly the 3rd and 4th matching
//! operations after arming, every run. Transient faults (finite
//! `count`) recover by themselves; persistent plans keep failing until
//! [`FaultEnv::disarm_all`]. Each injection is counted per site, so a
//! test can prove its fault actually fired (no vacuous green).
//!
//! Read operations ([`Env::open_random`], [`RandomAccessFile`]) are
//! deliberately *not* fault points: the store's read path treats disk
//! read errors as fatal by design (see ARCHITECTURE.md "Failure model");
//! making reads fallible end-to-end is a separate roadmap item.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use flodb_sync::lock_order::{FAULT_COUNTERS, FAULT_PLANS};
use flodb_sync::shim::{ranked_mutex, Mutex};

use crate::env::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::sharding::SHARDING_FILE;
use crate::wal::parse_wal_name;

/// Every trip point a [`FaultEnv`] can inject at, for runtime
/// enumeration: sweep tests iterate this slice instead of hand-listing
/// sites, so a new file class or operation class cannot silently escape
/// coverage. Each name is `<file class>-<operation>`, except the WAL
/// segment delete, which is named for the subsystem that performs it
/// (`retire-delete`). `finish()` calls count toward the `-sync` site of
/// their file class: both are durability barriers on an open file.
pub const TRIP_POINTS: &[&str] = &[
    "segment-create",
    "segment-append",
    "segment-sync",
    "retire-delete",
    "manifest-create",
    "manifest-append",
    "manifest-sync",
    "manifest-delete",
    "table-create",
    "table-append",
    "table-sync",
    "table-delete",
    "sharding-create",
    "sharding-append",
    "sharding-sync",
    "dir-sync",
];

/// Marker substring present in every injected error's message, so tests
/// can tell an injected failure from a genuine environment error.
pub const INJECTED_MARKER: &str = "injected fault";

/// Returns whether `err` was manufactured by a [`FaultEnv`].
pub fn is_injected(err: &StorageError) -> bool {
    err.to_string().contains(INJECTED_MARKER)
}

/// The flavor of failure a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (EIO-style).
    Io,
    /// Out of space: [`std::io::ErrorKind::StorageFull`].
    Enospc,
    /// A torn append: half the payload reaches the inner file, then the
    /// operation reports failure. On non-append operations this behaves
    /// like [`FaultKind::Io`].
    ShortWrite,
}

/// One armed fault: fail matching operations at a trip point.
///
/// Counting starts at arm time: `after = 0` fails the very next
/// operation that hits the site, `after = n` lets `n` operations through
/// first. `count` consecutive matches fail (then the plan is spent —
/// the transient-then-recover shape); [`FaultPlan::persistent`] plans
/// never recover until disarmed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    site: &'static str,
    after: u64,
    kind: FaultKind,
    count: u64,
}

impl FaultPlan {
    /// Fails the `(after + 1)`-th matching operation after arming, and
    /// every matching operation from then on, with `kind`.
    ///
    /// # Panics
    ///
    /// If `site` is not a registered trip point (see [`TRIP_POINTS`]) —
    /// a misspelled site would otherwise arm a plan that can never fire.
    pub fn nth(site: &str, after: u64, kind: FaultKind) -> Self {
        Self {
            site: resolve_site(site),
            after,
            kind,
            count: u64::MAX,
        }
    }

    /// Fails every matching operation from now on with `kind`.
    pub fn persistent(site: &str, kind: FaultKind) -> Self {
        Self::nth(site, 0, kind)
    }

    /// Like [`FaultPlan::nth`], but only `count` consecutive matching
    /// operations fail — after that the site recovers by itself.
    pub fn transient(site: &str, after: u64, kind: FaultKind, count: u64) -> Self {
        Self {
            count,
            ..Self::nth(site, after, kind)
        }
    }

    /// Derives a plan deterministically from `seed` (a splitmix64 walk):
    /// same seed, same site/offset/kind/count, so a seeded sweep is
    /// reproducible from its seed alone.
    pub fn for_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let site = TRIP_POINTS[(next() % TRIP_POINTS.len() as u64) as usize];
        let after = next() % 4;
        let kind = match next() % 3 {
            0 => FaultKind::Io,
            1 => FaultKind::Enospc,
            _ => FaultKind::ShortWrite,
        };
        match next() % 2 {
            0 => Self::nth(site, after, kind),
            _ => Self::transient(site, after, kind, 1 + next() % 3),
        }
    }

    /// The trip point this plan targets.
    pub fn site(&self) -> &'static str {
        self.site
    }
}

/// Maps a runtime site name onto its registry entry (the `'static`
/// canonical string used for counting).
fn resolve_site(site: &str) -> &'static str {
    TRIP_POINTS
        .iter()
        .find(|&&s| s == site)
        // PANIC-OK: test-harness configuration error, not a runtime path.
        .unwrap_or_else(|| panic!("unknown trip point {site:?}; see fault::TRIP_POINTS"))
}

/// Operation classes a trip point distinguishes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Create,
    Append,
    Sync,
    Delete,
}

/// Classifies a file name (last path component; shard prefixes like
/// `shard-03/` are routing, not identity) into its trip-point prefix.
fn file_class(name: &str) -> Option<&'static str> {
    let base = name.rsplit('/').next().unwrap_or(name);
    if parse_wal_name(base).is_some() {
        Some("segment")
    } else if base.starts_with("MANIFEST-") {
        Some("manifest")
    } else if base.ends_with(".sst") {
        Some("table")
    } else if base == SHARDING_FILE {
        Some("sharding")
    } else {
        None
    }
}

/// The trip point for (file class, operation), if one is registered.
fn site_for(class: Option<&'static str>, op: Op) -> Option<&'static str> {
    Some(match (class?, op) {
        ("segment", Op::Create) => "segment-create",
        ("segment", Op::Append) => "segment-append",
        ("segment", Op::Sync) => "segment-sync",
        ("segment", Op::Delete) => "retire-delete",
        ("manifest", Op::Create) => "manifest-create",
        ("manifest", Op::Append) => "manifest-append",
        ("manifest", Op::Sync) => "manifest-sync",
        ("manifest", Op::Delete) => "manifest-delete",
        ("table", Op::Create) => "table-create",
        ("table", Op::Append) => "table-append",
        ("table", Op::Sync) => "table-sync",
        ("table", Op::Delete) => "table-delete",
        ("sharding", Op::Create) => "sharding-create",
        ("sharding", Op::Append) => "sharding-append",
        ("sharding", Op::Sync) => "sharding-sync",
        // The sharding record is written once and never deleted; there
        // is no registered site to fire.
        ("sharding", Op::Delete) => return None,
        (other, _) => unreachable!("unclassified file class {other}"),
    })
}

fn injected_error(site: &str, kind: FaultKind) -> StorageError {
    StorageError::Io(match kind {
        FaultKind::Enospc => io::Error::new(
            io::ErrorKind::StorageFull,
            format!("{INJECTED_MARKER} at {site}: no space left on device"),
        ),
        FaultKind::Io | FaultKind::ShortWrite => {
            io::Error::other(format!("{INJECTED_MARKER} at {site}"))
        }
    })
}

#[derive(Debug, Default, Clone, Copy)]
struct SiteCounters {
    seen: u64,
    injected: u64,
}

#[derive(Debug)]
struct ArmedPlan {
    site: &'static str,
    /// Fires once the site's `seen` counter exceeds this.
    fire_above: u64,
    kind: FaultKind,
    remaining: u64,
}

#[derive(Debug)]
struct FaultState {
    counters: Mutex<HashMap<&'static str, SiteCounters>>,
    plans: Mutex<Vec<ArmedPlan>>,
}

impl Default for FaultState {
    fn default() -> Self {
        Self {
            counters: ranked_mutex(FAULT_COUNTERS, HashMap::new()),
            plans: ranked_mutex(FAULT_PLANS, Vec::new()),
        }
    }
}

impl FaultState {
    /// Records one operation at `site` and returns the fault to inject,
    /// if an armed plan matches. Deterministic: the decision depends
    /// only on the per-site operation ordinal and the armed plans.
    fn check(&self, site: &'static str) -> Option<FaultKind> {
        let seen = {
            let mut counters = self.counters.lock();
            let entry = counters.entry(site).or_default();
            entry.seen += 1;
            entry.seen
        };
        let kind = {
            let mut plans = self.plans.lock();
            let plan = plans
                .iter_mut()
                .find(|p| p.site == site && p.remaining > 0 && seen > p.fire_above)?;
            plan.remaining -= 1;
            plan.kind
        };
        self.counters.lock().entry(site).or_default().injected += 1;
        Some(kind)
    }

    fn check_site(&self, class: Option<&'static str>, op: Op) -> Result<()> {
        if let Some(site) = site_for(class, op) {
            if let Some(kind) = self.check(site) {
                return Err(injected_error(site, kind));
            }
        }
        Ok(())
    }
}

/// A deterministic fault-injecting wrapper over any [`Env`].
///
/// Share the wrapper with the store under test via `Arc` and keep a
/// second handle for control:
///
/// ```
/// use std::sync::Arc;
/// use flodb_storage::fault::{FaultEnv, FaultKind, FaultPlan};
/// use flodb_storage::{Env, MemEnv};
///
/// let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
/// fault.arm(FaultPlan::persistent("segment-append", FaultKind::Io));
/// let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
/// let mut log = env.new_writable("000001.log").unwrap();
/// assert!(log.append(b"frame").is_err());
/// assert_eq!(fault.injected("segment-append"), 1);
/// ```
pub struct FaultEnv {
    inner: Arc<dyn Env>,
    state: Arc<FaultState>,
}

impl std::fmt::Debug for FaultEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultEnv")
            .field("plans", &self.state.plans.lock().len())
            .finish_non_exhaustive()
    }
}

impl FaultEnv {
    /// Wraps `inner`; no plans are armed yet, so every operation passes
    /// through untouched (but is still counted per site).
    pub fn new(inner: Arc<dyn Env>) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState::default()),
        }
    }

    /// The trip-point registry (see [`TRIP_POINTS`]).
    pub fn trip_points() -> &'static [&'static str] {
        TRIP_POINTS
    }

    /// Arms `plan`. Multiple plans may be armed; the first matching one
    /// (in arm order) fires for each operation.
    pub fn arm(&self, plan: FaultPlan) {
        let fire_above = self
            .state
            .counters
            .lock()
            .get(plan.site)
            .map_or(0, |c| c.seen)
            + plan.after;
        self.state.plans.lock().push(ArmedPlan {
            site: plan.site,
            fire_above,
            kind: plan.kind,
            remaining: plan.count,
        });
    }

    /// Disarms every plan — the environment heals. Counters are kept.
    pub fn disarm_all(&self) {
        self.state.plans.lock().clear();
    }

    /// Operations seen at `site` since construction (fired or not).
    pub fn ops_seen(&self, site: &str) -> u64 {
        let site = resolve_site(site);
        self.state.counters.lock().get(site).map_or(0, |c| c.seen)
    }

    /// Faults injected at `site` since construction.
    pub fn injected(&self, site: &str) -> u64 {
        let site = resolve_site(site);
        self.state
            .counters
            .lock()
            .get(site)
            .map_or(0, |c| c.injected)
    }

    /// Faults injected across every site since construction.
    pub fn injected_total(&self) -> u64 {
        self.state
            .counters
            .lock()
            .values()
            .map(|c| c.injected)
            .sum()
    }
}

impl Env for FaultEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let class = file_class(name);
        self.state.check_site(class, Op::Create)?;
        let inner = self.inner.new_writable(name)?;
        Ok(Box::new(FaultFile {
            inner,
            class,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        // Reads are not fault points (see the module docs).
        self.inner.open_random(name)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.state.check_site(file_class(name), Op::Delete)?;
        self.inner.delete(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn sync_dir(&self) -> Result<()> {
        if let Some(kind) = self.state.check("dir-sync") {
            return Err(injected_error("dir-sync", kind));
        }
        self.inner.sync_dir()
    }
}

/// A writable file that routes its operations through the shared fault
/// state, classified by the file it was opened as.
struct FaultFile {
    inner: Box<dyn WritableFile>,
    class: Option<&'static str>,
    state: Arc<FaultState>,
}

impl WritableFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        if let Some(site) = site_for(self.class, Op::Append) {
            if let Some(kind) = self.state.check(site) {
                if kind == FaultKind::ShortWrite && data.len() > 1 {
                    // A torn write: the prefix lands, the caller sees an
                    // error. Best effort — if even the prefix fails, the
                    // injected error is still what surfaces.
                    let _ = self.inner.append(&data[..data.len() / 2]);
                }
                return Err(injected_error(site, kind));
            }
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> Result<()> {
        self.state.check_site(self.class, Op::Sync)?;
        self.inner.sync()
    }

    fn finish(&mut self) -> Result<()> {
        // A durability barrier like sync; counted at the same site.
        self.state.check_site(self.class, Op::Sync)?;
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn fault() -> Arc<FaultEnv> {
        Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))))
    }

    #[test]
    fn classification_covers_every_store_file() {
        assert_eq!(file_class("000042.log"), Some("segment"));
        assert_eq!(file_class("shard-03/000001.log"), Some("segment"));
        assert_eq!(file_class("MANIFEST-000007"), Some("manifest"));
        assert_eq!(file_class("12.sst"), Some("table"));
        assert_eq!(file_class("SHARDING"), Some("sharding"));
        assert_eq!(file_class("notes.txt"), None);
    }

    #[test]
    fn every_registered_site_is_resolvable_and_unique() {
        for site in TRIP_POINTS {
            assert_eq!(resolve_site(site), *site);
        }
        let mut sorted: Vec<_> = TRIP_POINTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), TRIP_POINTS.len(), "duplicate trip point");
    }

    #[test]
    fn unarmed_env_passes_everything_through() {
        let env = fault();
        let mut f = env.new_writable("000001.log").unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        f.finish().unwrap();
        env.sync_dir().unwrap();
        env.delete("000001.log").unwrap();
        assert_eq!(env.injected_total(), 0);
        assert_eq!(env.ops_seen("segment-append"), 1);
        assert_eq!(env.ops_seen("segment-sync"), 2, "sync + finish");
        assert_eq!(env.ops_seen("retire-delete"), 1);
        assert_eq!(env.ops_seen("dir-sync"), 1);
    }

    #[test]
    fn nth_plan_fires_deterministically() {
        let env = fault();
        env.arm(FaultPlan::nth("segment-append", 2, FaultKind::Io));
        let mut f = env.new_writable("000001.log").unwrap();
        f.append(b"one").unwrap();
        f.append(b"two").unwrap();
        let err = f.append(b"three").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(f.append(b"four").is_err(), "persistent plan keeps firing");
        assert_eq!(env.injected("segment-append"), 2);
    }

    #[test]
    fn arming_counts_from_arm_time_not_construction() {
        let env = fault();
        let mut f = env.new_writable("000001.log").unwrap();
        f.append(b"before").unwrap();
        env.arm(FaultPlan::persistent("segment-append", FaultKind::Io));
        assert!(f.append(b"after").is_err(), "next op after arming fails");
    }

    #[test]
    fn transient_plan_recovers() {
        let env = fault();
        env.arm(FaultPlan::transient("manifest-create", 0, FaultKind::Io, 2));
        assert!(env.new_writable("MANIFEST-000001").is_err());
        assert!(env.new_writable("MANIFEST-000001").is_err());
        env.new_writable("MANIFEST-000001").unwrap();
        assert_eq!(env.injected("manifest-create"), 2);
    }

    #[test]
    fn disarm_heals_immediately() {
        let env = fault();
        env.arm(FaultPlan::persistent("dir-sync", FaultKind::Io));
        assert!(env.sync_dir().is_err());
        env.disarm_all();
        env.sync_dir().unwrap();
        assert_eq!(env.injected("dir-sync"), 1, "counters survive disarm");
    }

    #[test]
    fn enospc_has_the_storage_full_kind() {
        let env = fault();
        env.arm(FaultPlan::persistent("table-create", FaultKind::Enospc));
        let Err(err) = env.new_writable("7.sst") else {
            panic!("create must fail")
        };
        match err {
            StorageError::Io(io) => {
                assert_eq!(io.kind(), io::ErrorKind::StorageFull)
            }
            other => panic!("expected Io(StorageFull), got {other:?}"),
        }
    }

    #[test]
    fn short_write_tears_the_append() {
        let inner = Arc::new(MemEnv::new(None));
        let env = FaultEnv::new(Arc::clone(&inner) as Arc<dyn Env>);
        env.arm(FaultPlan::nth("segment-append", 1, FaultKind::ShortWrite));
        let mut f = env.new_writable("000001.log").unwrap();
        f.append(b"whole-frame-1").unwrap();
        assert!(f.append(b"torn-frame-02").is_err());
        let file = inner.open_random("000001.log").unwrap();
        assert_eq!(
            file.len(),
            13 + 6,
            "first frame whole, second torn at half"
        );
    }

    #[test]
    fn faults_only_hit_their_own_site() {
        let env = fault();
        env.arm(FaultPlan::persistent("manifest-append", FaultKind::Io));
        let mut log = env.new_writable("000001.log").unwrap();
        log.append(b"wal traffic unaffected").unwrap();
        let mut man = env.new_writable("MANIFEST-000001").unwrap();
        assert!(man.append(b"edit").is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in 0..64u64 {
            let a = FaultPlan::for_seed(seed);
            let b = FaultPlan::for_seed(seed);
            assert_eq!(a.site, b.site);
            assert_eq!(a.after, b.after);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.count, b.count);
        }
        // And the walk actually varies with the seed.
        let distinct: std::collections::HashSet<_> =
            (0..64u64).map(|s| FaultPlan::for_seed(s).site).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    #[should_panic(expected = "unknown trip point")]
    fn unknown_site_is_rejected_at_arm_time() {
        FaultPlan::persistent("segment-rename", FaultKind::Io);
    }
}
