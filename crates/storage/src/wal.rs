//! Write-ahead log: crash-durable record batches.
//!
//! LSMs append updates "to an on-disk commit-log before being applied to
//! the in-memory component" (§2.1) so recovery can reconstruct lost
//! operations. Each frame is `[len u32][crc u32][payload]` where the
//! payload is a batch of encoded [`Record`]s; recovery replays frames until
//! the first corrupt or truncated one (LevelDB semantics: a torn tail is
//! data loss at the point of the crash, not an error).

use crate::env::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::record::{crc32, encode_record_parts, Record};

/// Returns the canonical WAL file name for log `number`.
pub fn wal_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

/// Parses a WAL segment file name back into its generation number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_suffix(".log")?.parse().ok()
}

/// Bytes of the per-frame header (`len u32` + `crc u32`). Group-commit
/// callers reserve this much at the start of their batch buffer so
/// [`WalWriter::append_group_frame`] can patch the header in place.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Sequence number reserved for in-frame annotation records.
///
/// Annotations ride the record encoding (so legacy replay code walks over
/// them without a format change) but carry frame metadata, not data: the
/// replay path strips them out of the recovered records and excludes this
/// sentinel from `max_seq`, so the store's sequence counter never jumps
/// to `u64::MAX` after recovering an annotated log.
pub const ANNOTATION_SEQ: u64 = u64::MAX;

/// Metadata a sharded router stamps on each per-shard sub-batch frame.
///
/// When a cross-shard `WriteBatch` is split, every shard's sub-batch is
/// one group-commit frame opening with one of these. The shared
/// `batch_id` ties sibling frames together across shard WALs; `shard` /
/// `shard_count` say which slice this is of how many; `ops` is the
/// sub-batch's record count. Because a frame replays all-or-nothing, a
/// recovered annotation proves its whole sub-batch was recovered with it
/// — the per-shard half of the documented cross-shard atomicity rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAnnotation {
    /// Router-wide id shared by every sub-batch split from one `WriteBatch`.
    pub batch_id: u64,
    /// Which shard this sub-batch was routed to.
    pub shard: u32,
    /// How many shards received a non-empty sub-batch of the parent batch.
    pub shard_count: u32,
    /// Number of real records in this sub-batch (excluding the annotation).
    pub ops: u32,
}

impl BatchAnnotation {
    /// Encodes the annotation as a record (key = packed metadata,
    /// seq = [`ANNOTATION_SEQ`], tombstone) appended to `out`, suitable
    /// for placing at the head of a group-commit frame payload.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut key = [0u8; 20];
        key[..8].copy_from_slice(&self.batch_id.to_le_bytes());
        key[8..12].copy_from_slice(&self.shard.to_le_bytes());
        key[12..16].copy_from_slice(&self.shard_count.to_le_bytes());
        key[16..20].copy_from_slice(&self.ops.to_le_bytes());
        encode_record_parts(out, &key, ANNOTATION_SEQ, None);
    }

    fn decode(key: &[u8]) -> Result<Self> {
        if key.len() != 20 {
            return Err(StorageError::Corruption(format!(
                "wal annotation record key is {} bytes, expected 20",
                key.len()
            )));
        }
        Ok(Self {
            batch_id: u64::from_le_bytes(key[..8].try_into().expect("8 bytes")),
            shard: u32::from_le_bytes(key[8..12].try_into().expect("4 bytes")),
            shard_count: u32::from_le_bytes(key[12..16].try_into().expect("4 bytes")),
            ops: u32::from_le_bytes(key[16..20].try_into().expect("4 bytes")),
        })
    }
}

/// Magic bytes opening every generation-numbered WAL segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"FLODBSEG";

/// Bytes of the segment header: magic, generation (`u64`), and a CRC of
/// the generation so a damaged header is distinguishable from a torn one.
pub const SEGMENT_HEADER_BYTES: usize = 20;

/// Encodes the segment header for `generation`.
pub fn segment_header(generation: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..16].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&h[8..16]);
    h[16..].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Appends record batches to a log file.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    sync_on_write: bool,
    bytes: u64,
    /// Reusable frame scratch: cleared (capacity retained) across appends
    /// so steady-state appends allocate nothing.
    scratch: Vec<u8>,
    /// Nanoseconds spent in per-append fsync since the last
    /// [`Self::take_sync_ns`]; 0 with `sync_on_write` off.
    sync_ns: u64,
}

impl WalWriter {
    /// Creates a writer on `file`; `sync_on_write` forces an fsync per
    /// batch (durability at the cost of latency).
    pub fn new(file: Box<dyn WritableFile>, sync_on_write: bool) -> Self {
        Self {
            file,
            sync_on_write,
            bytes: 0,
            scratch: Vec::new(),
            sync_ns: 0,
        }
    }

    /// Creates the segment file for `generation` and writes (and syncs)
    /// its header, then syncs the directory: fsyncing a new file's
    /// contents does not persist its directory entry, and a segment that
    /// vanishes with the directory after a crash would silently drop
    /// every fsync-acknowledged write it held. The returned writer's
    /// [`Self::bytes_written`] counts the header, so rotation thresholds
    /// compare against total file size.
    ///
    /// A crash before the header reaches disk leaves a short file, which
    /// [`replay_segment`] treats as an empty (torn) segment — never as
    /// recovered frames.
    pub fn create_segment(
        env: &dyn Env,
        generation: u64,
        sync_on_write: bool,
    ) -> Result<Self> {
        let mut file = env.new_writable(&wal_file_name(generation))?;
        file.append(&segment_header(generation))?;
        file.sync()?;
        env.sync_dir()?;
        Ok(Self {
            file,
            sync_on_write,
            bytes: SEGMENT_HEADER_BYTES as u64,
            scratch: Vec::new(),
            sync_ns: 0,
        })
    }

    /// Appends one batch of records as a single frame.
    pub fn append_batch(&mut self, records: &[Record]) -> Result<()> {
        let mut frame = std::mem::take(&mut self.scratch);
        frame.clear();
        frame.extend_from_slice(&[0u8; 8]); // Header space, patched below.
        for r in records {
            r.encode_into(&mut frame);
        }
        let len = (frame.len() - 8) as u32;
        let crc = crc32(&frame[8..]);
        frame[..4].copy_from_slice(&len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        let result = self.append_raw(&frame);
        self.scratch = frame;
        result
    }

    /// Appends an already-encoded multi-record payload as one frame.
    ///
    /// `payload` must be a concatenation of records serialized with
    /// [`crate::record::encode_record_parts`] (or `Record::encode_into`) —
    /// exactly what [`replay`] decodes. This is the group-commit entry
    /// point: writers encode into a shared batch buffer and the group
    /// leader hands the finished payload here, so the frame header is the
    /// only per-group overhead and the payload bytes are never re-copied.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<()> {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        // Small frames: assemble in the scratch and issue one append (one
        // write syscall / one env lock). Large frames: two appends beat
        // re-copying the whole group payload.
        if payload.len() <= 4096 {
            let mut frame = std::mem::take(&mut self.scratch);
            frame.clear();
            frame.extend_from_slice(&header);
            frame.extend_from_slice(payload);
            let result = self.append_raw(&frame);
            self.scratch = frame;
            return result;
        }
        self.file.append(&header)?;
        self.file.append(payload)?;
        if self.sync_on_write {
            self.sync_timed()?;
        }
        self.bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Appends a group frame assembled in place, with one write.
    ///
    /// `frame` must start with [`FRAME_HEADER_BYTES`] of reserved space
    /// (see `GroupCommitConfig::frame_prefix`) followed by encoded
    /// records; the length and CRC are patched into the reserved space
    /// here, so the batch payload is never re-copied on its way to the
    /// log. Replays exactly like [`Self::append_batch`] frames.
    pub fn append_group_frame(&mut self, frame: &mut [u8]) -> Result<()> {
        debug_assert!(frame.len() >= FRAME_HEADER_BYTES);
        let len = (frame.len() - FRAME_HEADER_BYTES) as u32;
        let crc = crc32(&frame[FRAME_HEADER_BYTES..]);
        frame[..4].copy_from_slice(&len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.append_raw(frame)
    }

    /// Appends one fully-framed chunk (header already in place).
    fn append_raw(&mut self, frame: &[u8]) -> Result<()> {
        self.file.append(frame)?;
        if self.sync_on_write {
            self.sync_timed()?;
        }
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs the file, accumulating the elapsed time into the bucket
    /// drained by [`Self::take_sync_ns`].
    fn sync_timed(&mut self) -> Result<()> {
        let t0 = std::time::Instant::now();
        let result = self.file.sync();
        self.sync_ns += t0.elapsed().as_nanos() as u64;
        result
    }

    /// Drains the nanoseconds spent in per-append fsync since the last
    /// call (telemetry: attributed to the committed group by the log
    /// manager, which calls this right after each append and before any
    /// rotation swaps the writer).
    pub fn take_sync_ns(&mut self) -> u64 {
        std::mem::take(&mut self.sync_ns)
    }

    /// Total bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and closes the log.
    pub fn finish(mut self) -> Result<()> {
        self.file.sync()?;
        self.file.finish()
    }
}

/// Replays every intact frame of a log file, in order.
///
/// Returns the recovered records and the largest sequence number seen
/// (useful for resuming the global sequence counter). This is the raw,
/// headerless entry point; generation-numbered segments replay through
/// [`replay_segment`], which verifies the segment header first.
pub fn replay(env: &dyn Env, name: &str) -> Result<(Vec<Record>, u64)> {
    let file: std::sync::Arc<dyn RandomAccessFile> = env.open_random(name)?;
    let size = file.len();
    let data = file.read_at(0, size as usize)?;
    let replayed = replay_frames(&data, 0)?;
    Ok((replayed.records, replayed.max_seq))
}

/// The result of replaying one generation-numbered segment.
#[derive(Debug)]
pub struct SegmentReplay {
    /// Every record of every intact frame, in append order.
    pub records: Vec<Record>,
    /// Largest sequence number seen (0 when empty).
    pub max_seq: u64,
    /// Sub-batch annotations recovered from intact frames, in append
    /// order. Empty for unsharded stores; the sharded recovery sweep uses
    /// these to prove every recovered sub-batch is whole.
    pub annotations: Vec<BatchAnnotation>,
    /// Whether the segment ended cleanly at a frame boundary; a torn or
    /// corrupt tail (including a torn header) marks a crash point whose
    /// remainder was truncated. Diagnostic — sealed segments are
    /// expected clean, the newest one may not be.
    pub clean: bool,
}

/// Replays a generation-numbered segment created by
/// [`WalWriter::create_segment`], verifying its header.
///
/// A file opening with [`SEGMENT_MAGIC`] but shorter than the full
/// header is a segment torn at creation: empty, not clean. A complete
/// header with a CRC mismatch or a generation that does not match
/// `expected_generation` is corruption — an error, because no crash
/// interleaving produces it. A file *not* opening with the magic is
/// treated as a **legacy headerless log** (written before segment
/// headers existed) and replayed from offset 0, so pre-upgrade stores
/// stay openable; real corruption of the first frame then simply ends
/// replay at byte 0, exactly as it always did.
pub fn replay_segment(
    env: &dyn Env,
    name: &str,
    expected_generation: u64,
) -> Result<SegmentReplay> {
    let file: std::sync::Arc<dyn RandomAccessFile> = env.open_random(name)?;
    let data = file.read_at(0, file.len() as usize)?;
    if data.len() >= SEGMENT_MAGIC.len() && &data[..8] != SEGMENT_MAGIC.as_slice() {
        // Legacy headerless log: frames from byte 0. A non-empty file
        // yielding *no* intact frame is indistinguishable from a headered
        // segment whose magic was corrupted away — and silently reporting
        // an empty segment would vaporize that segment's fsynced frames —
        // so it is reported as corruption rather than success.
        let replayed = replay_frames(&data, 0)?;
        if replayed.records.is_empty() {
            return Err(StorageError::Corruption(format!(
                "{name}: neither a headered WAL segment nor a replayable \
                 legacy log"
            )));
        }
        return Ok(replayed);
    }
    if data.len() < SEGMENT_HEADER_BYTES {
        // Torn at creation (magic prefix or shorter than one frame
        // header): nothing to recover either way.
        return Ok(SegmentReplay {
            records: Vec::new(),
            max_seq: 0,
            annotations: Vec::new(),
            clean: false,
        });
    }
    let generation = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(data[16..20].try_into().expect("4 bytes"));
    if crc32(&data[8..16]) != crc {
        return Err(StorageError::Corruption(format!(
            "{name}: WAL segment header checksum mismatch"
        )));
    }
    if generation != expected_generation {
        return Err(StorageError::Corruption(format!(
            "{name}: segment header claims generation {generation}, \
             file name says {expected_generation}"
        )));
    }
    replay_frames(&data, SEGMENT_HEADER_BYTES)
}

/// Walks `[len][crc][payload]` frames from `start`, stopping at the first
/// torn or corrupt one. Records with the [`ANNOTATION_SEQ`] sentinel are
/// decoded into [`BatchAnnotation`]s instead of joining the recovered
/// records (and never contribute to `max_seq`).
fn replay_frames(data: &[u8], start: usize) -> Result<SegmentReplay> {
    let mut records = Vec::new();
    let mut annotations = Vec::new();
    let mut max_seq = 0u64;
    let mut pos = start;
    loop {
        if pos + 8 > data.len() {
            break; // Clean end or torn frame header: stop.
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // Torn payload: stop at the last complete frame.
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // Corrupt frame: stop replaying.
        }
        let mut p = 0;
        while p < payload.len() {
            let r = Record::decode_from(payload, &mut p).map_err(|e| {
                StorageError::Corruption(format!("wal frame decoded badly after crc pass: {e}"))
            })?;
            if r.seq == ANNOTATION_SEQ {
                annotations.push(BatchAnnotation::decode(&r.key)?);
                continue;
            }
            max_seq = max_seq.max(r.seq);
            records.push(r);
        }
        pos += 8 + len;
    }
    let clean = pos == data.len();
    Ok(SegmentReplay {
        records,
        max_seq,
        annotations,
        clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn records(range: std::ops::Range<u64>) -> Vec<Record> {
        range
            .map(|i| Record::put(i.to_be_bytes().as_slice(), i, b"v".as_slice()))
            .collect()
    }

    #[test]
    fn write_and_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        let (recovered, max_seq) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(max_seq, 19);
        assert_eq!(recovered[5].key.as_ref(), 5u64.to_be_bytes());
    }

    #[test]
    fn replay_stops_at_torn_frame() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good_len = w.bytes_written();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        // Simulate a crash that tore the second frame: rewrite a truncated
        // copy of the file.
        let full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, (good_len + 5) as usize)
            .unwrap();
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 10, "only the intact frame replays");
    }

    #[test]
    fn replay_stops_at_corrupt_crc() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..5)).unwrap();
        w.append_batch(&records(5..9)).unwrap();
        w.finish().unwrap();

        let mut full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, env.open_random("001.log").unwrap().len() as usize)
            .unwrap();
        // Flip a payload byte in the second frame.
        let flip_at = full.len() - 3;
        full[flip_at] ^= 0xFF;
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 5);
    }

    #[test]
    fn empty_log_replays_empty() {
        let env = MemEnv::new(None);
        let w = WalWriter::new(env.new_writable("e.log").unwrap(), false);
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "e.log").unwrap();
        assert!(recovered.is_empty());
        assert_eq!(max_seq, 0);
    }

    #[test]
    fn group_frame_replays_identically_to_singles() {
        // A group of N records committed as one frame must recover the
        // exact same state as N single-record frames: recovery equivalence
        // is what lets group commit replace the per-put pipeline without
        // touching replay.
        let env = MemEnv::new(None);
        let batch = {
            let mut records = records(0..25);
            records[7].value = None; // A tombstone inside the group.
            records
        };

        let mut grouped = WalWriter::new(env.new_writable("group.log").unwrap(), false);
        let mut payload = Vec::new();
        for r in &batch {
            crate::record::encode_record_parts(&mut payload, &r.key, r.seq, r.value.as_deref());
        }
        grouped.append_payload(&payload).unwrap();
        grouped.finish().unwrap();

        // The in-place framing entry point produces byte-identical frames.
        let mut inplace = WalWriter::new(env.new_writable("inplace.log").unwrap(), false);
        let mut frame = vec![0u8; FRAME_HEADER_BYTES];
        frame.extend_from_slice(&payload);
        inplace.append_group_frame(&mut frame).unwrap();
        inplace.finish().unwrap();

        let mut singles = WalWriter::new(env.new_writable("singles.log").unwrap(), false);
        for r in &batch {
            singles.append_batch(std::slice::from_ref(r)).unwrap();
        }
        singles.finish().unwrap();

        let (from_group, group_seq) = replay(&env, "group.log").unwrap();
        let (from_singles, singles_seq) = replay(&env, "singles.log").unwrap();
        assert_eq!(from_group, from_singles);
        assert_eq!(group_seq, singles_seq);
        assert_eq!(from_group, batch);
        let (from_inplace, _) = replay(&env, "inplace.log").unwrap();
        assert_eq!(from_inplace, batch);
    }

    #[test]
    fn torn_group_frame_truncates_cleanly() {
        // Crash mid-way through a group frame: every earlier frame
        // replays, the torn group is dropped whole (LevelDB semantics) —
        // no partial group, no error.
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good_len = w.bytes_written();
        let mut payload = Vec::new();
        for r in records(10..30) {
            r.encode_into(&mut payload);
        }
        w.append_payload(&payload).unwrap();
        w.finish().unwrap();

        let full_len = env.open_random("001.log").unwrap().len();
        // Tear the group frame at every prefix length: header-only, header
        // plus part of the payload, all the way to one byte short.
        for cut in good_len..full_len {
            let torn = env
                .open_random("001.log")
                .unwrap()
                .read_at(0, cut as usize)
                .unwrap();
            let name = format!("torn-{cut}.log");
            let mut f = env.new_writable(&name).unwrap();
            f.append(&torn).unwrap();
            let (recovered, max_seq) = replay(&env, &name).unwrap();
            assert_eq!(recovered.len(), 10, "cut at {cut}");
            assert_eq!(max_seq, 9, "cut at {cut}");
        }
        // The intact file still replays everything.
        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 30);
    }

    #[test]
    fn append_scratch_is_reused() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("s.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let cap = w.scratch.capacity();
        assert!(cap > 0, "scratch must be retained after an append");
        for _ in 0..5 {
            w.append_batch(&records(0..10)).unwrap();
        }
        assert_eq!(w.scratch.capacity(), cap, "same-size batches must not realloc");
        let (recovered, _) = replay(&env, "s.log").unwrap();
        assert_eq!(recovered.len(), 60);
    }

    #[test]
    fn segment_roundtrip_and_name_parsing() {
        assert_eq!(parse_wal_name("000007.log"), Some(7));
        assert_eq!(parse_wal_name("MANIFEST-000007"), None);
        assert_eq!(parse_wal_name("matrix.sst"), None);

        let env = MemEnv::new(None);
        let mut w = WalWriter::create_segment(&env, 3, false).unwrap();
        assert_eq!(w.bytes_written(), SEGMENT_HEADER_BYTES as u64);
        w.append_batch(&records(0..10)).unwrap();
        w.finish().unwrap();

        let r = replay_segment(&env, &wal_file_name(3), 3).unwrap();
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.max_seq, 9);
        assert!(r.clean);

        // A header/name generation mismatch is corruption, not a tear.
        assert!(replay_segment(&env, &wal_file_name(3), 4).is_err());
    }

    #[test]
    fn legacy_headerless_log_replays_as_a_segment() {
        // Logs written before segment headers existed (no magic) must
        // stay recoverable after an upgrade: frames replay from byte 0.
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("000117.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good = w.bytes_written();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        let r = replay_segment(&env, "000117.log", 117).unwrap();
        assert_eq!(r.records.len(), 20);
        assert!(r.clean);

        // A torn legacy tail truncates exactly like it always did.
        let torn = env
            .open_random("000117.log")
            .unwrap()
            .read_at(0, (good + 3) as usize)
            .unwrap();
        let mut f = env.new_writable("000117.log").unwrap();
        f.append(&torn).unwrap();
        let r = replay_segment(&env, "000117.log", 117).unwrap();
        assert_eq!(r.records.len(), 10);
        assert!(!r.clean);
    }

    #[test]
    fn torn_segment_header_is_an_empty_segment() {
        let env = MemEnv::new(None);
        let header = segment_header(9);
        for cut in 0..SEGMENT_HEADER_BYTES {
            let mut f = env.new_writable("torn.log").unwrap();
            f.append(&header[..cut]).unwrap();
            let r = replay_segment(&env, "torn.log", 9).unwrap();
            assert!(r.records.is_empty(), "cut at {cut}");
            assert!(!r.clean, "cut at {cut}");
        }
    }

    #[test]
    fn segment_with_torn_tail_is_not_clean() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::create_segment(&env, 1, false).unwrap();
        w.append_batch(&records(0..5)).unwrap();
        let good = w.bytes_written();
        w.append_batch(&records(5..10)).unwrap();
        w.finish().unwrap();

        let full = env
            .open_random(&wal_file_name(1))
            .unwrap()
            .read_at(0, (good + 3) as usize)
            .unwrap();
        let mut f = env.new_writable(&wal_file_name(1)).unwrap();
        f.append(&full).unwrap();

        let r = replay_segment(&env, &wal_file_name(1), 1).unwrap();
        assert_eq!(r.records.len(), 5, "intact prefix replays");
        assert!(!r.clean, "a torn tail must be reported");
    }

    #[test]
    fn annotated_frames_replay_records_and_annotations_separately() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::create_segment(&env, 1, false).unwrap();

        // Two annotated sub-batch frames (as a sharded router writes them)
        // plus one plain frame (as a point op writes it).
        let ann_a = BatchAnnotation {
            batch_id: 42,
            shard: 0,
            shard_count: 2,
            ops: 3,
        };
        let mut payload = Vec::new();
        ann_a.encode_into(&mut payload);
        for r in records(0..3) {
            r.encode_into(&mut payload);
        }
        w.append_payload(&payload).unwrap();

        let ann_b = BatchAnnotation {
            batch_id: 42,
            shard: 1,
            shard_count: 2,
            ops: 2,
        };
        payload.clear();
        ann_b.encode_into(&mut payload);
        for r in records(3..5) {
            r.encode_into(&mut payload);
        }
        w.append_payload(&payload).unwrap();

        w.append_batch(&records(5..6)).unwrap();
        w.finish().unwrap();

        let r = replay_segment(&env, &wal_file_name(1), 1).unwrap();
        assert_eq!(r.records.len(), 6, "annotations are not data records");
        assert_eq!(r.max_seq, 5, "the annotation sentinel must not leak into max_seq");
        assert_eq!(r.annotations, vec![ann_a, ann_b]);
        assert!(r.clean);
        assert!(r.records.iter().all(|rec| rec.seq != ANNOTATION_SEQ));

        // A torn second frame drops that sub-batch's annotation and records
        // together — whole-sub-batch semantics.
        let file = env.open_random(&wal_file_name(1)).unwrap();
        let bytes = file.read_at(0, file.len() as usize).unwrap();
        // Recompute the first frame's extent from its header.
        let at = SEGMENT_HEADER_BYTES;
        let frame_len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let first_frame_end = at + 8 + frame_len;
        let mut f = env.new_writable("torn.log").unwrap();
        f.append(&segment_header(1)).unwrap();
        f.append(&bytes[SEGMENT_HEADER_BYTES..first_frame_end + 4]).unwrap();
        let torn = replay_segment(&env, "torn.log", 1).unwrap();
        assert_eq!(torn.records.len(), 3);
        assert_eq!(torn.annotations, vec![ann_a]);
        assert!(!torn.clean);
    }

    #[test]
    fn tombstones_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("t.log").unwrap(), true);
        w.append_batch(&[Record::tombstone(b"k".as_slice(), 3)]).unwrap();
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "t.log").unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].is_tombstone());
        assert_eq!(max_seq, 3);
    }
}
