//! Write-ahead log: crash-durable record batches.
//!
//! LSMs append updates "to an on-disk commit-log before being applied to
//! the in-memory component" (§2.1) so recovery can reconstruct lost
//! operations. Each frame is `[len u32][crc u32][payload]` where the
//! payload is a batch of encoded [`Record`]s; recovery replays frames until
//! the first corrupt or truncated one (LevelDB semantics: a torn tail is
//! data loss at the point of the crash, not an error).

use crate::env::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::record::{crc32, Record};

/// Returns the canonical WAL file name for log `number`.
pub fn wal_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

/// Bytes of the per-frame header (`len u32` + `crc u32`). Group-commit
/// callers reserve this much at the start of their batch buffer so
/// [`WalWriter::append_group_frame`] can patch the header in place.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Appends record batches to a log file.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    sync_on_write: bool,
    bytes: u64,
    /// Reusable frame scratch: cleared (capacity retained) across appends
    /// so steady-state appends allocate nothing.
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates a writer on `file`; `sync_on_write` forces an fsync per
    /// batch (durability at the cost of latency).
    pub fn new(file: Box<dyn WritableFile>, sync_on_write: bool) -> Self {
        Self {
            file,
            sync_on_write,
            bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// Appends one batch of records as a single frame.
    pub fn append_batch(&mut self, records: &[Record]) -> Result<()> {
        let mut frame = std::mem::take(&mut self.scratch);
        frame.clear();
        frame.extend_from_slice(&[0u8; 8]); // Header space, patched below.
        for r in records {
            r.encode_into(&mut frame);
        }
        let len = (frame.len() - 8) as u32;
        let crc = crc32(&frame[8..]);
        frame[..4].copy_from_slice(&len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        let result = self.append_raw(&frame);
        self.scratch = frame;
        result
    }

    /// Appends an already-encoded multi-record payload as one frame.
    ///
    /// `payload` must be a concatenation of records serialized with
    /// [`crate::record::encode_record_parts`] (or `Record::encode_into`) —
    /// exactly what [`replay`] decodes. This is the group-commit entry
    /// point: writers encode into a shared batch buffer and the group
    /// leader hands the finished payload here, so the frame header is the
    /// only per-group overhead and the payload bytes are never re-copied.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<()> {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        // Small frames: assemble in the scratch and issue one append (one
        // write syscall / one env lock). Large frames: two appends beat
        // re-copying the whole group payload.
        if payload.len() <= 4096 {
            let mut frame = std::mem::take(&mut self.scratch);
            frame.clear();
            frame.extend_from_slice(&header);
            frame.extend_from_slice(payload);
            let result = self.append_raw(&frame);
            self.scratch = frame;
            return result;
        }
        self.file.append(&header)?;
        self.file.append(payload)?;
        if self.sync_on_write {
            self.file.sync()?;
        }
        self.bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Appends a group frame assembled in place, with one write.
    ///
    /// `frame` must start with [`FRAME_HEADER_BYTES`] of reserved space
    /// (see `GroupCommitConfig::frame_prefix`) followed by encoded
    /// records; the length and CRC are patched into the reserved space
    /// here, so the batch payload is never re-copied on its way to the
    /// log. Replays exactly like [`Self::append_batch`] frames.
    pub fn append_group_frame(&mut self, frame: &mut [u8]) -> Result<()> {
        debug_assert!(frame.len() >= FRAME_HEADER_BYTES);
        let len = (frame.len() - FRAME_HEADER_BYTES) as u32;
        let crc = crc32(&frame[FRAME_HEADER_BYTES..]);
        frame[..4].copy_from_slice(&len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.append_raw(frame)
    }

    /// Appends one fully-framed chunk (header already in place).
    fn append_raw(&mut self, frame: &[u8]) -> Result<()> {
        self.file.append(frame)?;
        if self.sync_on_write {
            self.file.sync()?;
        }
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Total bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and closes the log.
    pub fn finish(mut self) -> Result<()> {
        self.file.sync()?;
        self.file.finish()
    }
}

/// Replays every intact frame of a log file, in order.
///
/// Returns the recovered records and the largest sequence number seen
/// (useful for resuming the global sequence counter).
pub fn replay(env: &dyn Env, name: &str) -> Result<(Vec<Record>, u64)> {
    let file: std::sync::Arc<dyn RandomAccessFile> = env.open_random(name)?;
    let size = file.len();
    let data = file.read_at(0, size as usize)?;
    let mut records = Vec::new();
    let mut max_seq = 0u64;
    let mut pos = 0usize;
    loop {
        if pos + 8 > data.len() {
            break; // Clean end or torn frame header: stop.
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // Torn payload: stop at the last complete frame.
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // Corrupt frame: stop replaying.
        }
        let mut p = 0;
        while p < payload.len() {
            let r = Record::decode_from(payload, &mut p).map_err(|e| {
                StorageError::Corruption(format!("wal frame decoded badly after crc pass: {e}"))
            })?;
            max_seq = max_seq.max(r.seq);
            records.push(r);
        }
        pos += 8 + len;
    }
    Ok((records, max_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn records(range: std::ops::Range<u64>) -> Vec<Record> {
        range
            .map(|i| Record::put(i.to_be_bytes().as_slice(), i, b"v".as_slice()))
            .collect()
    }

    #[test]
    fn write_and_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        let (recovered, max_seq) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(max_seq, 19);
        assert_eq!(recovered[5].key.as_ref(), 5u64.to_be_bytes());
    }

    #[test]
    fn replay_stops_at_torn_frame() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good_len = w.bytes_written();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        // Simulate a crash that tore the second frame: rewrite a truncated
        // copy of the file.
        let full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, (good_len + 5) as usize)
            .unwrap();
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 10, "only the intact frame replays");
    }

    #[test]
    fn replay_stops_at_corrupt_crc() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..5)).unwrap();
        w.append_batch(&records(5..9)).unwrap();
        w.finish().unwrap();

        let mut full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, env.open_random("001.log").unwrap().len() as usize)
            .unwrap();
        // Flip a payload byte in the second frame.
        let flip_at = full.len() - 3;
        full[flip_at] ^= 0xFF;
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 5);
    }

    #[test]
    fn empty_log_replays_empty() {
        let env = MemEnv::new(None);
        let w = WalWriter::new(env.new_writable("e.log").unwrap(), false);
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "e.log").unwrap();
        assert!(recovered.is_empty());
        assert_eq!(max_seq, 0);
    }

    #[test]
    fn group_frame_replays_identically_to_singles() {
        // A group of N records committed as one frame must recover the
        // exact same state as N single-record frames: recovery equivalence
        // is what lets group commit replace the per-put pipeline without
        // touching replay.
        let env = MemEnv::new(None);
        let batch = {
            let mut records = records(0..25);
            records[7].value = None; // A tombstone inside the group.
            records
        };

        let mut grouped = WalWriter::new(env.new_writable("group.log").unwrap(), false);
        let mut payload = Vec::new();
        for r in &batch {
            crate::record::encode_record_parts(&mut payload, &r.key, r.seq, r.value.as_deref());
        }
        grouped.append_payload(&payload).unwrap();
        grouped.finish().unwrap();

        // The in-place framing entry point produces byte-identical frames.
        let mut inplace = WalWriter::new(env.new_writable("inplace.log").unwrap(), false);
        let mut frame = vec![0u8; FRAME_HEADER_BYTES];
        frame.extend_from_slice(&payload);
        inplace.append_group_frame(&mut frame).unwrap();
        inplace.finish().unwrap();

        let mut singles = WalWriter::new(env.new_writable("singles.log").unwrap(), false);
        for r in &batch {
            singles.append_batch(std::slice::from_ref(r)).unwrap();
        }
        singles.finish().unwrap();

        let (from_group, group_seq) = replay(&env, "group.log").unwrap();
        let (from_singles, singles_seq) = replay(&env, "singles.log").unwrap();
        assert_eq!(from_group, from_singles);
        assert_eq!(group_seq, singles_seq);
        assert_eq!(from_group, batch);
        let (from_inplace, _) = replay(&env, "inplace.log").unwrap();
        assert_eq!(from_inplace, batch);
    }

    #[test]
    fn torn_group_frame_truncates_cleanly() {
        // Crash mid-way through a group frame: every earlier frame
        // replays, the torn group is dropped whole (LevelDB semantics) —
        // no partial group, no error.
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good_len = w.bytes_written();
        let mut payload = Vec::new();
        for r in records(10..30) {
            r.encode_into(&mut payload);
        }
        w.append_payload(&payload).unwrap();
        w.finish().unwrap();

        let full_len = env.open_random("001.log").unwrap().len();
        // Tear the group frame at every prefix length: header-only, header
        // plus part of the payload, all the way to one byte short.
        for cut in good_len..full_len {
            let torn = env
                .open_random("001.log")
                .unwrap()
                .read_at(0, cut as usize)
                .unwrap();
            let name = format!("torn-{cut}.log");
            let mut f = env.new_writable(&name).unwrap();
            f.append(&torn).unwrap();
            let (recovered, max_seq) = replay(&env, &name).unwrap();
            assert_eq!(recovered.len(), 10, "cut at {cut}");
            assert_eq!(max_seq, 9, "cut at {cut}");
        }
        // The intact file still replays everything.
        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 30);
    }

    #[test]
    fn append_scratch_is_reused() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("s.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let cap = w.scratch.capacity();
        assert!(cap > 0, "scratch must be retained after an append");
        for _ in 0..5 {
            w.append_batch(&records(0..10)).unwrap();
        }
        assert_eq!(w.scratch.capacity(), cap, "same-size batches must not realloc");
        let (recovered, _) = replay(&env, "s.log").unwrap();
        assert_eq!(recovered.len(), 60);
    }

    #[test]
    fn tombstones_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("t.log").unwrap(), true);
        w.append_batch(&[Record::tombstone(b"k".as_slice(), 3)]).unwrap();
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "t.log").unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].is_tombstone());
        assert_eq!(max_seq, 3);
    }
}
