//! Write-ahead log: crash-durable record batches.
//!
//! LSMs append updates "to an on-disk commit-log before being applied to
//! the in-memory component" (§2.1) so recovery can reconstruct lost
//! operations. Each frame is `[len u32][crc u32][payload]` where the
//! payload is a batch of encoded [`Record`]s; recovery replays frames until
//! the first corrupt or truncated one (LevelDB semantics: a torn tail is
//! data loss at the point of the crash, not an error).

use crate::env::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::record::{crc32, Record};

/// Returns the canonical WAL file name for log `number`.
pub fn wal_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

/// Appends record batches to a log file.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    sync_on_write: bool,
    bytes: u64,
}

impl WalWriter {
    /// Creates a writer on `file`; `sync_on_write` forces an fsync per
    /// batch (durability at the cost of latency).
    pub fn new(file: Box<dyn WritableFile>, sync_on_write: bool) -> Self {
        Self {
            file,
            sync_on_write,
            bytes: 0,
        }
    }

    /// Appends one batch of records as a single frame.
    pub fn append_batch(&mut self, records: &[Record]) -> Result<()> {
        let mut payload = Vec::with_capacity(64 * records.len());
        for r in records {
            r.encode_into(&mut payload);
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.append(&frame)?;
        if self.sync_on_write {
            self.file.sync()?;
        }
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Total bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and closes the log.
    pub fn finish(mut self) -> Result<()> {
        self.file.sync()?;
        self.file.finish()
    }
}

/// Replays every intact frame of a log file, in order.
///
/// Returns the recovered records and the largest sequence number seen
/// (useful for resuming the global sequence counter).
pub fn replay(env: &dyn Env, name: &str) -> Result<(Vec<Record>, u64)> {
    let file: std::sync::Arc<dyn RandomAccessFile> = env.open_random(name)?;
    let size = file.len();
    let data = file.read_at(0, size as usize)?;
    let mut records = Vec::new();
    let mut max_seq = 0u64;
    let mut pos = 0usize;
    loop {
        if pos + 8 > data.len() {
            break; // Clean end or torn frame header: stop.
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // Torn payload: stop at the last complete frame.
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // Corrupt frame: stop replaying.
        }
        let mut p = 0;
        while p < payload.len() {
            let r = Record::decode_from(payload, &mut p).map_err(|e| {
                StorageError::Corruption(format!("wal frame decoded badly after crc pass: {e}"))
            })?;
            max_seq = max_seq.max(r.seq);
            records.push(r);
        }
        pos += 8 + len;
    }
    Ok((records, max_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn records(range: std::ops::Range<u64>) -> Vec<Record> {
        range
            .map(|i| Record::put(i.to_be_bytes().as_slice(), i, b"v".as_slice()))
            .collect()
    }

    #[test]
    fn write_and_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        let (recovered, max_seq) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(max_seq, 19);
        assert_eq!(recovered[5].key.as_ref(), 5u64.to_be_bytes());
    }

    #[test]
    fn replay_stops_at_torn_frame() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..10)).unwrap();
        let good_len = w.bytes_written();
        w.append_batch(&records(10..20)).unwrap();
        w.finish().unwrap();

        // Simulate a crash that tore the second frame: rewrite a truncated
        // copy of the file.
        let full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, (good_len + 5) as usize)
            .unwrap();
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 10, "only the intact frame replays");
    }

    #[test]
    fn replay_stops_at_corrupt_crc() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("001.log").unwrap(), false);
        w.append_batch(&records(0..5)).unwrap();
        w.append_batch(&records(5..9)).unwrap();
        w.finish().unwrap();

        let mut full = env
            .open_random("001.log")
            .unwrap()
            .read_at(0, env.open_random("001.log").unwrap().len() as usize)
            .unwrap();
        // Flip a payload byte in the second frame.
        let flip_at = full.len() - 3;
        full[flip_at] ^= 0xFF;
        let mut f = env.new_writable("001.log").unwrap();
        f.append(&full).unwrap();

        let (recovered, _) = replay(&env, "001.log").unwrap();
        assert_eq!(recovered.len(), 5);
    }

    #[test]
    fn empty_log_replays_empty() {
        let env = MemEnv::new(None);
        let w = WalWriter::new(env.new_writable("e.log").unwrap(), false);
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "e.log").unwrap();
        assert!(recovered.is_empty());
        assert_eq!(max_seq, 0);
    }

    #[test]
    fn tombstones_replay() {
        let env = MemEnv::new(None);
        let mut w = WalWriter::new(env.new_writable("t.log").unwrap(), true);
        w.append_batch(&[Record::tombstone(b"k".as_slice(), 3)]).unwrap();
        w.finish().unwrap();
        let (recovered, max_seq) = replay(&env, "t.log").unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].is_tombstone());
        assert_eq!(max_seq, 3);
    }
}
