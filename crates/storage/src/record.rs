//! Record encoding: varints, CRC32, and the internal key-value record.
//!
//! Every entry crossing the memory/disk boundary is a [`Record`]: a key, a
//! sequence number, and a value or tombstone. Records serialize with
//! length-prefixed varints (the LevelDB wire idiom) and are grouped into
//! blocks (see [`crate::block`]) or WAL frames (see [`crate::wal`]).

use crate::error::{Result, StorageError};

/// Appends a varint-encoded `u64` to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes a varint `u64` from `buf` starting at `*pos`, advancing `*pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut shift = 0u32;
    let mut value = 0u64;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corruption("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StorageError::Corruption("varint overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// CRC-32 (IEEE) over `data`, computed with a small table; used to validate
/// WAL frames and table footers.
pub fn crc32(data: &[u8]) -> u32 {
    // Table generated lazily once; polynomial 0xEDB88320.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Appends one record's serialization directly from its parts, without
/// materializing a [`Record`].
///
/// This is the hot-path encoder: the write path borrows the caller's key
/// and value slices and streams them straight into a shared batch buffer,
/// so a logged put allocates nothing. The layout is identical to
/// [`Record::encode_into`] (which delegates here) and round-trips through
/// [`Record::decode_from`].
pub fn encode_record_parts(out: &mut Vec<u8>, key: &[u8], seq: u64, value: Option<&[u8]>) {
    put_varint(out, key.len() as u64);
    put_varint(out, value.map_or(0, <[u8]>::len) as u64);
    put_varint(out, seq);
    out.push(u8::from(value.is_none()));
    out.extend_from_slice(key);
    if let Some(v) = value {
        out.extend_from_slice(v);
    }
}

/// A single key-value record with its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The user key.
    pub key: Box<[u8]>,
    /// Global sequence number the record was written at.
    pub seq: u64,
    /// Payload; `None` is a delete tombstone.
    pub value: Option<Box<[u8]>>,
}

impl Record {
    /// Creates a put record.
    pub fn put(key: impl Into<Box<[u8]>>, seq: u64, value: impl Into<Box<[u8]>>) -> Self {
        Self {
            key: key.into(),
            seq,
            value: Some(value.into()),
        }
    }

    /// Creates a tombstone record.
    pub fn tombstone(key: impl Into<Box<[u8]>>, seq: u64) -> Self {
        Self {
            key: key.into(),
            seq,
            value: None,
        }
    }

    /// Returns whether this record is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Serialized length in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        let mut scratch = Vec::with_capacity(24);
        put_varint(&mut scratch, self.key.len() as u64);
        put_varint(
            &mut scratch,
            self.value.as_deref().map_or(0, <[u8]>::len) as u64,
        );
        put_varint(&mut scratch, self.seq);
        scratch.len() + 1 + self.key.len() + self.value.as_deref().map_or(0, <[u8]>::len)
    }

    /// Appends the serialized record to `out`.
    ///
    /// Layout: `klen vlen seq flags key value`, with varint lengths and
    /// sequence number and a one-byte flags field (bit 0 = tombstone).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_record_parts(out, &self.key, self.seq, self.value.as_deref());
    }

    /// Decodes one record from `buf` at `*pos`, advancing `*pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let klen = get_varint(buf, pos)? as usize;
        let vlen = get_varint(buf, pos)? as usize;
        let seq = get_varint(buf, pos)?;
        let flags = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corruption("truncated record flags".into()))?;
        *pos += 1;
        let need = klen + if flags & 1 == 0 { vlen } else { 0 };
        if buf.len() < *pos + need {
            return Err(StorageError::Corruption("truncated record body".into()));
        }
        let key: Box<[u8]> = Box::from(&buf[*pos..*pos + klen]);
        *pos += klen;
        let value = if flags & 1 == 1 {
            None
        } else {
            let v: Box<[u8]> = Box::from(&buf[*pos..*pos + vlen]);
            *pos += vlen;
            Some(v)
        };
        Ok(Self { key, seq, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncation_is_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 40);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            Record::put(&b"key"[..], 42, &b"value"[..]),
            Record::tombstone(&b"gone"[..], 7),
            Record::put(&b""[..], 0, &b""[..]),
        ];
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode_into(&mut buf);
            assert_eq!(buf.len() - before, r.encoded_len());
        }
        let mut pos = 0;
        for r in &records {
            let decoded = Record::decode_from(&buf, &mut pos).unwrap();
            assert_eq!(&decoded, r);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn parts_encoding_matches_record_encoding() {
        let cases: [(&[u8], u64, Option<&[u8]>); 4] = [
            (b"key", 42, Some(b"value")),
            (b"gone", 7, None),
            (b"", 0, Some(b"")),
            (b"k", u64::MAX, Some(&[0xAB; 300])),
        ];
        for (key, seq, value) in cases {
            let record = Record {
                key: Box::from(key),
                seq,
                value: value.map(Box::from),
            };
            let mut via_record = Vec::new();
            record.encode_into(&mut via_record);
            let mut via_parts = Vec::new();
            encode_record_parts(&mut via_parts, key, seq, value);
            assert_eq!(via_record, via_parts);
            let mut pos = 0;
            assert_eq!(Record::decode_from(&via_parts, &mut pos).unwrap(), record);
        }
    }

    #[test]
    fn record_truncation_is_error() {
        let mut buf = Vec::new();
        Record::put(&b"key"[..], 1, &b"value"[..]).encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            // Every strict prefix must fail to decode, never panic.
            assert!(Record::decode_from(&buf[..cut], &mut pos).is_err());
        }
    }
}
