//! LSM disk component substrate for the FloDB reproduction.
//!
//! FloDB keeps "the persisting and compaction mechanisms of LevelDB" (§4);
//! this crate is that substrate, built from scratch: sorted-string tables
//! (blocks, index, bloom filter), a write-ahead log, a leveled version set
//! with compaction, and a table (fd) cache in two flavors — the sharded
//! concurrent one FloDB substitutes in (§4, footnote 2) and the
//! global-lock one the baselines contend on.
//!
//! The disk itself is abstracted behind [`env::Env`], with two
//! implementations:
//!
//! - [`env::FsEnv`] — real files, for durability tests;
//! - [`env::MemEnv`] — an in-memory *simulated disk* with an optional
//!   token-bucket write throttle. The throttle reproduces the paper's
//!   experimental bottleneck: a persistence path bounded at a fixed byte
//!   rate (§5.2, "average persistence throughput" line in Figure 9),
//!   without needing the authors' SSD.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod bloom;
pub mod compaction;
pub mod disk;
pub mod env;
pub mod error;
pub mod fault;
pub mod log_manager;
pub mod manifest;
pub mod record;
pub mod sharding;
pub mod sstable;
pub mod table_cache;
pub mod version;
pub mod wal;

pub use disk::{DiskComponent, DiskOptions, DiskStats};
pub use env::{Env, FsEnv, MemEnv, PrefixEnv, ThrottleConfig};
pub use error::{Result, StorageError};
pub use fault::{FaultEnv, FaultKind, FaultPlan};
pub use log_manager::{LogConfig, LogManager, RecoveredWal};
pub use record::Record;
pub use sharding::{read_sharding, shard_dir_name, write_sharding, ShardingSpec};
pub use wal::BatchAnnotation;
