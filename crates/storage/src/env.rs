//! Storage environments: real filesystem and simulated (throttled) disk.
//!
//! The paper's end-to-end experiments are bounded by the persistence
//! bandwidth of one SSD (§5.2: "the persistence throughput is a
//! bottleneck"; §5.5 removes the disk to show memory-component headroom).
//! [`MemEnv`] reproduces that environment: an in-memory object store whose
//! writes drain a token bucket at a configurable byte rate, so the flush
//! path stalls exactly the way a saturated device would. [`FsEnv`] writes
//! real files for durability and recovery testing.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb_sync::lock_order::{ENV_DATA, ENV_FILE, ENV_INNER, ENV_THROTTLE};
use flodb_sync::shim::{ranked_mutex, ranked_rwlock, Mutex, RwLock};

use crate::error::{Result, StorageError};

/// A sequential-append output file.
pub trait WritableFile: Send {
    /// Appends `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Forces buffered data to stable storage.
    fn sync(&mut self) -> Result<()>;
    /// Completes the file; further appends are invalid.
    fn finish(&mut self) -> Result<()>;
}

/// A random-access input file.
pub trait RandomAccessFile: Send + Sync {
    /// Reads exactly `len` bytes at byte offset `off`.
    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>>;
    /// Returns the file length in bytes.
    fn len(&self) -> u64;
    /// Returns whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A storage environment: a flat namespace of named files.
pub trait Env: Send + Sync + 'static {
    /// Creates (truncating) a writable file.
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>>;
    /// Opens an existing file for random-access reads.
    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>>;
    /// Deletes a file (idempotent: missing files are not an error).
    fn delete(&self, name: &str) -> Result<()>;
    /// Returns whether a file exists.
    fn exists(&self, name: &str) -> bool;
    /// Lists all file names.
    fn list(&self) -> Result<Vec<String>>;
    /// Total bytes written through this env (for write-amplification
    /// accounting in the benchmarks).
    fn bytes_written(&self) -> u64;
    /// Forces directory metadata (file creations and deletions) to stable
    /// storage. Deleting a retired WAL segment is only durable once the
    /// directory entry's removal is synced; environments without that
    /// failure mode (the in-memory SimDisk) use this default no-op.
    fn sync_dir(&self) -> Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Simulated in-memory disk with throttling.
// ---------------------------------------------------------------------------

/// Write-throughput throttle parameters for [`MemEnv`].
#[derive(Debug, Clone, Copy)]
pub struct ThrottleConfig {
    /// Sustained write bandwidth in bytes per second.
    pub write_bytes_per_sec: u64,
    /// Burst capacity (token bucket depth) in bytes.
    pub burst_bytes: u64,
}

impl ThrottleConfig {
    /// No throttling: the simulated disk is infinitely fast.
    pub fn unlimited() -> Option<Self> {
        None
    }

    /// A profile shaped like the paper's SSD: with ~270 B per entry
    /// (8 B key + 256 B value + framing) the paper's ~1.2 M entries/s
    /// persistence rate is roughly 320 MB/s of sequential write bandwidth.
    pub fn paper_ssd() -> Self {
        Self {
            write_bytes_per_sec: 320 * 1024 * 1024,
            burst_bytes: 32 * 1024 * 1024,
        }
    }
}

#[derive(Debug)]
struct TokenBucket {
    rate: u64,
    capacity: u64,
    available: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(cfg: ThrottleConfig) -> Self {
        Self {
            rate: cfg.write_bytes_per_sec.max(1),
            capacity: cfg.burst_bytes.max(1),
            available: cfg.burst_bytes as f64,
            last_refill: Instant::now(),
        }
    }

    /// Consumes `n` tokens, returning how long the caller must sleep first.
    fn consume(&mut self, n: u64) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.available =
            (self.available + elapsed * self.rate as f64).min(self.capacity as f64);
        self.available -= n as f64;
        if self.available >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(-self.available / self.rate as f64)
        }
    }
}

#[derive(Default)]
struct MemEnvInner {
    files: HashMap<String, Arc<RwLock<Vec<u8>>>>,
}

/// An in-memory environment, optionally throttled: the *SimDisk*.
///
/// # Examples
///
/// ```
/// use flodb_storage::env::{Env, MemEnv};
///
/// let env = MemEnv::new(None);
/// let mut f = env.new_writable("001.sst").unwrap();
/// f.append(b"hello").unwrap();
/// f.finish().unwrap();
/// let r = env.open_random("001.sst").unwrap();
/// assert_eq!(r.read_at(0, 5).unwrap(), b"hello");
/// ```
pub struct MemEnv {
    inner: Mutex<MemEnvInner>,
    throttle: Option<Arc<Mutex<TokenBucket>>>,
    bytes_written: Arc<std::sync::atomic::AtomicU64>,
}

impl MemEnv {
    /// Creates a new simulated disk; `throttle == None` means unlimited.
    pub fn new(throttle: Option<ThrottleConfig>) -> Self {
        Self {
            inner: ranked_mutex(ENV_INNER, MemEnvInner::default()),
            throttle: throttle.map(|cfg| Arc::new(ranked_mutex(ENV_THROTTLE, TokenBucket::new(cfg)))),
            bytes_written: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }
}

struct MemWritable {
    throttle: Option<Arc<Mutex<TokenBucket>>>,
    bytes_written: Arc<std::sync::atomic::AtomicU64>,
    data: Arc<RwLock<Vec<u8>>>,
}

impl MemWritable {
    fn charge(&self, n: u64) {
        self.bytes_written
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        if let Some(bucket) = &self.throttle {
            let wait = bucket.lock().consume(n);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.charge(data.len() as u64);
        self.data.write().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

struct MemRandom {
    data: Arc<RwLock<Vec<u8>>>,
}

impl RandomAccessFile for MemRandom {
    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.data.read();
        let off = off as usize;
        if off + len > data.len() {
            return Err(StorageError::Corruption(format!(
                "read past end: off {off} len {len} size {}",
                data.len()
            )));
        }
        Ok(data[off..off + len].to_vec())
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }
}

impl Env for MemEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let data = Arc::new(ranked_rwlock(ENV_DATA, Vec::new()));
        self.inner
            .lock()
            .files
            .insert(name.to_string(), Arc::clone(&data));
        Ok(Box::new(MemWritable {
            throttle: self.throttle.clone(),
            bytes_written: Arc::clone(&self.bytes_written),
            data,
        }))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let inner = self.inner.lock();
        let data = inner
            .files
            .get(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        Ok(Arc::new(MemRandom {
            data: Arc::clone(data),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.lock().files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.lock().files.contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.inner.lock().files.keys().cloned().collect())
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Prefixed sub-namespace view of another environment.
// ---------------------------------------------------------------------------

/// A view of a parent [`Env`] restricted to names under a directory-style
/// prefix (`"shard-00/"`), the storage substrate of a sharded store: each
/// shard runs a full, unmodified store against its own `PrefixEnv`, so its
/// WAL segments, SSTables and manifest land under `shard-NN/` of one root.
///
/// The parent keeps its flat namespace; this wrapper only rewrites names
/// on the way in and filters/strips them on the way out of [`Env::list`].
/// [`Env::bytes_written`] and [`Env::sync_dir`] are forwarded to the
/// parent (the write-amplification counter and directory durability are
/// properties of the underlying device, not of one shard's slice of it).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use flodb_storage::env::{Env, MemEnv, PrefixEnv};
///
/// let root: Arc<dyn Env> = Arc::new(MemEnv::new(None));
/// let shard = PrefixEnv::new(Arc::clone(&root), "shard-00");
/// shard.new_writable("000001.log").unwrap();
/// assert!(root.exists("shard-00/000001.log"));
/// assert_eq!(shard.list().unwrap(), vec!["000001.log".to_string()]);
/// ```
pub struct PrefixEnv {
    parent: Arc<dyn Env>,
    /// The prefix including its trailing separator (`"shard-00/"`).
    prefix: String,
}

impl PrefixEnv {
    /// Wraps `parent`, mapping every name to `<dir>/<name>`. A trailing
    /// `/` on `dir` is accepted but not required.
    pub fn new(parent: Arc<dyn Env>, dir: &str) -> Self {
        let mut prefix = dir.trim_end_matches('/').to_string();
        prefix.push('/');
        Self { parent, prefix }
    }

    fn full(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }
}

impl Env for PrefixEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        self.parent.new_writable(&self.full(name))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        self.parent.open_random(&self.full(name))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.parent.delete(&self.full(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.parent.exists(&self.full(name))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self
            .parent
            .list()?
            .into_iter()
            .filter_map(|n| n.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }

    fn bytes_written(&self) -> u64 {
        self.parent.bytes_written()
    }

    fn sync_dir(&self) -> Result<()> {
        self.parent.sync_dir()
    }
}

// ---------------------------------------------------------------------------
// Real filesystem environment.
// ---------------------------------------------------------------------------

/// A real-filesystem environment rooted at a directory.
pub struct FsEnv {
    root: PathBuf,
    bytes_written: Arc<std::sync::atomic::AtomicU64>,
}

impl FsEnv {
    /// Creates an env rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            bytes_written: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct FsWritable {
    file: std::fs::File,
    bytes_written: Arc<std::sync::atomic::AtomicU64>,
}

impl WritableFile for FsWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.bytes_written
            .fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }
}

struct FsRandom {
    file: Mutex<std::fs::File>,
    size: u64,
}

impl RandomAccessFile for FsRandom {
    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; len];
        // LOCK-OK: serializing seek+read pairs on the shared descriptor is
        // this leaf mutex's entire purpose; nothing is acquired under it.
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.size
    }
}

impl Env for FsEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let path = self.path(name);
        // Slash-containing names ([`PrefixEnv`] sub-namespaces) live in
        // subdirectories that may not exist yet.
        if name.contains('/') {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(Box::new(FsWritable {
            file,
            bytes_written: Arc::clone(&self.bytes_written),
        }))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let path = self.path(name);
        let file = std::fs::File::open(&path)
            .map_err(|_| StorageError::NotFound(name.to_string()))?;
        let size = file.metadata()?.len();
        Ok(Arc::new(FsRandom {
            file: ranked_mutex(ENV_FILE, file),
            size,
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> Result<Vec<String>> {
        // Walk one directory level deep so [`PrefixEnv`] sub-namespaces
        // (`shard-NN/<file>`) list through, reported with their relative
        // slashed names. Plain stores never create subdirectories, so
        // their listings are unchanged.
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.file_type()?.is_dir() {
                for sub in std::fs::read_dir(entry.path())? {
                    let sub = sub?;
                    if sub.file_type()?.is_file() {
                        out.push(format!(
                            "{name}/{}",
                            sub.file_name().to_string_lossy()
                        ));
                    }
                }
            } else {
                out.push(name);
            }
        }
        Ok(out)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn sync_dir(&self) -> Result<()> {
        // Sub-namespace directories hold WAL segments whose creation and
        // retirement need the same directory-entry durability as the
        // root's (see [`Env::sync_dir`]), so sync them along with it.
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                std::fs::File::open(entry.path())?.sync_all()?;
            }
        }
        std::fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memenv_roundtrip() {
        let env = MemEnv::new(None);
        let mut f = env.new_writable("a").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.finish().unwrap();
        let r = env.open_random("a").unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r.read_at(6, 5).unwrap(), b"world");
        assert!(env.exists("a"));
        env.delete("a").unwrap();
        assert!(!env.exists("a"));
        assert!(env.open_random("a").is_err());
    }

    #[test]
    fn memenv_read_past_end_fails() {
        let env = MemEnv::new(None);
        let mut f = env.new_writable("a").unwrap();
        f.append(b"xy").unwrap();
        let r = env.open_random("a").unwrap();
        assert!(r.read_at(1, 5).is_err());
    }

    #[test]
    fn memenv_tracks_bytes_written() {
        let env = MemEnv::new(None);
        let mut f = env.new_writable("a").unwrap();
        f.append(&[0u8; 100]).unwrap();
        assert_eq!(env.bytes_written(), 100);
    }

    #[test]
    fn throttle_limits_write_rate() {
        // 1 MB/s with a small burst: writing 300 KB beyond the burst should
        // take at least ~200 ms.
        let env = MemEnv::new(Some(ThrottleConfig {
            write_bytes_per_sec: 1024 * 1024,
            burst_bytes: 100 * 1024,
        }));
        let mut f = env.new_writable("a").unwrap();
        let start = Instant::now();
        for _ in 0..4 {
            f.append(&vec![0u8; 100 * 1024]).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(200),
            "throttle did not slow writes: {elapsed:?}"
        );
    }

    #[test]
    fn token_bucket_allows_burst() {
        let mut bucket = TokenBucket::new(ThrottleConfig {
            write_bytes_per_sec: 1000,
            burst_bytes: 10_000,
        });
        // Within the burst budget: no sleep.
        assert_eq!(bucket.consume(5_000), Duration::ZERO);
        // Exceeding it: positive wait.
        assert!(bucket.consume(10_000) > Duration::ZERO);
    }

    #[test]
    fn prefix_env_isolates_namespaces() {
        let root: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let a = PrefixEnv::new(Arc::clone(&root), "shard-00");
        let b = PrefixEnv::new(Arc::clone(&root), "shard-01/");
        let mut f = a.new_writable("x.log").unwrap();
        f.append(b"aaa").unwrap();
        b.new_writable("y.log").unwrap();

        assert!(a.exists("x.log"));
        assert!(!a.exists("y.log"), "namespaces must not bleed");
        assert!(root.exists("shard-00/x.log"));
        assert_eq!(a.list().unwrap(), vec!["x.log".to_string()]);
        assert_eq!(b.list().unwrap(), vec!["y.log".to_string()]);
        assert_eq!(a.open_random("x.log").unwrap().len(), 3);

        a.delete("x.log").unwrap();
        assert!(!root.exists("shard-00/x.log"));
        assert!(root.exists("shard-01/y.log"), "delete stays scoped");
        assert!(a.bytes_written() >= 3, "write accounting is shared");
        a.sync_dir().unwrap();
    }

    #[test]
    fn fsenv_supports_prefixed_subdirectories() {
        let dir =
            std::env::temp_dir().join(format!("flodb-env-subdir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root: Arc<dyn Env> = Arc::new(FsEnv::new(&dir).unwrap());
        let shard = PrefixEnv::new(Arc::clone(&root), "shard-03");
        let mut f = shard.new_writable("000001.log").unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        f.finish().unwrap();
        root.new_writable("TOP").unwrap();

        assert!(shard.exists("000001.log"));
        assert_eq!(shard.list().unwrap(), vec!["000001.log".to_string()]);
        let all = root.list().unwrap();
        assert!(all.contains(&"shard-03/000001.log".to_string()));
        assert!(all.contains(&"TOP".to_string()));
        assert_eq!(shard.open_random("000001.log").unwrap().len(), 4);
        shard.sync_dir().unwrap();
        shard.delete("000001.log").unwrap();
        shard.delete("000001.log").unwrap(); // Idempotent.
        assert!(!shard.exists("000001.log"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsenv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flodb-env-test-{}", std::process::id()));
        let env = FsEnv::new(&dir).unwrap();
        let mut f = env.new_writable("t.sst").unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        f.finish().unwrap();
        let r = env.open_random("t.sst").unwrap();
        assert_eq!(r.read_at(0, 4).unwrap(), b"data");
        assert!(env.list().unwrap().contains(&"t.sst".to_string()));
        env.delete("t.sst").unwrap();
        env.delete("t.sst").unwrap(); // Idempotent.
        std::fs::remove_dir_all(&dir).ok();
    }
}
