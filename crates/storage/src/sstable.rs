//! Sorted-string tables: immutable on-disk files of key-ordered records.
//!
//! Layout:
//!
//! ```text
//! [data block 0][data block 1]...[bloom filter][index block][footer]
//! ```
//!
//! The index block stores `(first_key, offset, len)` per data block; the
//! fixed-size footer stores the bloom/index locations, the entry count and
//! a magic number. Point lookups consult the bloom filter, binary-search
//! the index, then scan one block.

use std::sync::Arc;

use crate::block::{Block, BlockBuilder};
use crate::bloom::Bloom;
use crate::env::{RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::record::{crc32, get_varint, put_varint, Record};

const FOOTER_LEN: usize = 48;
const MAGIC: u64 = 0xF10D_B5_00_EE17_55AA;

/// Returns the canonical file name for table `number`.
pub fn table_file_name(number: u64) -> String {
    format!("{number:06}.sst")
}

/// Summary of a finished table, fed into the version set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Total file size in bytes.
    pub file_size: u64,
    /// Smallest user key in the table.
    pub smallest: Box<[u8]>,
    /// Largest user key in the table.
    pub largest: Box<[u8]>,
    /// Number of records.
    pub entries: u64,
    /// Largest sequence number among the records.
    pub largest_seq: u64,
}

/// Streams key-ordered records into an SSTable file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    block: BlockBuilder,
    block_bytes: usize,
    bloom_bits_per_key: usize,
    /// (first_key, offset, len) of finished blocks.
    index: Vec<(Box<[u8]>, u64, u64)>,
    keys: Vec<Box<[u8]>>,
    offset: u64,
    smallest: Option<Box<[u8]>>,
    largest: Option<Box<[u8]>>,
    entries: u64,
    largest_seq: u64,
}

impl TableBuilder {
    /// Creates a builder writing into `file`.
    pub fn new(file: Box<dyn WritableFile>, block_bytes: usize, bloom_bits_per_key: usize) -> Self {
        Self {
            file,
            block: BlockBuilder::new(),
            block_bytes: block_bytes.max(128),
            bloom_bits_per_key,
            index: Vec::new(),
            keys: Vec::new(),
            offset: 0,
            smallest: None,
            largest: None,
            entries: 0,
            largest_seq: 0,
        }
    }

    /// Appends a record; keys must arrive in `(key asc, seq desc)` order.
    /// A key may repeat (multi-versioned flushes keep every version).
    pub fn add(&mut self, record: &Record) -> Result<()> {
        // Never split a same-key version run across blocks: the index maps
        // a key to exactly one block, and a run straddling a boundary
        // would hide its freshest versions from point lookups.
        if self.block.size() >= self.block_bytes
            && self.largest.as_deref() != Some(record.key.as_ref())
        {
            self.flush_block()?;
        }
        if self.smallest.is_none() {
            self.smallest = Some(record.key.clone());
        }
        self.largest = Some(record.key.clone());
        self.largest_seq = self.largest_seq.max(record.seq);
        self.keys.push(record.key.clone());
        self.block.add(record);
        self.entries += 1;
        Ok(())
    }

    /// Current output offset (approximate file size so far).
    pub fn file_size(&self) -> u64 {
        self.offset + self.block.size() as u64
    }

    /// Number of records added so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let first_key: Box<[u8]> = self
            .block
            .first_key()
            .expect("non-empty block has a first key")
            .into();
        let data = self.block.finish();
        self.index
            .push((first_key, self.offset, data.len() as u64));
        self.file.append(&data)?;
        self.offset += data.len() as u64;
        Ok(())
    }

    /// Finalizes the table, returning its metadata.
    pub fn finish(mut self) -> Result<TableMeta> {
        self.flush_block()?;

        // Bloom filter.
        let bloom = Bloom::build(
            self.keys.iter().map(|k| k.as_ref()),
            self.keys.len(),
            self.bloom_bits_per_key,
        );
        let bloom_data = bloom.encode();
        let bloom_off = self.offset;
        self.file.append(&bloom_data)?;
        self.offset += bloom_data.len() as u64;

        // Index block.
        let mut index_data = Vec::new();
        put_varint(&mut index_data, self.index.len() as u64);
        for (first_key, off, len) in &self.index {
            put_varint(&mut index_data, first_key.len() as u64);
            index_data.extend_from_slice(first_key);
            put_varint(&mut index_data, *off);
            put_varint(&mut index_data, *len);
        }
        let index_off = self.offset;
        self.file.append(&index_data)?;
        self.offset += index_data.len() as u64;

        // Footer: fixed-size trailer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_data.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&(bloom_data.len() as u64).to_le_bytes());
        footer.extend_from_slice(&self.entries.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        debug_assert_eq!(footer.len(), FOOTER_LEN);
        self.file.append(&footer)?;
        self.offset += FOOTER_LEN as u64;
        self.file.sync()?;
        self.file.finish()?;

        let smallest = self
            .smallest
            .ok_or_else(|| StorageError::InvalidArgument("empty table".into()))?;
        let largest = self.largest.expect("largest set with smallest");
        Ok(TableMeta {
            file_size: self.offset,
            smallest,
            largest,
            entries: self.entries,
            largest_seq: self.largest_seq,
        })
    }
}

struct IndexEntry {
    first_key: Box<[u8]>,
    offset: u64,
    len: u64,
}

/// An open, immutable SSTable.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    entries: u64,
}

impl Table {
    /// Opens a table from a random-access file.
    pub fn open(file: Arc<dyn RandomAccessFile>) -> Result<Self> {
        let size = file.len();
        if size < FOOTER_LEN as u64 {
            return Err(StorageError::Corruption("table smaller than footer".into()));
        }
        let footer = file.read_at(size - FOOTER_LEN as u64, FOOTER_LEN)?;
        let u64_at = |i: usize| {
            u64::from_le_bytes(footer[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
        };
        if u64_at(5) != MAGIC {
            return Err(StorageError::Corruption("bad table magic".into()));
        }
        let (index_off, index_len) = (u64_at(0), u64_at(1));
        let (bloom_off, bloom_len) = (u64_at(2), u64_at(3));
        let entries = u64_at(4);

        let bloom_data = file.read_at(bloom_off, bloom_len as usize)?;
        let bloom = Bloom::decode(&bloom_data);

        let index_data = file.read_at(index_off, index_len as usize)?;
        let mut pos = 0;
        let n = get_varint(&index_data, &mut pos)? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let klen = get_varint(&index_data, &mut pos)? as usize;
            if index_data.len() < pos + klen {
                return Err(StorageError::Corruption("truncated index key".into()));
            }
            let first_key: Box<[u8]> = Box::from(&index_data[pos..pos + klen]);
            pos += klen;
            let offset = get_varint(&index_data, &mut pos)?;
            let len = get_varint(&index_data, &mut pos)?;
            index.push(IndexEntry {
                first_key,
                offset,
                len,
            });
        }

        Ok(Self {
            file,
            index,
            bloom,
            entries,
        })
    }

    /// Number of records in the table.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of data blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    fn read_block(&self, i: usize) -> Result<Block> {
        let e = &self.index[i];
        let data = self.file.read_at(e.offset, e.len as usize)?;
        Block::decode(&data)
    }

    /// Index of the block that may contain `key` (last block whose first
    /// key is `<= key`).
    fn block_for(&self, key: &[u8]) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        let i = self
            .index
            .partition_point(|e| e.first_key.as_ref() <= key);
        if i == 0 {
            None
        } else {
            Some(i - 1)
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(block_idx) = self.block_for(key) else {
            return Ok(None);
        };
        let block = self.read_block(block_idx)?;
        Ok(block.get(key).cloned())
    }

    /// Creates a cursor over the table.
    pub fn iter(self: &Arc<Self>) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            block: None,
            block_idx: 0,
            record_idx: 0,
        }
    }
}

/// Cursor over one table, in key order.
pub struct TableIterator {
    table: Arc<Table>,
    block: Option<Block>,
    block_idx: usize,
    record_idx: usize,
}

impl TableIterator {
    /// Positions on the first record with `key >= target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        let start_block = self.table.block_for(target).unwrap_or(0);
        self.block_idx = start_block;
        self.block = None;
        if self.table.index.is_empty() {
            return Ok(());
        }
        let block = self.table.read_block(self.block_idx)?;
        self.record_idx = block.lower_bound(target);
        let exhausted = self.record_idx >= block.records().len();
        self.block = Some(block);
        if exhausted {
            self.advance_block()?;
        }
        Ok(())
    }

    /// Positions on the first record of the table.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.block_idx = 0;
        self.record_idx = 0;
        self.block = None;
        if !self.table.index.is_empty() {
            self.block = Some(self.table.read_block(0)?);
        }
        Ok(())
    }

    fn advance_block(&mut self) -> Result<()> {
        loop {
            self.block_idx += 1;
            if self.block_idx >= self.table.index.len() {
                self.block = None;
                return Ok(());
            }
            let block = self.table.read_block(self.block_idx)?;
            if !block.records().is_empty() {
                self.record_idx = 0;
                self.block = Some(block);
                return Ok(());
            }
        }
    }

    /// Returns whether the cursor is on a record.
    pub fn valid(&self) -> bool {
        self.block
            .as_ref()
            .is_some_and(|b| self.record_idx < b.records().len())
    }

    /// Current record.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn record(&self) -> &Record {
        &self.block.as_ref().expect("valid cursor").records()[self.record_idx]
    }

    /// Advances the cursor.
    ///
    /// Named after LevelDB's `Iterator::Next`; it is not `std::iter::
    /// Iterator::next` because advancing can fail with an I/O error.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<()> {
        self.record_idx += 1;
        if let Some(b) = &self.block {
            if self.record_idx >= b.records().len() {
                self.advance_block()?;
                self.record_idx = 0;
            }
        }
        Ok(())
    }
}

/// Validates the integrity of a serialized table prefix (used by tests and
/// recovery tooling): re-reads every block and checks record decode.
pub fn verify_table(table: &Arc<Table>) -> Result<u64> {
    let mut it = table.iter();
    it.seek_to_first()?;
    let mut n = 0;
    let mut prev: Option<(Box<[u8]>, u64)> = None;
    while it.valid() {
        let r = it.record();
        if let Some((pk, pseq)) = &prev {
            // Non-decreasing keys; within a key run, strictly newer first.
            if pk.as_ref() > r.key.as_ref() {
                return Err(StorageError::Corruption("keys out of order".into()));
            }
            if pk.as_ref() == r.key.as_ref() && *pseq <= r.seq {
                return Err(StorageError::Corruption(
                    "version run not newest-first".into(),
                ));
            }
        }
        prev = Some((r.key.clone(), r.seq));
        n += 1;
        it.next()?;
    }
    if n != table.entries() {
        return Err(StorageError::Corruption(format!(
            "entry count mismatch: footer {} walked {n}",
            table.entries()
        )));
    }
    Ok(n)
}

/// Convenience: CRC over a whole table file (diagnostics).
pub fn table_checksum(file: &Arc<dyn RandomAccessFile>) -> Result<u32> {
    let data = file.read_at(0, file.len() as usize)?;
    Ok(crc32(&data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Env, MemEnv};

    fn build_table(env: &MemEnv, name: &str, keys: impl Iterator<Item = u64>) -> TableMeta {
        let file = env.new_writable(name).unwrap();
        let mut b = TableBuilder::new(file, 512, 10);
        for k in keys {
            b.add(&Record::put(
                k.to_be_bytes().as_slice(),
                k + 1,
                vec![k as u8; 16],
            ))
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_open_get() {
        let env = MemEnv::new(None);
        let meta = build_table(&env, "t.sst", 0..1000);
        assert_eq!(meta.entries, 1000);
        assert_eq!(meta.smallest.as_ref(), 0u64.to_be_bytes());
        assert_eq!(meta.largest.as_ref(), 999u64.to_be_bytes());

        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        assert!(table.num_blocks() > 1, "must span multiple blocks");
        for k in (0..1000u64).step_by(37) {
            let r = table.get(&k.to_be_bytes()).unwrap().unwrap();
            assert_eq!(r.seq, k + 1);
            assert_eq!(r.value.as_deref(), Some(vec![k as u8; 16].as_slice()));
        }
        assert!(table.get(&5000u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn iterator_full_scan_in_order() {
        let env = MemEnv::new(None);
        build_table(&env, "t.sst", (0..500).map(|i| i * 2));
        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        let mut n = 0u64;
        while it.valid() {
            assert_eq!(it.record().key.as_ref(), (n * 2).to_be_bytes());
            n += 1;
            it.next().unwrap();
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn iterator_seek() {
        let env = MemEnv::new(None);
        build_table(&env, "t.sst", (0..500).map(|i| i * 2));
        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        let mut it = table.iter();
        // Seek to a key between entries.
        it.seek(&101u64.to_be_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(it.record().key.as_ref(), 102u64.to_be_bytes());
        // Seek before the start.
        it.seek(&0u64.to_be_bytes()).unwrap();
        assert_eq!(it.record().key.as_ref(), 0u64.to_be_bytes());
        // Seek past the end.
        it.seek(&10_000u64.to_be_bytes()).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn verify_accepts_good_table() {
        let env = MemEnv::new(None);
        build_table(&env, "t.sst", 0..100);
        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        assert_eq!(verify_table(&table).unwrap(), 100);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let env = MemEnv::new(None);
        let mut f = env.new_writable("bad.sst").unwrap();
        f.append(b"short").unwrap();
        assert!(Table::open(env.open_random("bad.sst").unwrap()).is_err());
    }

    #[test]
    fn open_rejects_bad_magic() {
        let env = MemEnv::new(None);
        let mut f = env.new_writable("bad.sst").unwrap();
        f.append(&[0u8; 64]).unwrap();
        let err = Table::open(env.open_random("bad.sst").unwrap());
        assert!(matches!(err, Err(StorageError::Corruption(_))));
    }

    #[test]
    fn table_file_names_sort_with_numbers() {
        assert_eq!(table_file_name(7), "000007.sst");
        assert!(table_file_name(9) < table_file_name(10));
    }

    #[test]
    fn empty_table_build_fails_cleanly() {
        let env = MemEnv::new(None);
        let file = env.new_writable("e.sst").unwrap();
        let b = TableBuilder::new(file, 512, 10);
        assert!(b.finish().is_err());
    }
}
