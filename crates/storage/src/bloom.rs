//! Bloom filters for SSTables.
//!
//! LevelDB-style: a fixed number of bits per key, with `k` probe positions
//! derived by double hashing. Bloom filters let point reads skip tables
//! that cannot contain the key, which is what keeps FloDB's read path
//! competitive despite a mostly-disk-resident dataset (§5.2, Figure 10).

/// A serializable bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

fn bloom_hash(key: &[u8]) -> u64 {
    // 64-bit FNV-1a; the upper and lower halves seed double hashing.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl Bloom {
    /// Builds a filter over `keys` with `bits_per_key` bits of budget each.
    pub fn build<'a>(keys: impl Iterator<Item = &'a [u8]>, n_keys: usize, bits_per_key: usize) -> Self {
        // k = bits_per_key * ln2 rounded, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let nbits = (n_keys * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h = bloom_hash(key);
            let mut acc = h;
            let delta = h.rotate_left(17) | 1;
            for _ in 0..k {
                let bit = (acc % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                acc = acc.wrapping_add(delta);
            }
        }
        Self { bits, k }
    }

    /// Returns `false` only if `key` was definitely not inserted.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() * 8;
        let h = bloom_hash(key);
        let mut acc = h;
        let delta = h.rotate_left(17) | 1;
        for _ in 0..self.k {
            let bit = (acc % nbits as u64) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            acc = acc.wrapping_add(delta);
        }
        true
    }

    /// Serializes the filter (`bits ++ k_byte`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.k as u8);
        out
    }

    /// Deserializes a filter produced by [`Bloom::encode`].
    pub fn decode(data: &[u8]) -> Self {
        if data.is_empty() {
            return Self { bits: Vec::new(), k: 1 };
        }
        let (bits, k) = data.split_at(data.len() - 1);
        Self {
            bits: bits.to_vec(),
            k: u32::from(k[0]).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| (i as u64).to_be_bytes().to_vec()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        for k in &ks {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(10_000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            let absent = (1_000_000u64 + i).to_be_bytes();
            if bloom.may_contain(&absent) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key gives ~1% theoretical; allow 3%.
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let decoded = Bloom::decode(&bloom.encode());
        assert_eq!(bloom, decoded);
        for k in &ks {
            assert!(decoded.may_contain(k));
        }
    }

    #[test]
    fn empty_filter_admits_everything() {
        let bloom = Bloom::decode(&[]);
        assert!(bloom.may_contain(b"anything"));
    }

    #[test]
    fn zero_keys_filter_is_valid() {
        let bloom = Bloom::build(std::iter::empty(), 0, 10);
        // May return either way, but must not panic.
        let _ = bloom.may_contain(b"x");
        let decoded = Bloom::decode(&bloom.encode());
        let _ = decoded.may_contain(b"x");
    }
}
