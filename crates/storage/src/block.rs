//! Data blocks: the unit of I/O inside an SSTable.
//!
//! A block is a run of consecutive [`Record`]s in `(key asc, seq desc)`
//! order, targeted at a few kilobytes. A key may repeat with decreasing
//! sequence numbers — multi-versioned memtables flush *every* version,
//! like LevelDB's internal keys — and lookups return the freshest (first)
//! record of a run. Blocks are read whole; lookups scan forward (at 4 KiB
//! a linear scan is cache-resident and branch-predictable, so the restart
//! array LevelDB uses is omitted).

use crate::error::Result;
use crate::record::Record;

/// Builds one block by appending records in key order.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    count: u32,
    first_key: Option<Box<[u8]>>,
    last_key: Option<Box<[u8]>>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Debug-asserts that keys arrive in non-decreasing order.
    pub fn add(&mut self, record: &Record) {
        debug_assert!(
            self.last_key.as_deref().is_none_or(|k| k <= &*record.key),
            "records must be added in non-decreasing key order"
        );
        if self.first_key.is_none() {
            self.first_key = Some(record.key.clone());
        }
        self.last_key = Some(record.key.clone());
        record.encode_into(&mut self.buf);
        self.count += 1;
    }

    /// Current serialized size in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    /// Number of records added.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Returns whether no records were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First key in the block, if any.
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Serializes the block and resets the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        self.first_key = None;
        self.last_key = None;
        self.count = 0;
        std::mem::take(&mut self.buf)
    }
}

/// A decoded block: records in key order.
#[derive(Debug)]
pub struct Block {
    records: Vec<Record>,
}

impl Block {
    /// Decodes a serialized block.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut records = Vec::new();
        let mut pos = 0;
        while pos < data.len() {
            records.push(Record::decode_from(data, &mut pos)?);
        }
        Ok(Self { records })
    }

    /// Returns the freshest record for `key`, if present.
    ///
    /// Within a key's run records are ordered newest-first, so the first
    /// record at or past the lower bound is the freshest version.
    pub fn get(&self, key: &[u8]) -> Option<&Record> {
        let i = self.lower_bound(key);
        self.records
            .get(i)
            .filter(|r| r.key.as_ref() == key)
    }

    /// Returns the index of the first record with `key >= target`.
    pub fn lower_bound(&self, target: &[u8]) -> usize {
        self.records.partition_point(|r| r.key.as_ref() < target)
    }

    /// Returns all records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the block, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(k: u64, v: u64) -> Record {
        Record::put(k.to_be_bytes().as_slice(), v, v.to_be_bytes().as_slice())
    }

    #[test]
    fn build_and_decode() {
        let mut b = BlockBuilder::new();
        for i in 0..100u64 {
            b.add(&record(i, i * 2));
        }
        assert_eq!(b.count(), 100);
        assert_eq!(b.first_key(), Some(0u64.to_be_bytes().as_slice()));
        let data = b.finish();
        assert!(b.is_empty(), "finish must reset the builder");

        let block = Block::decode(&data).unwrap();
        assert_eq!(block.records().len(), 100);
        let got = block.get(&50u64.to_be_bytes()).unwrap();
        assert_eq!(got.seq, 100);
    }

    #[test]
    fn get_missing_key() {
        let mut b = BlockBuilder::new();
        b.add(&record(1, 1));
        b.add(&record(3, 3));
        let block = Block::decode(&b.finish()).unwrap();
        assert!(block.get(&2u64.to_be_bytes()).is_none());
    }

    #[test]
    fn lower_bound_positions() {
        let mut b = BlockBuilder::new();
        for i in [10u64, 20, 30] {
            b.add(&record(i, i));
        }
        let block = Block::decode(&b.finish()).unwrap();
        assert_eq!(block.lower_bound(&5u64.to_be_bytes()), 0);
        assert_eq!(block.lower_bound(&10u64.to_be_bytes()), 0);
        assert_eq!(block.lower_bound(&15u64.to_be_bytes()), 1);
        assert_eq!(block.lower_bound(&35u64.to_be_bytes()), 3);
    }

    #[test]
    fn tombstones_roundtrip_through_blocks() {
        let mut b = BlockBuilder::new();
        b.add(&Record::tombstone(1u64.to_be_bytes().as_slice(), 9));
        let block = Block::decode(&b.finish()).unwrap();
        let r = block.get(&1u64.to_be_bytes()).unwrap();
        assert!(r.is_tombstone());
        assert_eq!(r.seq, 9);
    }

    #[test]
    fn corrupt_block_fails_cleanly() {
        let mut b = BlockBuilder::new();
        b.add(&record(1, 1));
        let mut data = b.finish();
        data.truncate(data.len() - 1);
        assert!(Block::decode(&data).is_err());
    }
}
