//! The MANIFEST: a durable log of version edits.
//!
//! LevelDB records every change to the file layout (flush added a table,
//! compaction replaced tables) as a version edit appended to a manifest
//! file, so reopening a database can reconstruct the current version
//! without scanning tables. This module reproduces that mechanism:
//!
//! - each generation is one append-only file `MANIFEST-<gen>`;
//! - every record is a framed, checksummed [`VersionEdit`] plus the file
//!   counter needed to resume allocation;
//! - recovery replays the highest intact generation and then starts a
//!   fresh generation seeded with a snapshot edit, after which older
//!   generations and orphaned tables can be deleted.
//!
//! Framing matches the WAL (`[len u32][crc u32][payload]`); a torn tail is
//! treated as the crash point, not an error.

use crate::env::{Env, WritableFile};
use crate::error::{Result, StorageError};
use crate::record::crc32;
use crate::version::{FileMeta, VersionEdit};

/// Returns the canonical manifest file name for `generation`.
pub fn manifest_file_name(generation: u64) -> String {
    format!("MANIFEST-{generation:06}")
}

/// Parses a manifest file name back into its generation.
pub fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("MANIFEST-")?.parse().ok()
}

fn encode_file(meta: &FileMeta, out: &mut Vec<u8>) {
    out.extend_from_slice(&meta.number.to_le_bytes());
    out.extend_from_slice(&meta.size.to_le_bytes());
    out.extend_from_slice(&meta.entries.to_le_bytes());
    out.extend_from_slice(&meta.largest_seq.to_le_bytes());
    out.extend_from_slice(&(meta.smallest.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta.smallest);
    out.extend_from_slice(&(meta.largest.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta.largest);
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(StorageError::Corruption(
                "manifest record truncated".into(),
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn decode_file(&mut self) -> Result<FileMeta> {
        let number = self.u64()?;
        let size = self.u64()?;
        let entries = self.u64()?;
        let largest_seq = self.u64()?;
        let klen = self.u32()? as usize;
        let smallest = Box::from(self.take(klen)?);
        let klen = self.u32()? as usize;
        let largest = Box::from(self.take(klen)?);
        Ok(FileMeta {
            number,
            size,
            smallest,
            largest,
            entries,
            largest_seq,
        })
    }
}

/// Encodes one manifest record: the edit, the post-edit file counter, and
/// the oldest-live WAL generation (0 = unrecorded; see
/// [`ManifestWriter::set_wal_oldest_live`]).
fn encode_record(edit: &VersionEdit, next_file: u64, wal_oldest_live: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&next_file.to_le_bytes());
    payload.extend_from_slice(&(edit.added.len() as u32).to_le_bytes());
    for (level, meta) in &edit.added {
        payload.push(*level as u8);
        encode_file(meta, &mut payload);
    }
    payload.extend_from_slice(&(edit.deleted.len() as u32).to_le_bytes());
    for (level, number) in &edit.deleted {
        payload.push(*level as u8);
        payload.extend_from_slice(&number.to_le_bytes());
    }
    payload.extend_from_slice(&wal_oldest_live.to_le_bytes());
    payload
}

/// Decodes one manifest record payload.
///
/// The trailing oldest-live WAL generation is optional so manifests
/// written before the WAL lifecycle subsystem still decode (they report
/// 0, i.e. "scan every log generation").
fn decode_record(payload: &[u8]) -> Result<(VersionEdit, u64, u64)> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let next_file = c.u64()?;
    let mut edit = VersionEdit::default();
    let added = c.u32()?;
    for _ in 0..added {
        let level = c.u8()? as usize;
        edit.added.push((level, c.decode_file()?));
    }
    let deleted = c.u32()?;
    for _ in 0..deleted {
        let level = c.u8()? as usize;
        edit.deleted.push((level, c.u64()?));
    }
    let wal_oldest_live = if c.pos + 8 <= c.data.len() {
        c.u64()?
    } else {
        0
    };
    Ok((edit, next_file, wal_oldest_live))
}

/// Appends version edits to one manifest generation.
pub struct ManifestWriter {
    file: Box<dyn WritableFile>,
    generation: u64,
    /// Oldest-live WAL generation, carried by every appended record so the
    /// latest intact record always holds the current mark (sticky).
    wal_oldest_live: u64,
}

impl ManifestWriter {
    /// Creates generation `generation` on `env`.
    pub fn create(env: &dyn Env, generation: u64) -> Result<Self> {
        let file = env.new_writable(&manifest_file_name(generation))?;
        Ok(Self {
            file,
            generation,
            wal_oldest_live: 0,
        })
    }

    /// Returns this writer's generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sets the oldest-live WAL generation stamped into every record from
    /// now on. Recovery scans only log generations at or above the last
    /// intact record's mark, so this must be advanced *before* the
    /// superseded segments are deleted (append a record to persist it).
    pub fn set_wal_oldest_live(&mut self, generation: u64) {
        self.wal_oldest_live = generation;
    }

    /// Appends one framed, checksummed edit record and syncs it.
    pub fn append(&mut self, edit: &VersionEdit, next_file: u64) -> Result<()> {
        let payload = encode_record(edit, next_file, self.wal_oldest_live);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.append(&frame)?;
        self.file.sync()
    }
}

/// The result of replaying a manifest generation.
#[derive(Debug)]
pub struct RecoveredManifest {
    /// Generation that was replayed.
    pub generation: u64,
    /// Every intact edit, in append order.
    pub edits: Vec<VersionEdit>,
    /// File counter recorded by the last intact record.
    pub next_file: u64,
    /// Oldest-live WAL generation recorded by the last intact record
    /// (0 when never recorded: scan every log generation).
    pub wal_oldest_live: u64,
}

/// Finds and replays the newest **intact** manifest generation on `env`.
///
/// Returns `None` when no manifest exists (a fresh database). Replay stops
/// at the first torn or corrupt frame, LevelDB-style: the tail written
/// during a crash is forfeit, everything before it is recovered.
///
/// A newest generation with *zero* intact records is a stillborn
/// creation: the open that created it died (crash or I/O failure)
/// before its seed snapshot landed, so the generation before it still
/// describes the true file layout. Recovery falls back to the newest
/// generation holding at least one intact record — letting the empty
/// file shadow the intact one would silently drop every table. The
/// stillborn file itself needs no cleanup: the next successful open
/// recreates (truncates) exactly that generation number and prunes
/// everything older once it is seeded.
pub fn recover(env: &dyn Env) -> Result<Option<RecoveredManifest>> {
    let mut generations: Vec<u64> = env
        .list()?
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    generations.sort_unstable();
    for (idx, &generation) in generations.iter().enumerate().rev() {
        let file = env.open_random(&manifest_file_name(generation))?;
        let data = file.read_at(0, file.len() as usize)?;
        let mut edits = Vec::new();
        let mut next_file = 1u64;
        let mut wal_oldest_live = 0u64;
        let mut pos = 0usize;
        loop {
            if pos + 8 > data.len() {
                break;
            }
            let len =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > data.len() {
                break; // Torn tail.
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // Corrupt tail.
            }
            let (edit, nf, oldest) = decode_record(payload)?;
            edits.push(edit);
            next_file = nf;
            wal_oldest_live = oldest;
            pos += 8 + len;
        }
        if edits.is_empty() && idx > 0 {
            continue; // Stillborn generation; try the one before it.
        }
        return Ok(Some(RecoveredManifest {
            generation,
            edits,
            next_file,
            wal_oldest_live,
        }));
    }
    Ok(None)
}

/// Deletes manifest generations older than `keep`.
pub fn prune_old_generations(env: &dyn Env, keep: u64) -> Result<()> {
    for name in env.list()? {
        if let Some(gen) = parse_manifest_name(&name) {
            if gen < keep {
                env.delete(&name)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn meta(number: u64, lo: u64, hi: u64) -> FileMeta {
        FileMeta {
            number,
            size: 4096,
            smallest: Box::new(lo.to_be_bytes()),
            largest: Box::new(hi.to_be_bytes()),
            entries: hi - lo + 1,
            largest_seq: hi,
        }
    }

    #[test]
    fn record_roundtrip() {
        let mut edit = VersionEdit::default();
        edit.add(0, meta(7, 10, 20));
        edit.add(3, meta(8, 0, 5));
        edit.delete(1, 2);
        let payload = encode_record(&edit, 42, 7);
        let (decoded, next_file, oldest) = decode_record(&payload).unwrap();
        assert_eq!(next_file, 42);
        assert_eq!(oldest, 7);
        assert_eq!(decoded.added.len(), 2);
        assert_eq!(decoded.added[0].0, 0);
        assert_eq!(decoded.added[0].1, meta(7, 10, 20));
        assert_eq!(decoded.added[1].0, 3);
        assert_eq!(decoded.deleted, vec![(1, 2)]);
    }

    #[test]
    fn empty_env_recovers_to_none() {
        let env = MemEnv::new(None);
        assert!(recover(&env).unwrap().is_none());
    }

    #[test]
    fn write_then_recover() {
        let env = MemEnv::new(None);
        let mut w = ManifestWriter::create(&env, 1).unwrap();
        let mut e1 = VersionEdit::default();
        e1.add(0, meta(1, 0, 9));
        w.append(&e1, 2).unwrap();
        let mut e2 = VersionEdit::default();
        e2.delete(0, 1);
        e2.add(1, meta(2, 0, 9));
        w.append(&e2, 3).unwrap();

        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.edits.len(), 2);
        assert_eq!(r.next_file, 3);
        assert_eq!(r.edits[1].deleted, vec![(0, 1)]);
    }

    #[test]
    fn newest_generation_wins() {
        let env = MemEnv::new(None);
        let mut w1 = ManifestWriter::create(&env, 1).unwrap();
        let mut e = VersionEdit::default();
        e.add(0, meta(1, 0, 9));
        w1.append(&e, 2).unwrap();

        let mut w2 = ManifestWriter::create(&env, 2).unwrap();
        let mut e = VersionEdit::default();
        e.add(1, meta(5, 0, 9));
        w2.append(&e, 6).unwrap();

        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 2);
        assert_eq!(r.edits.len(), 1);
        assert_eq!(r.edits[0].added[0].0, 1);
        assert_eq!(r.next_file, 6);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let env = MemEnv::new(None);
        let mut w = ManifestWriter::create(&env, 1).unwrap();
        let mut e = VersionEdit::default();
        e.add(0, meta(1, 0, 9));
        w.append(&e, 2).unwrap();
        // Append garbage half-frame directly.
        let mut f = {
            // Re-open truncates in MemEnv; instead append via a fresh
            // writer on a copy... simpler: write a second manifest file
            // with an intact record then garbage.
            env.new_writable(&manifest_file_name(2)).unwrap()
        };
        let payload = encode_record(&e, 5, 0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&[0xFF, 0x01, 0x02]); // Torn tail.
        f.append(&frame).unwrap();
        f.finish().unwrap();

        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 2);
        assert_eq!(r.edits.len(), 1, "tail dropped, intact prefix kept");
        assert_eq!(r.next_file, 5);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let env = MemEnv::new(None);
        let payload = encode_record(&VersionEdit::default(), 9, 0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&(crc32(&payload) ^ 0xDEAD).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut f = env.new_writable(&manifest_file_name(1)).unwrap();
        f.append(&frame).unwrap();
        f.finish().unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert!(r.edits.is_empty(), "corrupt record must not replay");
    }

    #[test]
    fn stillborn_newest_generation_falls_back_to_the_intact_one() {
        let env = MemEnv::new(None);
        let mut w = ManifestWriter::create(&env, 1).unwrap();
        let mut e = VersionEdit::default();
        e.add(0, meta(1, 0, 9));
        w.append(&e, 2).unwrap();

        // A crash (or injected failure) during the next open created
        // generation 2 but died before its seed snapshot landed: the
        // file exists with zero intact records.
        ManifestWriter::create(&env, 2).unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 1, "an empty newest generation must not win");
        assert_eq!(r.edits.len(), 1);
        assert_eq!(r.next_file, 2);

        // Same if the seed snapshot tore mid-frame (corrupt, not empty).
        let mut f = env.new_writable(&manifest_file_name(3)).unwrap();
        f.append(&[0x40, 0, 0, 0, 0xAA, 0xBB]).unwrap();
        f.finish().unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 1, "a torn newest generation must not win");

        // An intact record with an *empty* edit is not stillborn — a
        // fresh store's seed snapshot is exactly that.
        let mut w4 = ManifestWriter::create(&env, 4).unwrap();
        w4.append(&VersionEdit::default(), 9).unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 4);
        assert_eq!(r.next_file, 9);
    }

    #[test]
    fn sole_empty_generation_still_recovers() {
        let env = MemEnv::new(None);
        ManifestWriter::create(&env, 1).unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.generation, 1);
        assert!(r.edits.is_empty());
    }

    #[test]
    fn prune_removes_older_generations() {
        let env = MemEnv::new(None);
        for gen in 1..=3 {
            let mut w = ManifestWriter::create(&env, gen).unwrap();
            w.append(&VersionEdit::default(), 1).unwrap();
        }
        prune_old_generations(&env, 3).unwrap();
        let names = env.list().unwrap();
        assert!(names.contains(&manifest_file_name(3)));
        assert!(!names.contains(&manifest_file_name(1)));
        assert!(!names.contains(&manifest_file_name(2)));
    }

    #[test]
    fn wal_oldest_live_is_sticky_and_backward_compatible() {
        let env = MemEnv::new(None);
        let mut w = ManifestWriter::create(&env, 1).unwrap();
        w.append(&VersionEdit::default(), 2).unwrap();
        w.set_wal_oldest_live(5);
        w.append(&VersionEdit::default(), 3).unwrap();
        // A later record without a new mark still carries the sticky one.
        w.append(&VersionEdit::default(), 4).unwrap();
        let r = recover(&env).unwrap().unwrap();
        assert_eq!(r.wal_oldest_live, 5);
        assert_eq!(r.next_file, 4);

        // Records from before the WAL-lifecycle subsystem (no trailing
        // field) decode with mark 0.
        let mut legacy = encode_record(&VersionEdit::default(), 9, 5);
        legacy.truncate(legacy.len() - 8);
        let (_, next_file, oldest) = decode_record(&legacy).unwrap();
        assert_eq!(next_file, 9);
        assert_eq!(oldest, 0);
    }

    #[test]
    fn name_parsing() {
        assert_eq!(parse_manifest_name("MANIFEST-000007"), Some(7));
        assert_eq!(parse_manifest_name("000007.sst"), None);
        assert_eq!(parse_manifest_name("MANIFEST-x"), None);
        assert_eq!(manifest_file_name(7), "MANIFEST-000007");
    }
}
