//! Leveled file metadata: versions and version edits.
//!
//! A [`Version`] is an immutable snapshot of which SSTables live in which
//! level. Readers grab an `Arc<Version>` and proceed without locks (the
//! RocksDB-style read path); writers apply [`VersionEdit`]s under the
//! [`VersionSet`] mutex, installing a fresh `Arc`.
//!
//! Invariants (checked by `Version::check_invariants`):
//! - L0 files may overlap and are ordered newest-first (higher file number
//!   first);
//! - levels ≥ 1 hold disjoint key ranges, sorted by smallest key.

use std::sync::Arc;

use flodb_sync::lock_order::{VERSION_CLEANUP, VERSION_CURRENT};
use flodb_sync::shim::{ranked_mutex, Mutex};

use crate::error::{Result, StorageError};

/// Number of on-disk levels (L0..=L6), matching LevelDB.
pub const NUM_LEVELS: usize = 7;

/// Metadata for one SSTable file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Monotonic file number (also names the file).
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest user key.
    pub smallest: Box<[u8]>,
    /// Largest user key.
    pub largest: Box<[u8]>,
    /// Record count.
    pub entries: u64,
    /// Largest sequence number in the file (recovery resumes the global
    /// sequence counter past the maximum over all live files).
    pub largest_seq: u64,
}

impl FileMeta {
    /// Returns whether this file's key range intersects `[low, high]`.
    pub fn overlaps(&self, low: &[u8], high: &[u8]) -> bool {
        self.smallest.as_ref() <= high && self.largest.as_ref() >= low
    }

    /// Returns whether `key` falls inside this file's range.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.smallest.as_ref() <= key && key <= self.largest.as_ref()
    }
}

/// A live reference to an SSTable: metadata plus a deferred cleanup hook.
///
/// Version snapshots hold `Arc<FileHandle>`s; a compaction that obsoletes a
/// file installs a cleanup closure (evict + unlink) on its handle instead
/// of deleting eagerly, so the file survives exactly as long as some
/// reader's snapshot can still reach it — LevelDB's version refcounting.
pub struct FileHandle {
    /// The file metadata.
    pub meta: FileMeta,
    cleanup: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl FileHandle {
    /// Wraps metadata with no cleanup installed.
    pub fn new(meta: FileMeta) -> Self {
        Self {
            meta,
            cleanup: ranked_mutex(VERSION_CLEANUP, None),
        }
    }

    /// Installs the action to run when the last snapshot releases this
    /// file. Replaces any previously installed action.
    pub fn set_cleanup(&self, f: impl FnOnce() + Send + 'static) {
        *self.cleanup.lock() = Some(Box::new(f));
    }
}

impl Drop for FileHandle {
    fn drop(&mut self) {
        if let Some(f) = self.cleanup.get_mut().take() {
            f();
        }
    }
}

impl std::ops::Deref for FileHandle {
    type Target = FileMeta;

    fn deref(&self) -> &FileMeta {
        &self.meta
    }
}

impl std::fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileHandle").field("meta", &self.meta).finish()
    }
}

/// An immutable snapshot of the file layout.
#[derive(Debug, Clone, Default)]
pub struct Version {
    /// `levels[0]` newest-first; deeper levels sorted by smallest key.
    pub levels: Vec<Vec<Arc<FileHandle>>>,
}

impl Version {
    /// Creates an empty version.
    pub fn empty() -> Self {
        Self {
            levels: vec![Vec::new(); NUM_LEVELS],
        }
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.size).sum()
    }

    /// Total number of files.
    pub fn num_files(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Files at `level` overlapping `[low, high]`.
    pub fn overlapping(&self, level: usize, low: &[u8], high: &[u8]) -> Vec<Arc<FileHandle>> {
        self.levels[level]
            .iter()
            .filter(|f| f.overlaps(low, high))
            .cloned()
            .collect()
    }

    /// Files to consult for a point lookup of `key`, in freshness order:
    /// all matching L0 files (newest first), then at most one file per
    /// deeper level.
    pub fn files_for_key(&self, key: &[u8]) -> Vec<(usize, Arc<FileHandle>)> {
        let mut out = Vec::new();
        for f in &self.levels[0] {
            if f.contains(key) {
                out.push((0, Arc::clone(f)));
            }
        }
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            // Levels >= 1 are sorted and disjoint: binary search.
            let i = files.partition_point(|f| f.largest.as_ref() < key);
            if i < files.len() && files[i].contains(key) {
                out.push((level, Arc::clone(&files[i])));
            }
        }
        out
    }

    /// Checks the structural invariants, returning a description of the
    /// first violation.
    pub fn check_invariants(&self) -> Result<()> {
        if self.levels.len() != NUM_LEVELS {
            return Err(StorageError::Corruption("wrong level count".into()));
        }
        for w in self.levels[0].windows(2) {
            if w[0].number < w[1].number {
                return Err(StorageError::Corruption(
                    "L0 not ordered newest-first".into(),
                ));
            }
        }
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            for w in files.windows(2) {
                if w[0].smallest >= w[1].smallest {
                    return Err(StorageError::Corruption(format!(
                        "L{level} not sorted by smallest key"
                    )));
                }
                if w[0].largest >= w[1].smallest {
                    return Err(StorageError::Corruption(format!(
                        "L{level} files overlap"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A delta to apply to a version.
#[derive(Debug, Default, Clone)]
pub struct VersionEdit {
    /// Files to add: `(level, meta)`.
    pub added: Vec<(usize, FileMeta)>,
    /// Files to remove: `(level, file_number)`.
    pub deleted: Vec<(usize, u64)>,
}

impl VersionEdit {
    /// Records a new file at `level`.
    pub fn add(&mut self, level: usize, meta: FileMeta) {
        self.added.push((level, meta));
    }

    /// Records the removal of `file_number` from `level`.
    pub fn delete(&mut self, level: usize, file_number: u64) {
        self.deleted.push((level, file_number));
    }
}

/// The mutable set of versions: applies edits, hands out snapshots.
#[derive(Debug)]
pub struct VersionSet {
    current: Mutex<Arc<Version>>,
    next_file: std::sync::atomic::AtomicU64,
}

impl VersionSet {
    /// Creates a version set with an empty current version.
    pub fn new() -> Self {
        Self {
            current: ranked_mutex(VERSION_CURRENT, Arc::new(Version::empty())),
            next_file: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Returns the current version snapshot (lock held only for the clone).
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current.lock())
    }

    // The file-number allocator is a pure monotonic counter: uniqueness
    // comes from the RMWs' single modification order, and every consumer
    // that persists a number does so under the manifest lock, which
    // provides the cross-variable ordering. Relaxed is sufficient.

    /// Allocates a fresh file number.
    pub fn new_file_number(&self) -> u64 {
        self.next_file
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the next file number without allocating it (recorded in
    /// manifest records so recovery can resume allocation).
    pub fn peek_file_number(&self) -> u64 {
        self.next_file.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Moves the allocator forward to at least `n` (manifest recovery).
    pub fn bump_file_number(&self, n: u64) {
        self.next_file
            .fetch_max(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Applies `edit`, installing and returning the new current version.
    ///
    /// Returns the handles removed from the layout; callers install their
    /// cleanup (evict + unlink) on these, which fires once the last
    /// snapshot referencing them drops.
    pub fn apply(&self, edit: &VersionEdit) -> Result<(Arc<Version>, Vec<Arc<FileHandle>>)> {
        let mut guard = self.current.lock();
        let mut next = Version {
            levels: guard.levels.clone(),
        };
        let mut removed = Vec::new();
        for (level, number) in &edit.deleted {
            let files = &mut next.levels[*level];
            let Some(pos) = files.iter().position(|f| f.number == *number) else {
                return Err(StorageError::InvalidArgument(format!(
                    "edit deletes unknown file {number} at L{level}"
                )));
            };
            removed.push(files.remove(pos));
        }
        for (level, meta) in &edit.added {
            let files = &mut next.levels[*level];
            let handle = Arc::new(FileHandle::new(meta.clone()));
            if *level == 0 {
                // Newest-first by file number.
                let pos = files.partition_point(|f| f.number > handle.number);
                files.insert(pos, handle);
            } else {
                let pos = files.partition_point(|f| f.smallest < handle.smallest);
                files.insert(pos, handle);
            }
        }
        next.check_invariants()?;
        let next = Arc::new(next);
        *guard = Arc::clone(&next);
        Ok((next, removed))
    }
}

impl Default for VersionSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(number: u64, lo: u64, hi: u64) -> FileMeta {
        FileMeta {
            number,
            size: 100,
            smallest: Box::new(lo.to_be_bytes()),
            largest: Box::new(hi.to_be_bytes()),
            entries: hi - lo + 1,
            largest_seq: hi,
        }
    }

    #[test]
    fn empty_version_is_valid() {
        let v = Version::empty();
        v.check_invariants().unwrap();
        assert_eq!(v.num_files(), 0);
        assert!(v.files_for_key(b"k").is_empty());
    }

    #[test]
    fn apply_adds_files_in_order() {
        let vs = VersionSet::new();
        let mut edit = VersionEdit::default();
        edit.add(1, meta(2, 50, 99));
        edit.add(1, meta(1, 0, 49));
        edit.add(0, meta(3, 0, 100));
        edit.add(0, meta(4, 0, 100));
        let (v, removed) = vs.apply(&edit).unwrap();
        assert!(removed.is_empty());
        // L1 sorted by smallest.
        assert_eq!(v.levels[1][0].number, 1);
        assert_eq!(v.levels[1][1].number, 2);
        // L0 newest first.
        assert_eq!(v.levels[0][0].number, 4);
        assert_eq!(v.levels[0][1].number, 3);
    }

    #[test]
    fn apply_rejects_overlap_in_deep_levels() {
        let vs = VersionSet::new();
        let mut edit = VersionEdit::default();
        edit.add(1, meta(1, 0, 50));
        edit.add(1, meta(2, 40, 80));
        assert!(vs.apply(&edit).is_err());
    }

    #[test]
    fn apply_rejects_unknown_delete() {
        let vs = VersionSet::new();
        let mut edit = VersionEdit::default();
        edit.delete(1, 99);
        assert!(vs.apply(&edit).is_err());
    }

    #[test]
    fn files_for_key_order_is_freshest_first() {
        let vs = VersionSet::new();
        let mut edit = VersionEdit::default();
        edit.add(0, meta(10, 0, 100));
        edit.add(0, meta(11, 0, 100));
        edit.add(1, meta(5, 0, 60));
        edit.add(2, meta(3, 0, 60));
        let (v, _) = vs.apply(&edit).unwrap();
        let files = v.files_for_key(&30u64.to_be_bytes());
        let numbers: Vec<u64> = files.iter().map(|(_, f)| f.number).collect();
        assert_eq!(numbers, vec![11, 10, 5, 3]);
    }

    #[test]
    fn snapshots_are_immutable() {
        let vs = VersionSet::new();
        let before = vs.current();
        let mut edit = VersionEdit::default();
        edit.add(1, meta(1, 0, 10));
        vs.apply(&edit).unwrap();
        assert_eq!(before.num_files(), 0, "old snapshot must not change");
        assert_eq!(vs.current().num_files(), 1);
    }

    #[test]
    fn delete_then_add_same_apply() {
        let vs = VersionSet::new();
        let mut edit = VersionEdit::default();
        edit.add(1, meta(1, 0, 10));
        vs.apply(&edit).unwrap();
        let mut edit2 = VersionEdit::default();
        edit2.delete(1, 1);
        edit2.add(2, meta(2, 0, 10));
        let (v, removed) = vs.apply(&edit2).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].number, 1);
        assert!(v.levels[1].is_empty());
        assert_eq!(v.levels[2].len(), 1);
    }

    #[test]
    fn overlap_queries() {
        let f = meta(1, 10, 20);
        assert!(f.overlaps(&5u64.to_be_bytes(), &15u64.to_be_bytes()));
        assert!(f.overlaps(&15u64.to_be_bytes(), &30u64.to_be_bytes()));
        assert!(!f.overlaps(&21u64.to_be_bytes(), &30u64.to_be_bytes()));
        assert!(f.contains(&10u64.to_be_bytes()));
        assert!(!f.contains(&9u64.to_be_bytes()));
    }
}
