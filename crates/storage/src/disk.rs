//! The disk component: flushes, point reads, range scans, compaction.
//!
//! [`DiskComponent`] glues the substrate together the way LevelDB does:
//! memtable flushes become L0 tables, reads walk the leveled hierarchy
//! newest-to-oldest, scans k-way-merge every overlapping file, and a
//! compaction step keeps level budgets in shape. All five stores in this
//! repository (FloDB and the four baselines) persist through this one
//! component, mirroring the paper's control: "we keep the persisting and
//! compaction mechanisms of LevelDB" (§4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flodb_sync::lock_order::{DISK_COMPACTION, DISK_MANIFEST};
use flodb_sync::shim::{ranked_mutex, Mutex};

use crate::compaction::{pick_compaction, run_compaction, CompactionConfig};
use crate::env::Env;
use crate::error::Result;
use crate::manifest;
use crate::record::Record;
use crate::sstable::{table_file_name, TableBuilder};
use crate::table_cache::{GlobalLockTableCache, ShardedTableCache, TableCache};
use crate::version::{FileMeta, Version, VersionEdit, VersionSet, NUM_LEVELS};

/// Options for a [`DiskComponent`].
#[derive(Debug, Clone, Copy)]
pub struct DiskOptions {
    /// Leveled-compaction tunables.
    pub compaction: CompactionConfig,
    /// Open-table cache capacity (total handles).
    pub cache_capacity: usize,
    /// Use the sharded (concurrent) table cache; `false` reproduces the
    /// LevelDB global-lock fd-cache the baselines contend on.
    pub sharded_cache: bool,
    /// Shard count for the sharded cache.
    pub cache_shards: usize,
    /// Log version edits to a MANIFEST so [`DiskComponent::open`] can
    /// reconstruct the file layout after a restart (LevelDB behaviour).
    /// [`DiskComponent::new`] ignores this and never writes a manifest.
    pub manifest: bool,
}

impl Default for DiskOptions {
    fn default() -> Self {
        Self {
            compaction: CompactionConfig::default(),
            cache_capacity: 256,
            sharded_cache: true,
            cache_shards: 16,
            manifest: true,
        }
    }
}

/// Counters exposed by [`DiskComponent::stats`].
#[derive(Debug, Clone, Default)]
pub struct DiskStats {
    /// Number of memtable flushes performed.
    pub flushes: u64,
    /// Number of compactions performed.
    pub compactions: u64,
    /// Files per level.
    pub files_per_level: Vec<usize>,
    /// Bytes per level.
    pub bytes_per_level: Vec<u64>,
    /// Total bytes written through the env (write amplification numerator).
    pub env_bytes_written: u64,
    /// Table cache hits/misses.
    pub cache_hits: u64,
    /// Table cache misses.
    pub cache_misses: u64,
}

/// The on-disk half of an LSM store.
pub struct DiskComponent {
    env: Arc<dyn Env>,
    versions: VersionSet,
    cache: Arc<dyn TableCache>,
    opts: DiskOptions,
    /// Serializes compactions (flushes may proceed concurrently).
    compaction_lock: Mutex<()>,
    /// Orders manifest appends with their version-set application.
    manifest: Option<Mutex<manifest::ManifestWriter>>,
    /// Oldest-live WAL generation (0 = unrecorded), mirrored from the
    /// manifest so the store reads it without taking the writer lock.
    wal_oldest_live: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

impl DiskComponent {
    /// Creates an empty, *ephemeral* disk component on `env`: no manifest
    /// is read or written, so the layout is lost when the component drops.
    /// Use [`DiskComponent::open`] for a persistent store.
    pub fn new(env: Arc<dyn Env>, opts: DiskOptions) -> Self {
        Self::build(env, opts, None)
    }

    /// Opens a disk component on `env`, recovering the file layout from
    /// the newest manifest generation if one exists, then starting a fresh
    /// generation (when `opts.manifest` is set) and deleting obsolete
    /// manifests and orphaned tables.
    pub fn open(env: Arc<dyn Env>, opts: DiskOptions) -> Result<Self> {
        let recovered = manifest::recover(env.as_ref())?;
        let component = Self::build(Arc::clone(&env), opts, None);
        let mut generation = 0;
        let mut wal_oldest = 0;
        if let Some(r) = recovered {
            for edit in &r.edits {
                component.versions.apply(edit)?;
            }
            component.versions.bump_file_number(r.next_file);
            generation = r.generation;
            wal_oldest = r.wal_oldest_live;
        }
        component.wal_oldest_live.store(wal_oldest, Ordering::Relaxed);
        let component = if opts.manifest {
            // Start a fresh generation seeded with a snapshot of the live
            // layout, so older generations become redundant. The recovered
            // oldest-live WAL mark is re-stamped into the snapshot record.
            let mut writer = manifest::ManifestWriter::create(env.as_ref(), generation + 1)?;
            writer.set_wal_oldest_live(wal_oldest);
            let version = component.versions.current();
            let mut snapshot = VersionEdit::default();
            for (level, files) in version.levels.iter().enumerate() {
                for file in files {
                    snapshot.add(level, file.meta.clone());
                }
            }
            writer.append(&snapshot, component.versions.peek_file_number())?;
            manifest::prune_old_generations(env.as_ref(), generation + 1)?;
            Self {
                manifest: Some(ranked_mutex(DISK_MANIFEST, writer)),
                ..component
            }
        } else {
            component
        };
        component.remove_orphaned_tables()?;
        Ok(component)
    }

    fn build(env: Arc<dyn Env>, opts: DiskOptions, manifest: Option<Mutex<manifest::ManifestWriter>>) -> Self {
        let cache: Arc<dyn TableCache> = if opts.sharded_cache {
            Arc::new(ShardedTableCache::new(
                Arc::clone(&env),
                opts.cache_capacity,
                opts.cache_shards,
            ))
        } else {
            Arc::new(GlobalLockTableCache::new(
                Arc::clone(&env),
                opts.cache_capacity,
            ))
        };
        Self {
            env,
            versions: VersionSet::new(),
            cache,
            opts,
            compaction_lock: ranked_mutex(DISK_COMPACTION, ()),
            manifest,
            wal_oldest_live: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Deletes `.sst` files not referenced by the current version (e.g.
    /// written by a flush whose manifest record never made it to disk).
    fn remove_orphaned_tables(&self) -> Result<()> {
        let version = self.versions.current();
        let live: std::collections::HashSet<u64> = version
            .levels
            .iter()
            .flatten()
            .map(|f| f.number)
            .collect();
        for name in self.env.list()? {
            if let Some(number) = name
                .strip_suffix(".sst")
                .and_then(|stem| stem.parse::<u64>().ok())
            {
                if !live.contains(&number) {
                    self.env.delete(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Applies `edit` to the version set and, when a manifest is active,
    /// logs it in the same order.
    ///
    /// When the edit *adds* tables, the directory is synced first:
    /// fsyncing a new table's contents does not persist its directory
    /// entry, and an fsynced manifest record referencing a file that
    /// vanishes with the directory would lose the flushed data — fatally
    /// so once WAL retirement advances the oldest-live mark on the
    /// strength of that record.
    fn apply_edit(
        &self,
        edit: &VersionEdit,
    ) -> Result<(Arc<Version>, Vec<Arc<crate::version::FileHandle>>)> {
        match &self.manifest {
            Some(writer) => {
                if !edit.added.is_empty() {
                    self.env.sync_dir()?;
                }
                let mut writer = writer.lock();
                let applied = self.versions.apply(edit)?;
                writer.append(edit, self.versions.peek_file_number())?;
                Ok(applied)
            }
            None => self.versions.apply(edit),
        }
    }

    /// Returns the current version snapshot.
    pub fn version(&self) -> Arc<Version> {
        self.versions.current()
    }

    /// Largest sequence number persisted in any live table.
    ///
    /// A store reopening this component must resume its global sequence
    /// counter past this value, or fresh writes would lose seq-based
    /// merges against recovered disk records.
    pub fn max_persisted_seq(&self) -> u64 {
        self.versions
            .current()
            .levels
            .iter()
            .flatten()
            .map(|f| f.largest_seq)
            .max()
            .unwrap_or(0)
    }

    /// Returns the environment (shared with WALs and tests).
    pub fn env(&self) -> &Arc<dyn Env> {
        &self.env
    }

    /// Oldest-live WAL generation recovered from (or recorded into) the
    /// manifest; 0 means unrecorded — recovery must scan every log
    /// generation.
    pub fn wal_oldest_live(&self) -> u64 {
        self.wal_oldest_live.load(Ordering::Acquire)
    }

    /// Durably records `generation` as the oldest WAL generation recovery
    /// must scan (an fsynced manifest append). Must be called **before**
    /// older segments are deleted: a crash after the record but before the
    /// deletions leaves only stale files recovery ignores, whereas the
    /// reverse order could delete segments recovery still needs.
    ///
    /// Without an active manifest the mark is process-local only (and
    /// retirement must not run — nothing would survive a restart).
    pub fn record_wal_oldest_live(&self, generation: u64) -> Result<()> {
        if let Some(writer) = &self.manifest {
            let mut writer = writer.lock();
            writer.set_wal_oldest_live(generation);
            writer.append(&VersionEdit::default(), self.versions.peek_file_number())?;
        }
        self.wal_oldest_live.store(generation, Ordering::Release);
        Ok(())
    }

    /// Flushes a run of records into one or more L0 tables.
    ///
    /// Records need not be pre-sorted (the hash-memtable baselines flush
    /// unsorted data and pay the sort here, reproducing Figure 4's
    /// compaction-time penalty). Duplicate keys are kept as a
    /// newest-first version run — LevelDB flushes *every* version it
    /// holds, which is exactly the write amplification that prevents
    /// multi-versioned stores from capturing skewed workloads (Figure 16);
    /// versions collapse later, during compaction.
    pub fn flush_records(&self, mut records: Vec<Record>) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        records.sort_by(|a, b| a.key.cmp(&b.key).then(b.seq.cmp(&a.seq)));

        let mut edit = VersionEdit::default();
        let mut builder: Option<(u64, TableBuilder)> = None;
        for record in &records {
            if builder.is_none() {
                let number = self.versions.new_file_number();
                let file = self.env.new_writable(&table_file_name(number))?;
                builder = Some((
                    number,
                    TableBuilder::new(
                        file,
                        self.opts.compaction.block_bytes,
                        self.opts.compaction.bloom_bits_per_key,
                    ),
                ));
            }
            let (_, b) = builder.as_mut().expect("just ensured");
            b.add(record)?;
            if b.file_size() >= self.opts.compaction.target_file_bytes {
                let (number, b) = builder.take().expect("present");
                let meta = b.finish()?;
                edit.add(0, file_meta(number, meta));
            }
        }
        if let Some((number, b)) = builder.take() {
            let meta = b.finish()?;
            edit.add(0, file_meta(number, meta));
        }
        self.apply_edit(&edit)?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Point lookup: returns the freshest on-disk record for `key`
    /// (including tombstones) or `None`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>> {
        let version = self.versions.current();
        let mut best_l0: Option<Record> = None;
        for (level, file) in version.files_for_key(key) {
            let table = self.cache.get(file.number)?;
            if let Some(record) = table.get(key)? {
                if level == 0 {
                    // L0 files overlap; keep searching L0 for a fresher seq.
                    if best_l0.as_ref().is_none_or(|b| record.seq > b.seq) {
                        best_l0 = Some(record);
                    }
                } else {
                    // Deeper levels are strictly older than any L0 hit.
                    return Ok(best_l0.or(Some(record)));
                }
            } else if level != 0 && best_l0.is_some() {
                return Ok(best_l0);
            }
        }
        Ok(best_l0)
    }

    /// Range scan over `[low, high]` (inclusive): freshest record per key,
    /// in key order, tombstones included so the caller can shadow.
    pub fn scan(&self, low: &[u8], high: &[u8]) -> Result<Vec<Record>> {
        let version = self.versions.current();
        let mut iters = Vec::new();
        for level in 0..NUM_LEVELS {
            for file in version.overlapping(level, low, high) {
                let table = self.cache.get(file.number)?;
                let mut it = table.iter();
                it.seek(low)?;
                if it.valid() {
                    iters.push(it);
                }
            }
        }
        let mut cursor = crate::compaction::MergeCursor::new(iters);
        let mut out = Vec::new();
        while let Some(record) = cursor.next_merged()? {
            if record.key.as_ref() > high {
                break;
            }
            out.push(record);
        }
        Ok(out)
    }

    /// Runs at most one compaction step; returns whether one ran.
    pub fn maybe_compact(&self) -> Result<bool> {
        let _guard = self.compaction_lock.lock();
        let version = self.versions.current();
        let Some(job) = pick_compaction(&version, &self.opts.compaction) else {
            return Ok(false);
        };
        // Tombstones can be dropped when no level below the output holds
        // data overlapping the job (then nothing older can resurface).
        let out_level = job.level + 1;
        let drop_tombstones = ((out_level + 1)..NUM_LEVELS)
            .all(|l| version.levels[l].is_empty());
        let mut alloc = || self.versions.new_file_number();
        let edit = run_compaction(
            self.env.as_ref(),
            self.cache.as_ref(),
            &job,
            &self.opts.compaction,
            &mut alloc,
            drop_tombstones,
        )?;
        let (_, removed) = self.apply_edit(&edit)?;
        for handle in removed {
            // Deletion is deferred until the last snapshot referencing the
            // file drops (LevelDB's version refcounting): install the
            // cleanup and release our reference.
            let cache = Arc::clone(&self.cache);
            let env = Arc::clone(&self.env);
            let number = handle.number;
            handle.set_cleanup(move || {
                cache.evict(number);
                // LOCK-OK: deferred-cleanup closure — it runs when the
                // last snapshot drops, not under the compaction lock the
                // lexical pass sees here.
                let _ = env.delete(&table_file_name(number));
            });
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Compacts until the shape is within budget everywhere.
    pub fn compact_all(&self) -> Result<()> {
        while self.maybe_compact()? {}
        Ok(())
    }

    /// Returns whether any compaction is currently warranted.
    pub fn needs_compaction(&self) -> bool {
        pick_compaction(&self.versions.current(), &self.opts.compaction).is_some()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        let version = self.versions.current();
        let cache = self.cache.stats();
        DiskStats {
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            files_per_level: version.levels.iter().map(Vec::len).collect(),
            bytes_per_level: (0..NUM_LEVELS).map(|l| version.level_bytes(l)).collect(),
            env_bytes_written: self.env.bytes_written(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }
}

fn file_meta(number: u64, meta: crate::sstable::TableMeta) -> FileMeta {
    FileMeta {
        number,
        size: meta.file_size,
        smallest: meta.smallest,
        largest: meta.largest,
        entries: meta.entries,
        largest_seq: meta.largest_seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;

    fn disk() -> DiskComponent {
        let opts = DiskOptions {
            compaction: CompactionConfig {
                l0_trigger: 2,
                base_level_bytes: 16 * 1024,
                target_file_bytes: 8 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        DiskComponent::new(Arc::new(MemEnv::new(None)), opts)
    }

    fn put(k: u64, seq: u64) -> Record {
        Record::put(k.to_be_bytes().as_slice(), seq, vec![k as u8; 32])
    }

    #[test]
    fn flush_then_get() {
        let d = disk();
        d.flush_records((0..100).map(|k| put(k, k + 1)).collect())
            .unwrap();
        let r = d.get(&42u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(r.seq, 43);
        assert!(d.get(&1000u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(d.stats().flushes, 1);
    }

    #[test]
    fn newer_flush_shadows_older() {
        let d = disk();
        d.flush_records(vec![put(1, 1)]).unwrap();
        d.flush_records(vec![put(1, 2)]).unwrap();
        assert_eq!(d.get(&1u64.to_be_bytes()).unwrap().unwrap().seq, 2);
    }

    #[test]
    fn tombstone_is_returned() {
        let d = disk();
        d.flush_records(vec![put(1, 1)]).unwrap();
        d.flush_records(vec![Record::tombstone(1u64.to_be_bytes().as_slice(), 2)])
            .unwrap();
        let r = d.get(&1u64.to_be_bytes()).unwrap().unwrap();
        assert!(r.is_tombstone());
    }

    #[test]
    fn get_survives_compaction() {
        let d = disk();
        for round in 0..6u64 {
            d.flush_records((0..200).map(|k| put(k, round * 200 + k + 1)).collect())
                .unwrap();
        }
        d.compact_all().unwrap();
        assert!(!d.needs_compaction());
        let stats = d.stats();
        assert!(stats.compactions > 0);
        // All keys still resolve to the freshest round.
        for k in 0..200u64 {
            let r = d.get(&k.to_be_bytes()).unwrap().unwrap();
            assert_eq!(r.seq, 5 * 200 + k + 1, "key {k}");
        }
    }

    #[test]
    fn scan_merges_levels() {
        let d = disk();
        d.flush_records((0..50).map(|k| put(k * 2, k + 1)).collect())
            .unwrap();
        d.compact_all().unwrap();
        d.flush_records(vec![put(10, 1000), Record::tombstone(20u64.to_be_bytes().as_slice(), 1001)])
            .unwrap();

        let out = d
            .scan(&8u64.to_be_bytes(), &24u64.to_be_bytes())
            .unwrap();
        let kv: Vec<(u64, u64, bool)> = out
            .iter()
            .map(|r| {
                (
                    u64::from_be_bytes(r.key.as_ref().try_into().unwrap()),
                    r.seq,
                    r.is_tombstone(),
                )
            })
            .collect();
        // Keys 8..=24 even: 8,10,12,...,24; key 10 fresher (seq 1000), key
        // 20 shadowed by tombstone.
        assert_eq!(kv.len(), 9);
        assert_eq!(kv[0], (8, 5, false));
        assert_eq!(kv[1], (10, 1000, false));
        assert!(kv.iter().any(|&(k, _, tomb)| k == 20 && tomb));
    }

    #[test]
    fn scan_empty_range() {
        let d = disk();
        d.flush_records(vec![put(5, 1)]).unwrap();
        assert!(d
            .scan(&100u64.to_be_bytes(), &200u64.to_be_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unsorted_flush_is_sorted_and_deduped() {
        let d = disk();
        d.flush_records(vec![put(5, 1), put(3, 2), put(5, 7), put(1, 3)])
            .unwrap();
        let out = d.scan(&0u64.to_be_bytes(), &10u64.to_be_bytes()).unwrap();
        let keys: Vec<u64> = out
            .iter()
            .map(|r| u64::from_be_bytes(r.key.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(out[2].seq, 7, "duplicate must keep the larger seq");
    }

    #[test]
    fn compaction_reduces_file_count_and_deletes_inputs() {
        let d = disk();
        for round in 0..4u64 {
            d.flush_records((0..100).map(|k| put(k, round * 100 + k + 1)).collect())
                .unwrap();
        }
        let files_before: usize = d.stats().files_per_level.iter().sum();
        d.compact_all().unwrap();
        let stats = d.stats();
        let files_after: usize = stats.files_per_level.iter().sum();
        assert!(files_after < files_before);
        assert_eq!(stats.files_per_level[0], 0, "L0 fully drained");
        // Env must not keep deleted files around.
        let live: usize = d.env().list().unwrap().len();
        assert_eq!(live, files_after);
    }

    fn disk_opts() -> DiskOptions {
        DiskOptions {
            compaction: CompactionConfig {
                l0_trigger: 2,
                base_level_bytes: 16 * 1024,
                target_file_bytes: 8 * 1024,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn reopen_recovers_layout_from_manifest() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
            for round in 0..4u64 {
                d.flush_records((0..200).map(|k| put(k, round * 200 + k + 1)).collect())
                    .unwrap();
            }
            d.compact_all().unwrap();
        }
        let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
        for k in (0..200u64).step_by(13) {
            let r = d.get(&k.to_be_bytes()).unwrap().unwrap();
            assert_eq!(r.seq, 3 * 200 + k + 1, "key {k} lost across reopen");
        }
        // New flushes continue with fresh file numbers (no collisions).
        d.flush_records(vec![put(1, 10_000)]).unwrap();
        assert_eq!(d.get(&1u64.to_be_bytes()).unwrap().unwrap().seq, 10_000);
    }

    #[test]
    fn reopen_prunes_orphans_and_old_manifests() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
            d.flush_records((0..50).map(|k| put(k, k + 1)).collect())
                .unwrap();
        }
        // Simulate a flush whose manifest record never landed: an .sst not
        // referenced by any version.
        let mut orphan = env.new_writable("999999.sst").unwrap();
        orphan.append(b"garbage").unwrap();
        orphan.finish().unwrap();

        let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
        let names = env.list().unwrap();
        assert!(
            !names.contains(&"999999.sst".to_string()),
            "orphaned table must be deleted"
        );
        let manifests: Vec<&String> =
            names.iter().filter(|n| n.starts_with("MANIFEST-")).collect();
        assert_eq!(manifests.len(), 1, "only the live generation remains");
        // And the data is intact.
        assert!(d.get(&25u64.to_be_bytes()).unwrap().is_some());
    }

    #[test]
    fn wal_oldest_live_survives_reopen() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
            assert_eq!(d.wal_oldest_live(), 0);
            d.record_wal_oldest_live(4).unwrap();
            d.flush_records(vec![put(1, 1)]).unwrap();
            d.record_wal_oldest_live(9).unwrap();
        }
        let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
        assert_eq!(d.wal_oldest_live(), 9, "mark must survive the restart");
        // And the next manifest generation re-stamps it, so a second
        // restart (whose recovery reads only the newest generation) still
        // sees it.
        drop(d);
        let d = DiskComponent::open(env, disk_opts()).unwrap();
        assert_eq!(d.wal_oldest_live(), 9);
    }

    #[test]
    fn ephemeral_new_ignores_existing_manifest() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let d = DiskComponent::open(Arc::clone(&env), disk_opts()).unwrap();
            d.flush_records(vec![put(1, 1)]).unwrap();
        }
        let d = DiskComponent::new(Arc::clone(&env), disk_opts());
        assert!(
            d.get(&1u64.to_be_bytes()).unwrap().is_none(),
            "`new` must start empty"
        );
    }

    #[test]
    fn concurrent_reads_during_flush_and_compaction() {
        let d = Arc::new(disk());
        d.flush_records((0..500).map(|k| put(k, k + 1)).collect())
            .unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let d = Arc::clone(&d);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in (0..500u64).step_by(61) {
                        let r = d.get(&k.to_be_bytes()).unwrap().unwrap();
                        assert!(r.seq > k);
                    }
                }
            }));
        }
        for round in 1..5u64 {
            d.flush_records((0..500).map(|k| put(k, round * 1000 + k)).collect())
                .unwrap();
            d.maybe_compact().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
