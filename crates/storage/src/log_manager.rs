//! WAL lifecycle management: segment rotation, retirement, recovery.
//!
//! A single log generation grows without bound under sustained write
//! traffic, so the commit log is split into **generation-numbered
//! segments** (`000001.log`, `000002.log`, ...), each opened by a
//! checksummed header ([`crate::wal::segment_header`]). The
//! [`LogManager`] owns the set:
//!
//! - **active → sealed**: every append lands in the *active* segment;
//!   once it crosses `segment_max_bytes` the manager *seals* it and rolls
//!   to a fresh generation. Appends are whole commit groups (one frame
//!   per call), so rotation always happens at a group boundary and a
//!   multi-record batch frame is never split across segments.
//! - **sealed → retired**: when the store has persisted a checkpoint
//!   covering a sealed segment's records, [`LogManager::retire_up_to`]
//!   deletes the segment files and syncs the directory. The caller must
//!   first durably record the new oldest-live generation (FloDB puts it
//!   in the MANIFEST, see `manifest::ManifestWriter::set_wal_oldest_live`)
//!   so a crash between the record and the deletion leaves only ignorable
//!   stale files, never a recovery that replays retired data under live
//!   data.
//!
//! Recovery ([`recover_segments`]) scans only generations at or above the
//! recorded oldest-live mark, in generation order, truncating each
//! segment at its own first torn or corrupt frame. Per-segment
//! truncation is sound because a process crash can only tear the frame
//! being written — always in the newest write region — and a sealed
//! segment is fully written (and, under sync-on-write, fully fsynced)
//! before the next generation accepts its first frame; a tear sitting in
//! a *middle* generation is therefore an old crash point that some
//! earlier open already accepted as truncation, and the later
//! generations were written on top of that accepted state (forfeiting
//! them — as a global stop-at-first-tear rule would — loses their
//! acknowledged writes, which matters in manifest-less mode where old
//! segments survive across runs). Recovery time stays proportional to
//! the live window, not the store's lifetime.

use std::mem;
use std::sync::Arc;

use crate::env::Env;
use crate::error::Result;
use crate::record::Record;
use crate::wal::{parse_wal_name, wal_file_name, BatchAnnotation, WalWriter};

/// Tuning for a [`LogManager`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Active-segment size (header included) that triggers a roll to a
    /// fresh generation at the next group boundary. The active segment can
    /// exceed this by at most one commit group, so live log bytes stay
    /// bounded by `segment_max_bytes + max group size` once sealed
    /// segments retire.
    pub segment_max_bytes: u64,
    /// Fsync every appended frame (durability over latency).
    pub sync_on_write: bool,
}

/// A sealed (rotated-out, not yet retired) segment.
#[derive(Debug, Clone, Copy)]
pub struct SealedSegment {
    /// The segment's generation number.
    pub generation: u64,
    /// Total file bytes, header included.
    pub bytes: u64,
}

/// What one append did to the segment set.
#[derive(Debug, Clone, Copy)]
pub struct AppendOutcome {
    /// Whether this append sealed the active segment and rolled to a
    /// fresh generation.
    pub rotated: bool,
    /// Whether a due rotation could not seal the segment because creating
    /// the next generation failed. The active segment stays fully usable
    /// and the roll is retried at the next group boundary; callers should
    /// surface the deferral (it means the log is growing past its
    /// threshold on a misbehaving device).
    pub rotation_failed: bool,
    /// Bytes now in the active segment (header included).
    pub active_bytes: u64,
    /// Live generations on disk: sealed-but-unretired plus the active one.
    pub live_generations: u64,
    /// Nanoseconds this append spent fsyncing (0 with `sync_on_write`
    /// off). Drained from the writer before any rotation swaps it, so the
    /// time is always attributed to the group that paid it.
    pub sync_ns: u64,
    /// Nanoseconds spent sealing and rolling the segment (0 unless
    /// `rotated` or `rotation_failed` is set).
    pub rotation_ns: u64,
    /// File bytes of the segment this append sealed (0 unless `rotated`).
    pub sealed_bytes: u64,
}

/// What a retirement pass deleted.
#[derive(Debug, Clone, Copy, Default)]
pub struct Retired {
    /// Segments deleted.
    pub segments: u64,
    /// Their total file bytes.
    pub bytes: u64,
}

/// Owns the WAL's generation-numbered segment set: the active writer, the
/// sealed backlog awaiting retirement, and the rotation counters.
///
/// The manager itself is not thread-safe; the store serializes access the
/// same way it serialized the single `WalWriter` before (one leader at a
/// time commits a group).
pub struct LogManager {
    env: Arc<dyn Env>,
    cfg: LogConfig,
    active_generation: u64,
    writer: WalWriter,
    /// Sealed segments in generation order (oldest first).
    sealed: Vec<SealedSegment>,
    rotations: u64,
    /// Due rotations deferred because creating the next segment failed.
    failed_rotations: u64,
}

impl LogManager {
    /// Creates a manager whose active segment is `first_generation`
    /// (header written and synced).
    pub fn create(env: Arc<dyn Env>, cfg: LogConfig, first_generation: u64) -> Result<Self> {
        let writer = WalWriter::create_segment(env.as_ref(), first_generation, cfg.sync_on_write)?;
        Ok(Self {
            env,
            cfg,
            active_generation: first_generation,
            writer,
            sealed: Vec::new(),
            rotations: 0,
            failed_rotations: 0,
        })
    }

    /// Appends one commit-group frame (header patched in place, see
    /// [`WalWriter::append_group_frame`]) to the active segment, then
    /// rolls to a fresh generation if the segment crossed its size
    /// threshold. Appends are whole groups, so the roll is always at a
    /// group boundary and no frame straddles two segments.
    pub fn append_group_frame(&mut self, frame: &mut [u8]) -> Result<AppendOutcome> {
        self.writer.append_group_frame(frame)?;
        // Drain the fsync time *before* a rotation can swap the writer
        // out, losing the nanoseconds this group just paid.
        let sync_ns = self.writer.take_sync_ns();
        let (rotated, rotation_failed, rotation_ns) = self.maybe_rotate();
        Ok(AppendOutcome {
            rotated,
            rotation_failed,
            active_bytes: self.writer.bytes_written(),
            live_generations: self.live_generations(),
            sync_ns,
            rotation_ns,
            sealed_bytes: if rotated {
                self.sealed.last().map_or(0, |s| s.bytes)
            } else {
                0
            },
        })
    }

    /// Seals the active segment and opens the next generation when the
    /// size threshold is crossed. The fresh segment is created (header
    /// synced) *before* the old writer is finished, so a creation failure
    /// leaves the current segment fully usable — the roll is simply
    /// retried at the next group boundary, and the log grows past its
    /// threshold instead of losing durability. Returns
    /// `(rotated, rotation_failed, rotation_ns)`; at most one flag is
    /// set, and the duration covers only attempted rolls (the cold
    /// threshold check costs nothing and reports 0).
    fn maybe_rotate(&mut self) -> (bool, bool, u64) {
        if self.writer.bytes_written() < self.cfg.segment_max_bytes {
            return (false, false, 0);
        }
        let t0 = std::time::Instant::now();
        let next = self.active_generation + 1;
        let Ok(fresh) = WalWriter::create_segment(self.env.as_ref(), next, self.cfg.sync_on_write)
        else {
            self.failed_rotations += 1;
            return (false, true, t0.elapsed().as_nanos() as u64);
        };
        let sealed = mem::replace(&mut self.writer, fresh);
        let bytes = sealed.bytes_written();
        // Redundant under sync-on-write; best effort otherwise (a failed
        // final sync only matters under power loss, where an unsynced
        // log makes no promises anyway).
        let _ = sealed.finish();
        self.sealed.push(SealedSegment {
            generation: self.active_generation,
            bytes,
        });
        self.active_generation = next;
        self.rotations += 1;
        (true, false, t0.elapsed().as_nanos() as u64)
    }

    /// Deletes every sealed segment with `generation <= up_to`, then syncs
    /// the directory so the deletions are durable.
    ///
    /// The caller must already have durably recorded an oldest-live
    /// generation above `up_to`: retirement only ever *narrows* what
    /// recovery would scan, and a crash mid-deletion leaves stale
    /// segments below the recorded mark, which recovery ignores and the
    /// next open prunes. Callers on a write hot path should instead use
    /// [`Self::take_sealed_up_to`] + [`delete_segments`] so the file I/O
    /// runs outside whatever lock guards this manager.
    pub fn retire_up_to(&mut self, up_to: u64) -> Result<Retired> {
        let taken = self.take_sealed_up_to(up_to);
        delete_segments(self.env.as_ref(), &taken)
    }

    /// Removes sealed segments with `generation <= up_to` from tracking
    /// and returns them — without touching their files.
    ///
    /// Two uses: handing the (slow) deletions to [`delete_segments`]
    /// outside the log lock, and giving up on a failed retirement — the
    /// files then stay on disk, recovery still sees them relative to the
    /// recorded oldest-live mark, and the next open prunes them; a
    /// persistently failing environment degrades to leftover files
    /// instead of wedging the persist thread or `quiesce`.
    pub fn take_sealed_up_to(&mut self, up_to: u64) -> Vec<SealedSegment> {
        let mut taken = Vec::new();
        self.sealed.retain(|seg| {
            if seg.generation <= up_to {
                taken.push(*seg);
                false
            } else {
                true
            }
        });
        taken
    }

    /// The sealed (rotated-out, unretired) segments, oldest first.
    pub fn sealed(&self) -> &[SealedSegment] {
        &self.sealed
    }

    /// The active segment's generation number.
    pub fn active_generation(&self) -> u64 {
        self.active_generation
    }

    /// Bytes in the active segment, header included.
    pub fn active_bytes(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Live generations on disk (sealed + active).
    pub fn live_generations(&self) -> u64 {
        self.sealed.len() as u64 + 1
    }

    /// Total rotations performed by this manager.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Due rotations deferred because the next segment could not be
    /// created (see [`AppendOutcome::rotation_failed`]).
    pub fn failed_rotations(&self) -> u64 {
        self.failed_rotations
    }

    /// The oldest generation recovery would need: the oldest sealed
    /// segment, or the active one when nothing is sealed.
    pub fn oldest_live(&self) -> u64 {
        self.sealed
            .first()
            .map_or(self.active_generation, |s| s.generation)
    }
}

/// Deletes the given (already untracked) segments' files and syncs the
/// directory. Runs no manager lock — sealed segments are immutable, so
/// deleting them needs no coordination with appends.
///
/// On error, already-deleted files are gone and the rest remain as stale
/// leftovers below the caller's recorded oldest-live mark (recovery
/// ignores them; the next open prunes them).
pub fn delete_segments(env: &dyn Env, segments: &[SealedSegment]) -> Result<Retired> {
    let mut retired = Retired::default();
    for seg in segments {
        env.delete(&wal_file_name(seg.generation))?;
        retired.segments += 1;
        retired.bytes += seg.bytes;
    }
    if retired.segments > 0 {
        env.sync_dir()?;
    }
    Ok(retired)
}

/// The result of replaying a store's live segment set.
#[derive(Debug)]
pub struct RecoveredWal {
    /// Every recovered record across all replayed segments, in log order.
    pub records: Vec<Record>,
    /// Largest sequence number seen (0 when nothing was recovered).
    pub max_seq: u64,
    /// Sub-batch annotations recovered across the replayed segments, in
    /// log order (empty for unsharded stores).
    pub annotations: Vec<BatchAnnotation>,
    /// Highest generation present on disk (0 when no segments exist); the
    /// reopened store's active segment must use a strictly higher one.
    pub max_generation: u64,
    /// Every generation-named segment file found, stale ones included —
    /// the set the caller deletes once the recovered state is flushed.
    pub segment_names: Vec<String>,
}

/// Replays the live WAL segments on `env`, in generation order.
///
/// Segments below `oldest_live` (the mark recorded in the manifest at the
/// last retirement) are stale — their contents were persisted before they
/// were deleted, so a crash mid-deletion may have left the files behind —
/// and are listed but not replayed. Each segment truncates at its own
/// first torn or corrupt frame (see the module docs for why per-segment
/// truncation is the sound rule). Files ending in `.log` whose stem is
/// not a generation number are ignored entirely.
pub fn recover_segments(env: &dyn Env, oldest_live: u64) -> Result<RecoveredWal> {
    let mut segments: Vec<(u64, String)> = env
        .list()?
        .into_iter()
        .filter_map(|n| parse_wal_name(&n).map(|generation| (generation, n)))
        .collect();
    segments.sort_unstable_by_key(|(generation, _)| *generation);

    let mut out = RecoveredWal {
        records: Vec::new(),
        max_seq: 0,
        annotations: Vec::new(),
        max_generation: segments.last().map_or(0, |(generation, _)| *generation),
        segment_names: segments.iter().map(|(_, n)| n.clone()).collect(),
    };
    for (generation, name) in &segments {
        if *generation < oldest_live {
            continue;
        }
        let replay = crate::wal::replay_segment(env, name, *generation)?;
        out.records.extend(replay.records);
        out.annotations.extend(replay.annotations);
        out.max_seq = out.max_seq.max(replay.max_seq);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnv;
    use crate::record::encode_record_parts;
    use crate::wal::{FRAME_HEADER_BYTES, SEGMENT_HEADER_BYTES};

    fn env() -> Arc<MemEnv> {
        Arc::new(MemEnv::new(None))
    }

    fn cfg(max: u64) -> LogConfig {
        LogConfig {
            segment_max_bytes: max,
            sync_on_write: false,
        }
    }

    /// Appends one single-record group frame for (`key`, `seq`).
    fn append_one(lm: &mut LogManager, key: u64, seq: u64) -> AppendOutcome {
        let mut frame = vec![0u8; FRAME_HEADER_BYTES];
        encode_record_parts(&mut frame, &key.to_be_bytes(), seq, Some(&[7u8; 32]));
        lm.append_group_frame(&mut frame).unwrap()
    }

    #[test]
    fn rotation_happens_at_group_boundaries() {
        let env = env();
        let mut lm = LogManager::create(Arc::clone(&env) as Arc<dyn Env>, cfg(256), 1).unwrap();
        let mut rotations = 0;
        for i in 0..40u64 {
            if append_one(&mut lm, i, i + 1).rotated {
                rotations += 1;
            }
        }
        assert!(rotations >= 2, "40 records over 256-byte segments must roll");
        assert_eq!(lm.rotations(), rotations);
        assert_eq!(lm.sealed().len() as u64, rotations);
        assert_eq!(lm.active_generation(), 1 + rotations);
        assert_eq!(lm.live_generations(), rotations + 1);
        // Every sealed segment crossed the threshold, and none grew much
        // past it (one record, here).
        for seg in lm.sealed() {
            assert!(seg.bytes >= 256, "sealed below threshold: {seg:?}");
        }
        // Everything replays, in order, across the generation boundaries.
        let r = recover_segments(env.as_ref(), 0).unwrap();
        assert_eq!(r.records.len(), 40);
        assert_eq!(r.max_seq, 40);
        assert_eq!(r.max_generation, lm.active_generation());
        for pair in r.records.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "replay out of order");
        }
    }

    #[test]
    fn retirement_deletes_files_and_recovery_skips_stale() {
        let env = env();
        let mut lm = LogManager::create(Arc::clone(&env) as Arc<dyn Env>, cfg(256), 1).unwrap();
        for i in 0..40u64 {
            append_one(&mut lm, i, i + 1);
        }
        let sealed: Vec<u64> = lm.sealed().iter().map(|s| s.generation).collect();
        assert!(sealed.len() >= 2);
        let horizon = sealed[sealed.len() - 1];
        let retired = lm.retire_up_to(horizon).unwrap();
        assert_eq!(retired.segments, sealed.len() as u64);
        assert!(retired.bytes >= 256 * retired.segments);
        assert!(lm.sealed().is_empty());
        assert_eq!(lm.oldest_live(), lm.active_generation());
        for generation in sealed {
            assert!(!env.exists(&wal_file_name(generation)), "gen {generation}");
        }
        // Recovery from the new oldest-live mark sees only the active tail.
        let r = recover_segments(env.as_ref(), lm.active_generation()).unwrap();
        let replayed = r.records.len() as u64;
        assert!(replayed < 40);
        assert!(r.records.iter().all(|rec| rec.seq > 40 - replayed));
    }

    #[test]
    fn recovery_ignores_stale_segments_below_oldest_live() {
        // A crash between the manifest's oldest-live record and the file
        // deletions leaves stale segments; they must be listed (for
        // pruning) but never replayed.
        let env = env();
        let mut lm = LogManager::create(Arc::clone(&env) as Arc<dyn Env>, cfg(128), 1).unwrap();
        for i in 0..30u64 {
            append_one(&mut lm, i, i + 1);
        }
        assert!(!lm.sealed().is_empty());
        let first_live = lm.sealed()[1].generation;
        let all_files = env.list().unwrap().len();
        let r = recover_segments(env.as_ref(), first_live).unwrap();
        assert_eq!(r.segment_names.len(), all_files, "stale names listed");
        assert!(
            r.records.iter().all(|rec| rec.seq > 1),
            "generation 1's records must not replay below the mark"
        );
    }

    #[test]
    fn old_middle_tear_truncates_only_its_own_segment() {
        // A tear in a non-newest generation is an old, already-accepted
        // crash point (manifest-less stores keep such segments across
        // runs): its own tail is dropped, but the later generations —
        // written on top of the accepted truncation — must replay.
        let env = env();
        let mut lm = LogManager::create(Arc::clone(&env) as Arc<dyn Env>, cfg(128), 1).unwrap();
        for i in 0..30u64 {
            append_one(&mut lm, i, i + 1);
        }
        assert!(lm.sealed().len() >= 2);
        let victim = lm.sealed()[0].generation;
        let victim_records = {
            let full = recover_segments(env.as_ref(), 0).unwrap();
            let after = recover_segments(env.as_ref(), victim + 1).unwrap();
            full.records.len() - after.records.len()
        };
        assert!(victim_records >= 1);

        // Tear the oldest sealed segment just past its header.
        let name = wal_file_name(victim);
        let data = env
            .open_random(&name)
            .unwrap()
            .read_at(0, SEGMENT_HEADER_BYTES + 5)
            .unwrap();
        let mut f = env.new_writable(&name).unwrap();
        f.append(&data).unwrap();

        let r = recover_segments(env.as_ref(), 0).unwrap();
        assert_eq!(
            r.records.len(),
            30 - victim_records,
            "only the torn generation's own records drop; later ones replay"
        );
        assert!(
            r.records.iter().all(|rec| rec.seq > victim_records as u64),
            "the surviving records are exactly the later generations'"
        );
    }

    #[test]
    fn non_generation_log_names_are_ignored() {
        let env = env();
        let mut f = env.new_writable("matrix.log").unwrap();
        f.append(b"not a segment").unwrap();
        let r = recover_segments(env.as_ref(), 0).unwrap();
        assert!(r.records.is_empty());
        assert!(r.segment_names.is_empty());
        assert_eq!(r.max_generation, 0);
    }

    #[test]
    fn oversized_group_still_lands_in_one_segment() {
        // A frame larger than the whole segment budget commits intact and
        // the roll happens after it: frames never straddle segments.
        let env = env();
        let mut lm = LogManager::create(Arc::clone(&env) as Arc<dyn Env>, cfg(64), 1).unwrap();
        let mut frame = vec![0u8; FRAME_HEADER_BYTES];
        for i in 0..10u64 {
            encode_record_parts(&mut frame, &i.to_be_bytes(), i + 1, Some(&[1u8; 64]));
        }
        let out = lm.append_group_frame(&mut frame).unwrap();
        assert!(out.rotated);
        assert_eq!(lm.sealed().len(), 1);
        let r = recover_segments(env.as_ref(), 0).unwrap();
        assert_eq!(r.records.len(), 10);
    }
}
