//! Property-based tests for the WAL lifecycle manager: arbitrary batch
//! streams over rotating segments, torn at arbitrary byte offsets, must
//! recover exactly a whole-batch prefix — across generation boundaries,
//! and all-or-nothing for a batch whose frame straddles into a fresh
//! segment.

use std::sync::Arc;

use flodb_storage::env::{Env, MemEnv};
use flodb_storage::log_manager::{recover_segments, LogConfig, LogManager};
use flodb_storage::record::encode_record_parts;
use flodb_storage::wal::{wal_file_name, FRAME_HEADER_BYTES, SEGMENT_HEADER_BYTES};
use flodb_storage::Record;
use proptest::prelude::*;

/// One appended batch: `count` records starting at key/seq `first`.
fn batch_records(first: u64, count: u64, value_bytes: usize) -> Vec<Record> {
    (first..first + count)
        .map(|i| Record::put(i.to_be_bytes().as_slice(), i + 1, vec![i as u8; value_bytes]))
        .collect()
}

/// Appends `records` as one group frame (what a commit group emits).
fn append_batch(lm: &mut LogManager, records: &[Record]) -> flodb_storage::log_manager::AppendOutcome {
    let mut frame = vec![0u8; FRAME_HEADER_BYTES];
    for r in records {
        encode_record_parts(&mut frame, &r.key, r.seq, r.value.as_deref());
    }
    lm.append_group_frame(&mut frame).unwrap()
}

/// Where each batch landed: its generation, and its frame's end offset
/// within that generation's file.
struct BatchPlacement {
    generation: u64,
    frame_end: u64,
}

/// Builds a multi-generation log from `batches` (sizes in records) and
/// returns the records per batch plus each batch's placement.
fn build_log(
    env: Arc<MemEnv>,
    segment_max: u64,
    batch_sizes: &[u64],
    value_bytes: usize,
) -> (LogManager, Vec<Vec<Record>>, Vec<BatchPlacement>) {
    let mut lm = LogManager::create(
        env as Arc<dyn Env>,
        LogConfig {
            segment_max_bytes: segment_max,
            sync_on_write: false,
        },
        1,
    )
    .unwrap();
    let mut batches = Vec::new();
    let mut placements = Vec::new();
    let mut next_key = 0u64;
    for &size in batch_sizes {
        let records = batch_records(next_key, size, value_bytes);
        next_key += size;
        let generation = lm.active_generation();
        let before = lm.active_bytes();
        let outcome = append_batch(&mut lm, &records);
        let frame_end = if outcome.rotated {
            // The batch is the last frame of the now-sealed generation.
            lm.sealed().last().unwrap().bytes
        } else {
            outcome.active_bytes
        };
        assert!(frame_end > before, "appends must grow the file");
        batches.push(records);
        placements.push(BatchPlacement {
            generation,
            frame_end,
        });
    }
    (lm, batches, placements)
}

/// Copies every file of `src` into a fresh env, truncating `truncate`
/// (when present) to its first `keep` bytes.
fn copy_env_truncating(src: &MemEnv, truncate: &str, keep: usize) -> MemEnv {
    let dst = MemEnv::new(None);
    for name in src.list().unwrap() {
        let file = src.open_random(&name).unwrap();
        let len = if name == truncate {
            keep.min(file.len() as usize)
        } else {
            file.len() as usize
        };
        let data = file.read_at(0, len).unwrap();
        let mut out = dst.new_writable(&name).unwrap();
        out.append(&data).unwrap();
        out.finish().unwrap();
    }
    dst
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn torn_newest_segment_recovers_whole_batch_prefix(
        batch_sizes in proptest::collection::vec(1u64..8, 4..40),
        segment_max in 192u64..1024,
        cut_seed in any::<u32>(),
    ) {
        let env = Arc::new(MemEnv::new(None));
        let (lm, batches, placements) =
            build_log(Arc::clone(&env), segment_max, &batch_sizes, 24);
        let newest = lm.active_generation();
        prop_assert_eq!(
            lm.live_generations() as usize,
            env.list().unwrap().len(),
            "every live generation is one file"
        );

        // Tear the newest segment at an arbitrary offset (uniform over the
        // file, header included).
        let name = wal_file_name(newest);
        let len = env.open_random(&name).unwrap().len() as usize;
        let cut = cut_seed as usize % (len + 1);
        let torn = copy_env_truncating(&env, &name, cut);

        let recovered = recover_segments(&torn, 0).unwrap();

        // Expected: every batch in an older (sealed, clean) generation,
        // plus the newest generation's batches whose frames fit whole
        // under the cut — a prefix at batch granularity, across the
        // generation boundary, never a partial batch.
        let expected: Vec<Record> = batches
            .iter()
            .zip(&placements)
            .filter(|(_, p)| {
                p.generation < newest
                    || (cut >= SEGMENT_HEADER_BYTES && p.frame_end as usize <= cut)
            })
            .flat_map(|(b, _)| b.iter().cloned())
            .collect();
        prop_assert_eq!(recovered.records, expected);

        // Untouched, everything recovers.
        let full = recover_segments(env.as_ref(), 0).unwrap();
        let all: Vec<Record> = batches.iter().flatten().cloned().collect();
        prop_assert_eq!(full.records, all);
        prop_assert_eq!(full.max_generation, newest);
    }

    #[test]
    fn recovery_respects_oldest_live_mark(
        batch_sizes in proptest::collection::vec(1u64..6, 6..30),
        segment_max in 192u64..768,
    ) {
        let env = Arc::new(MemEnv::new(None));
        let (lm, batches, placements) =
            build_log(Arc::clone(&env), segment_max, &batch_sizes, 24);
        if lm.sealed().is_empty() {
            // No rotation under this parameter draw (shim has no assume):
            // nothing generation-spanning to check.
            return;
        }
        // Pretend everything up to the newest sealed generation was
        // checkpointed: recovery from the mark must see exactly the
        // active segment's batches.
        let mark = lm.active_generation();
        let recovered = recover_segments(env.as_ref(), mark).unwrap();
        let expected: Vec<Record> = batches
            .iter()
            .zip(&placements)
            .filter(|(_, p)| p.generation >= mark)
            .flat_map(|(b, _)| b.iter().cloned())
            .collect();
        prop_assert_eq!(recovered.records, expected);
    }
}

#[test]
fn batch_opening_a_fresh_segment_recovers_all_or_nothing() {
    // Deterministic rotation-straddling case: force a rotation, then make
    // the *first frame of the new segment* a multi-record batch and tear
    // it at every offset. Either the whole batch recovers or none of it —
    // and every batch from the previous generation always recovers.
    let env = Arc::new(MemEnv::new(None));
    let mut lm = LogManager::create(
        Arc::clone(&env) as Arc<dyn Env>,
        LogConfig {
            segment_max_bytes: 256,
            sync_on_write: false,
        },
        1,
    )
    .unwrap();

    // Fill generation 1 until it rotates.
    let mut appended = Vec::new();
    let mut next_key = 0u64;
    loop {
        let records = batch_records(next_key, 3, 32);
        next_key += 3;
        let rotated = append_batch(&mut lm, &records).rotated;
        appended.extend(records);
        if rotated {
            break;
        }
    }
    let old_generation_records = appended.clone();

    // The straddling batch: first frame of the fresh generation.
    let straddler = batch_records(next_key, 5, 32);
    let outcome = append_batch(&mut lm, &straddler);
    assert!(!outcome.rotated, "the straddler must stay in the new segment");
    let newest = lm.active_generation();
    assert_eq!(newest, 2);

    let name = wal_file_name(newest);
    let len = env.open_random(&name).unwrap().len() as usize;
    let frame_start = SEGMENT_HEADER_BYTES;
    for cut in 0..=len {
        let torn = copy_env_truncating(&env, &name, cut);
        let recovered = recover_segments(&torn, 0).unwrap();
        if cut < len {
            assert_eq!(
                recovered.records, old_generation_records,
                "cut at {cut}: a partially present straddler must vanish whole"
            );
            if cut > frame_start {
                assert!(
                    recovered.records.len() >= old_generation_records.len(),
                    "cut at {cut}: the sealed generation must survive intact"
                );
            }
        } else {
            assert_eq!(
                recovered.records.len(),
                old_generation_records.len() + straddler.len(),
                "the intact file recovers the straddler whole"
            );
        }
    }
}
