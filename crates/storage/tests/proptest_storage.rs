//! Property-based tests for the storage substrate: every on-disk format
//! must round-trip arbitrary data exactly, and the full disk component
//! must agree with a `BTreeMap` model under random flush/compact/query
//! sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use flodb_storage::block::{Block, BlockBuilder};
use flodb_storage::bloom::Bloom;
use flodb_storage::compaction::CompactionConfig;
use flodb_storage::env::{Env, MemEnv};
use flodb_storage::sstable::{verify_table, Table, TableBuilder};
use flodb_storage::wal::{replay, wal_file_name, WalWriter};
use flodb_storage::{DiskComponent, DiskOptions, Record};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::collection::vec(any::<u8>(), 0..40),
        any::<u64>(),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..200)),
    )
        .prop_map(|(key, seq, value)| Record {
            key: key.into_boxed_slice(),
            seq,
            value: value.map(Vec::into_boxed_slice),
        })
}

/// Sorted, key-deduplicated records, as table builders require.
fn arb_sorted_records() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(), 1..150).prop_map(|mut records| {
        records.sort_by(|a, b| a.key.cmp(&b.key).then(b.seq.cmp(&a.seq)));
        records.dedup_by(|next, first| next.key == first.key);
        records
    })
}

proptest! {
    #[test]
    fn record_encode_decode_roundtrip(record in arb_record()) {
        let mut buf = Vec::new();
        record.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), record.encoded_len());
        let mut pos = 0;
        let decoded = Record::decode_from(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn block_roundtrip_and_lookup(records in arb_sorted_records()) {
        let mut builder = BlockBuilder::new();
        for r in &records {
            builder.add(r);
        }
        let encoded = builder.finish();
        let block = Block::decode(&encoded).unwrap();
        prop_assert_eq!(block.records(), records.as_slice());
        for r in &records {
            prop_assert_eq!(block.get(&r.key), Some(r));
        }
    }

    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::hash_set(
            proptest::collection::vec(any::<u8>(), 1..24), 1..200),
    ) {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let bloom = Bloom::build(refs.iter().copied(), refs.len(), 10);
        for key in &refs {
            prop_assert!(bloom.may_contain(key), "false negative for {key:?}");
        }
        // Round-trip through the encoded form too.
        let decoded = Bloom::decode(&bloom.encode());
        for key in &refs {
            prop_assert!(decoded.may_contain(key));
        }
    }

    #[test]
    fn sstable_roundtrip(records in arb_sorted_records()) {
        let env = MemEnv::new(None);
        let file = env.new_writable("t.sst").unwrap();
        let mut builder = TableBuilder::new(file, 512, 10);
        for r in &records {
            builder.add(r).unwrap();
        }
        let meta = builder.finish().unwrap();
        prop_assert_eq!(meta.entries, records.len() as u64);

        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        prop_assert_eq!(verify_table(&table).unwrap(), records.len() as u64);
        // Every record resolves by point lookup.
        for r in &records {
            let got = table.get(&r.key).unwrap();
            prop_assert_eq!(got.as_ref(), Some(r));
        }
        // Full iteration yields the records in order.
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push(it.record().clone());
            it.next().unwrap();
        }
        prop_assert_eq!(seen, records);
    }

    #[test]
    fn sstable_seek_positions_at_lower_bound(
        records in arb_sorted_records(),
        probe in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let env = MemEnv::new(None);
        let file = env.new_writable("t.sst").unwrap();
        let mut builder = TableBuilder::new(file, 256, 10);
        for r in &records {
            builder.add(r).unwrap();
        }
        builder.finish().unwrap();
        let table = Arc::new(Table::open(env.open_random("t.sst").unwrap()).unwrap());
        let mut it = table.iter();
        it.seek(&probe).unwrap();
        let expected = records.iter().find(|r| r.key.as_ref() >= probe.as_slice());
        match expected {
            Some(r) => {
                prop_assert!(it.valid());
                prop_assert_eq!(it.record(), r);
            }
            None => prop_assert!(!it.valid()),
        }
    }

    #[test]
    fn wal_replay_returns_appended_batches(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..20), 1..10),
    ) {
        let env = MemEnv::new(None);
        let name = wal_file_name(1);
        let mut writer = WalWriter::new(env.new_writable(&name).unwrap(), false);
        let mut expected = Vec::new();
        let mut max_seq = 0u64;
        for batch in &batches {
            writer.append_batch(batch).unwrap();
            for r in batch {
                max_seq = max_seq.max(r.seq);
                expected.push(r.clone());
            }
        }
        writer.finish().unwrap();
        let (recovered, seen) = replay(&env, &name).unwrap();
        prop_assert_eq!(recovered, expected);
        prop_assert_eq!(seen, max_seq);
    }

    #[test]
    fn wal_torn_tail_keeps_intact_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..10), 1..6),
        cut in any::<u16>(),
    ) {
        // Write all batches, then truncate the file at an arbitrary point:
        // replay must return a prefix of whole batches, never an error.
        let env = MemEnv::new(None);
        let name = wal_file_name(1);
        let mut frames = Vec::new(); // Cumulative end offset per batch.
        {
            let mut writer = WalWriter::new(env.new_writable(&name).unwrap(), false);
            for batch in &batches {
                writer.append_batch(batch).unwrap();
                frames.push(writer.bytes_written());
            }
            writer.finish().unwrap();
        }
        let full = env.open_random(&name).unwrap();
        let total = full.len() as usize;
        let cut = cut as usize % (total + 1);
        let data = full.read_at(0, cut).unwrap();
        let mut truncated = env.new_writable("cut.log").unwrap();
        truncated.append(&data).unwrap();
        truncated.finish().unwrap();

        let (recovered, _) = replay(&env, "cut.log").unwrap();
        // The recovered records are exactly the batches whose frames fit
        // entirely under the cut.
        let whole: usize = frames.iter().take_while(|&&end| end as usize <= cut).count();
        let expected: Vec<Record> = batches[..whole].iter().flatten().cloned().collect();
        prop_assert_eq!(recovered, expected);
    }

    #[test]
    fn disk_component_matches_model(
        flushes in proptest::collection::vec(
            proptest::collection::vec(
                ((0u64..64), proptest::option::of(any::<u8>())), 1..30),
            1..8),
    ) {
        let opts = DiskOptions {
            compaction: CompactionConfig {
                l0_trigger: 2,
                base_level_bytes: 8 * 1024,
                target_file_bytes: 4 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        let disk = DiskComponent::new(Arc::new(MemEnv::new(None)), opts);
        let mut model: BTreeMap<u64, (u64, Option<u8>)> = BTreeMap::new();
        let mut seq = 0u64;
        for batch in &flushes {
            let records: Vec<Record> = batch
                .iter()
                .map(|(k, v)| {
                    seq += 1;
                    model.insert(*k, (seq, *v));
                    Record {
                        key: Box::from(k.to_be_bytes().as_slice()),
                        seq,
                        value: v.map(|b| Box::from([b].as_slice())),
                    }
                })
                .collect();
            disk.flush_records(records).unwrap();
            disk.compact_all().unwrap();
        }
        // Point lookups agree. Deleted keys may resolve to the tombstone
        // record or to nothing at all: bottom-level compaction is allowed
        // to drop tombstones once nothing older can resurface.
        for k in 0u64..64 {
            let got = disk.get(&k.to_be_bytes()).unwrap();
            match model.get(&k) {
                None => prop_assert!(got.is_none()),
                Some((seq, Some(value))) => {
                    let got = got.unwrap();
                    prop_assert_eq!(got.seq, *seq, "key {}", k);
                    let want = [*value];
                    prop_assert_eq!(got.value.as_deref(), Some(want.as_slice()));
                }
                Some((seq, None)) => {
                    if let Some(got) = got {
                        prop_assert!(got.is_tombstone(), "key {}", k);
                        prop_assert_eq!(got.seq, *seq, "key {}", k);
                    }
                }
            }
        }
        // A full scan yields the same freshest *live* records, in key
        // order (tombstones may or may not survive compaction).
        let scanned = disk.scan(&0u64.to_be_bytes(), &63u64.to_be_bytes()).unwrap();
        let want: Vec<(u64, u64)> = model
            .iter()
            .filter(|(_, (_, v))| v.is_some())
            .map(|(k, (s, _))| (*k, *s))
            .collect();
        let got: Vec<(u64, u64)> = scanned
            .iter()
            .filter(|r| !r.is_tombstone())
            .map(|r| (u64::from_be_bytes(r.key.as_ref().try_into().unwrap()), r.seq))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn disk_reopen_preserves_model(
        flushes in proptest::collection::vec(
            proptest::collection::vec(
                ((0u64..32), proptest::option::of(any::<u8>())), 1..20),
            1..5),
    ) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let opts = DiskOptions {
            compaction: CompactionConfig {
                l0_trigger: 2,
                base_level_bytes: 8 * 1024,
                target_file_bytes: 4 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        // Track only live entries: tombstones may be dropped by the
        // bottom-level compaction.
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let max_seq;
        let mut seq = 0u64;
        {
            let disk = DiskComponent::open(Arc::clone(&env), opts).unwrap();
            for batch in &flushes {
                let records: Vec<Record> = batch
                    .iter()
                    .map(|(k, v)| {
                        seq += 1;
                        match v {
                            Some(_) => {
                                model.insert(*k, seq);
                            }
                            None => {
                                model.remove(k);
                            }
                        }
                        Record {
                            key: Box::from(k.to_be_bytes().as_slice()),
                            seq,
                            value: v.map(|b| Box::from([b].as_slice())),
                        }
                    })
                    .collect();
                disk.flush_records(records).unwrap();
            }
            disk.compact_all().unwrap();
            max_seq = disk.max_persisted_seq();
        }
        let disk = DiskComponent::open(Arc::clone(&env), opts).unwrap();
        for (k, want_seq) in &model {
            let got = disk.get(&k.to_be_bytes()).unwrap().unwrap();
            prop_assert_eq!(got.seq, *want_seq, "key {} after reopen", k);
        }
        // The persisted-seq watermark survives the reopen.
        prop_assert_eq!(disk.max_persisted_seq(), max_seq);
    }
}
