//! Figure 4: RocksDB with a *hash-table* memory component — median read
//! and write latency as the memory component grows, normalized to the
//! smallest size.
//!
//! Paper result: end-to-end write latency grows even faster than with the
//! skiplist, because the whole memtable must be *sorted* before it can be
//! flushed; while that sort runs, the active memtable fills and writers
//! stall.

use std::time::Duration;

use flodb_baselines::MemtableKind;
use flodb_bench::table::human_bytes;
use flodb_bench::{make_env, make_rocksdb_with_memtable, InitKind, Scale, Table};
use flodb_workloads::driver::{run_workload, WorkloadConfig};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut table = Table::new(&[
        "memory",
        "read p50 (norm)",
        "write p50 (norm)",
        "write p99 (norm)",
    ]);
    let mut base: Option<(f64, f64, f64)> = None;
    for memory in scale.memory_sweep_from(8, 6) {
        let env = make_env(&scale, true);
        let store = make_rocksdb_with_memtable(MemtableKind::HashTable, memory, env);
        flodb_bench::init_store(&store, InitKind::RandomHalf, &scale);

        let readers = (scale.max_threads.saturating_sub(1)).clamp(1, 8);
        let mut cfg = WorkloadConfig::new(readers + 1, OperationMix::read_only(), keys);
        cfg.duration = Duration::from_millis(
            (scale.cell_time.as_millis() as u64).max(200),
        );
        cfg.single_writer = true;
        cfg.measure_latency = true;
        cfg.value_bytes = scale.value_bytes;
        let report = run_workload(&store, &cfg);

        let read_p50 = report.read_latency.median_ns() as f64;
        let write_p50 = report.write_latency.median_ns() as f64;
        let write_p99 = report.write_latency.percentile_ns(99.0) as f64;
        let (rb, wb, tb) = *base.get_or_insert((
            read_p50.max(1.0),
            write_p50.max(1.0),
            write_p99.max(1.0),
        ));
        table.row(vec![
            human_bytes(memory),
            format!("{:.2}", read_p50 / rb),
            format!("{:.2}", write_p50 / wb),
            format!("{:.2}", write_p99 / tb),
        ]);
    }
    table.print("Figure 4: RocksDB hash-table memtable, median latency vs memory size");
}
