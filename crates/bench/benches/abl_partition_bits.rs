//! Ablation (§4.3): the Membuffer's partition-bit count `l`.
//!
//! More partitions shrink multi-insert neighborhoods (better path reuse)
//! but sharpen the skew vulnerability: hot keys sharing a prefix exhaust
//! one partition's buckets while the rest sit idle. The paper exposes `l`
//! as a parameter; this bench shows both sides — uniform write throughput
//! and the fraction of writes still absorbed under the 98/2 skew.

use std::sync::Arc;

use flodb_bench::table::mops;
use flodb_bench::{Scale, Table};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_storage::MemEnv;
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn run(scale: &Scale, bits: u32, keys: KeyDistribution) -> (f64, f64) {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = scale.memory_bytes;
    opts.env = Arc::new(MemEnv::new(None));
    opts.persist_enabled = false;
    opts.partition_bits = bits;
    let db = Arc::new(FloDb::open(opts).expect("flodb open"));
    let store: Arc<dyn KvStore> = Arc::clone(&db) as Arc<dyn KvStore>;
    let report = flodb_bench::run_cell(
        &store,
        scale.max_threads.min(4),
        OperationMix::write_only(),
        keys,
        scale,
        false,
    );
    let stats = db.stats();
    let fast = stats.fast_level_writes as f64 / (stats.puts + stats.deletes).max(1) as f64;
    (report.ops_per_sec(), fast * 100.0)
}

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(&[
        "partition bits",
        "uniform Mops/s",
        "uniform fast %",
        "skewed Mops/s",
        "skewed fast %",
    ]);
    for bits in [0u32, 2, 4, 6, 8] {
        let (uni_ops, uni_fast) = run(&scale, bits, KeyDistribution::Uniform { n: scale.dataset });
        let (skew_ops, skew_fast) = run(&scale, bits, KeyDistribution::paper_skew(scale.dataset));
        table.row(vec![
            bits.to_string(),
            mops(uni_ops),
            format!("{uni_fast:.0}%"),
            mops(skew_ops),
            format!("{skew_fast:.0}%"),
        ]);
    }
    table.print("Ablation: Membuffer partition bits (write-only, no persistence)");
}
