//! Figure 7: raw concurrent skiplist throughput on the same mixed
//! read-write workload as Figure 5.
//!
//! Paper result: one to two orders of magnitude slower than the hash
//! table, and *sensitive to dataset size* (logarithmic operations) — why a
//! single-level sorted memory component cannot scale with memory.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use flodb_bench::{Scale, Table};
use flodb_memtable::SkipList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_cell(n: u64, threads: usize, scale: &Scale) -> f64 {
    let list = Arc::new(SkipList::new());
    for i in 0..n {
        list.insert(&i.to_be_bytes(), Some(b"12345678"), i + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let seq = Arc::new(AtomicU64::new(n + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let list = Arc::clone(&list);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let seq = Arc::clone(&seq);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..64 {
                    let key = rng.gen_range(0..n).to_be_bytes();
                    if ops.is_multiple_of(2) {
                        let _ = list.get(&key);
                    } else {
                        let s = seq.fetch_add(1, Ordering::Relaxed);
                        list.insert(&key, Some(b"87654321"), s);
                    }
                    ops += 1;
                }
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(scale.cell_time);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed) as f64 / scale.cell_time.as_secs_f64()
}

fn main() {
    let scale = Scale::from_env();
    let sizes = [32_768u64, 1_048_576, scale.dataset.max(2_097_152)];
    let mut header = vec!["threads".to_string()];
    header.extend(sizes.iter().map(|n| format!("{n} keys")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for threads in scale.thread_sweep() {
        let mut row = vec![threads.to_string()];
        for &n in &sizes {
            let ops = run_cell(n, threads, &scale);
            row.push(format!("{:.2}", ops / 1e6));
        }
        table.row(row);
    }
    table.print("Figure 7: concurrent skiplist, mixed read-write (Mops/s)");
}
