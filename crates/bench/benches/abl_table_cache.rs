//! Ablation (§4, footnote 2): LevelDB's global-lock fd-cache vs. the
//! sharded concurrent table cache FloDB substitutes in.
//!
//! The paper found the global lock on the file-descriptor cache to be "a
//! major scalability bottleneck" for reads; this bench isolates that one
//! change on an otherwise identical FloDB stack.

use std::sync::Arc;

use flodb_bench::table::mops;
use flodb_bench::{make_env, InitKind, Scale, Table};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn build(scale: &Scale, sharded: bool) -> Arc<dyn KvStore> {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = scale.memory_bytes;
    opts.env = make_env(scale, false);
    opts.disk.sharded_cache = sharded;
    // A small cache forces open/evict traffic through the cache lock.
    opts.disk.cache_capacity = 32;
    Arc::new(FloDb::open(opts).expect("flodb open"))
}

fn main() {
    let scale = Scale::from_env();
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut table = Table::new(&["threads", "global-lock cache", "sharded cache", "speedup"]);
    for threads in scale.thread_sweep() {
        let mut cells = Vec::new();
        for sharded in [false, true] {
            let store = build(&scale, sharded);
            flodb_bench::init_store(&store, InitKind::SequentialHalf, &scale);
            let report = flodb_bench::run_cell(
                &store,
                threads,
                OperationMix::read_only(),
                keys,
                &scale,
                false,
            );
            cells.push(report.ops_per_sec());
        }
        table.row(vec![
            threads.to_string(),
            mops(cells[0]),
            mops(cells[1]),
            format!("{:.2}x", cells[1] / cells[0].max(1.0)),
        ]);
    }
    table.print("Ablation: global-lock vs sharded table cache, read-only (Mops/s)");
}
