//! Criterion micro-benchmarks: single-threaded put/get across all five
//! stores, showing the per-operation cost differences that aggregate into
//! the paper's throughput figures.

use criterion::{criterion_group, criterion_main, Criterion};
use flodb_bench::{make_env, make_store, Scale, ALL_SYSTEMS};

fn store_put_get(c: &mut Criterion) {
    let scale = Scale::from_env();
    for kind in ALL_SYSTEMS {
        let mut group = c.benchmark_group(kind.name().replace('/', "_"));
        group.sample_size(20);
        let store = make_store(kind, 8 * 1024 * 1024, make_env(&scale, false));
        for i in 0..10_000u64 {
            store.put(&i.to_be_bytes(), &[0x42; 64]).unwrap();
        }
        let mut i = 0u64;
        group.bench_function("put", |b| {
            b.iter(|| {
                i = (i + 1) % 10_000;
                store.put(&i.to_be_bytes(), &[0x43; 64]).unwrap();
            })
        });
        let mut j = 0u64;
        group.bench_function("get", |b| {
            b.iter(|| {
                j = (j + 1) % 10_000;
                store.get(&j.to_be_bytes())
            })
        });
        group.finish();
        // Drop the store (joins its background threads) before the next.
        drop(store);
    }
}

criterion_group!(benches, store_put_get);
criterion_main!(benches);
