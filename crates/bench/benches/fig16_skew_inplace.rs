//! Figure 16: skewed mixed workload (98% of operations on 2% of keys,
//! 50% reads / 50% updates) as the memory component grows.
//!
//! Paper result: once the memory component is large enough to hold the hot
//! set, FloDB's in-place updates capture the whole skewed workload in
//! memory — on average 8x and up to 17x over the best baseline — while
//! multi-versioned baselines fill up and flush at any memory size. At
//! *small* sizes FloDB loses, because key-prefix partitioning makes the
//! Membuffer skew-sensitive (§4.3).

use flodb_bench::table::{human_bytes, mops};
use flodb_bench::{make_env, make_store, InitKind, Scale, Table, ALL_SYSTEMS};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.max_threads.min(16);
    let keys = KeyDistribution::paper_skew(scale.dataset);
    let mut header = vec!["memory".to_string()];
    header.extend(ALL_SYSTEMS.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for memory in scale.memory_sweep_from(8, 6) {
        let mut row = vec![human_bytes(memory)];
        for kind in ALL_SYSTEMS {
            let env = make_env(&scale, true);
            let store = make_store(kind, memory, env);
            flodb_bench::init_store(&store, InitKind::RandomHalf, &scale);
            let report = flodb_bench::run_cell(
                &store,
                threads,
                OperationMix::read_update(),
                keys,
                &scale,
                false,
            );
            row.push(mops(report.ops_per_sec()));
        }
        table.row(row);
    }
    table.print("Figure 16: skewed (98/2) mixed workload vs memory size (Mops/s)");
}
