//! Figure 9: write-only workload (50% inserts, 50% deletes), fresh store,
//! throttled SimDisk, throughput vs. thread count.
//!
//! Paper result: FloDB saturates the persistence throughput with one
//! thread and stays 1.9-3.5x over HyperLevelDB; LevelDB and RocksDB stay
//! flat (single-writer design); HyperLevelDB scales.

use flodb_bench::{thread_sweep_figure, InitKind, Scale, ALL_SYSTEMS};
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    // The paper's dashed "average persistence throughput" line: the
    // SimDisk bandwidth divided by the serialized record footprint.
    let record_bytes = (8 + scale.value_bytes + 12) as f64;
    let persist_line = scale.disk_bytes_per_sec as f64 / record_bytes;
    println!(
        "# persistence throughput bound ~ {:.3} Mops/s ({} MB/s SimDisk)",
        persist_line / 1e6,
        scale.disk_bytes_per_sec / (1024 * 1024)
    );
    thread_sweep_figure(
        "Figure 9: write-only workload (Mops/s)",
        &ALL_SYSTEMS,
        OperationMix::write_only(),
        InitKind::Fresh,
        /* throttled = */ true,
        /* single_writer = */ false,
        /* metric_keys = */ false,
        &scale,
    );
}
