//! Figure 5: raw concurrent hash table throughput on a mixed read-write
//! workload, across thread counts and dataset sizes (paper: 32K, 1M, 33M,
//! 1B entries).
//!
//! Paper result: 100+ Mops/s, scales with threads, and throughput is
//! nearly insensitive to the dataset size — the property that makes the
//! Membuffer fast regardless of memory-component size.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use flodb_bench::{Scale, Table};
use flodb_membuffer::{MemBuffer, MemBufferConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_cell(n: u64, threads: usize, scale: &Scale) -> f64 {
    // Size the table so `n` entries fit comfortably.
    let buckets_total = ((n as usize / 2).next_power_of_two()).max(64);
    let table = Arc::new(MemBuffer::new(MemBufferConfig {
        partition_bits: 4,
        buckets_per_partition: (buckets_total / 16).max(4),
    }));
    // Pre-fill: spread keys over the whole u64 space so partitions load
    // evenly (hash-table workloads are unpartitioned in the paper).
    let spread = u64::MAX / n.max(1);
    for i in 0..n {
        table.add(&(i * spread).to_be_bytes(), Some(b"12345678"));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..256 {
                    let key = (rng.gen_range(0..n) * spread).to_be_bytes();
                    if ops.is_multiple_of(2) {
                        let _ = table.get(&key);
                    } else {
                        let _ = table.add(&key, Some(b"87654321"));
                    }
                    ops += 1;
                }
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(scale.cell_time);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed) as f64 / scale.cell_time.as_secs_f64()
}

fn main() {
    let scale = Scale::from_env();
    let sizes = [32_768u64, 1_048_576, scale.dataset.max(2_097_152)];
    let mut header = vec!["threads".to_string()];
    header.extend(sizes.iter().map(|n| format!("{n} keys")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for threads in scale.thread_sweep() {
        let mut row = vec![threads.to_string()];
        for &n in &sizes {
            let ops = run_cell(n, threads, &scale);
            row.push(format!("{:.1}", ops / 1e6));
        }
        table.row(row);
    }
    table.print("Figure 5: concurrent hash table, mixed read-write (Mops/s)");
}
