//! Criterion micro-benchmarks for the drain pipeline: Membuffer → Memtable
//! movement with multi-insert vs simple-insert application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flodb_membuffer::{MemBuffer, MemBufferConfig};
use flodb_memtable::{BatchEntry, SkipList};
use flodb_sync::SequenceGenerator;

/// Builds a Membuffer pre-loaded with `n` entries spread over partitions.
fn loaded_membuffer(n: u64) -> MemBuffer {
    let mbf = MemBuffer::new(MemBufferConfig {
        partition_bits: 4,
        buckets_per_partition: ((n as usize).next_power_of_two() / 16).max(16),
    });
    let spread = u64::MAX / n;
    for i in 0..n {
        mbf.add(&(i * spread).to_be_bytes(), Some(b"drain-me"));
    }
    mbf
}

fn drain_batch_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("drain");
    group.sample_size(15);

    for (name, multi) in [("multi_insert", true), ("simple_insert", false)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mbf = loaded_membuffer(4096);
                    let mtb = SkipList::new();
                    let seq = SequenceGenerator::new();
                    (mbf, mtb, seq)
                },
                |(mbf, mtb, seq)| {
                    // Full drain, bucket by bucket.
                    for chunk in 0..mbf.total_buckets() {
                        let drained = mbf.claim_bucket(chunk);
                        if drained.is_empty() {
                            continue;
                        }
                        let first = seq.next_block(drained.len() as u64);
                        let mut tokens = Vec::with_capacity(drained.len());
                        if multi {
                            let batch: Vec<BatchEntry> = drained
                                .into_iter()
                                .enumerate()
                                .map(|(i, d)| {
                                    tokens.push(d.token);
                                    BatchEntry {
                                        key: d.key,
                                        value: d.value,
                                        seq: first + i as u64,
                                    }
                                })
                                .collect();
                            mtb.multi_insert(batch);
                        } else {
                            for (i, d) in drained.into_iter().enumerate() {
                                mtb.insert(&d.key, d.value.as_deref(), first + i as u64);
                                tokens.push(d.token);
                            }
                        }
                        mbf.remove_drained(&tokens);
                    }
                    mtb
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, drain_batch_application);
criterion_main!(benches);
