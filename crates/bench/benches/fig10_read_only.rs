//! Figure 10: read-only workload after sequential initialization,
//! throughput vs. thread count (the paper sweeps to 128 threads).
//!
//! Paper result: FloDB and RocksDB scale (lock-free read paths, concurrent
//! fd-cache); LevelDB and HyperLevelDB flat-line on the global mutex;
//! RocksDB overtakes FloDB past 16 threads thanks to its optimized disk
//! component.

use flodb_bench::{thread_sweep_figure, InitKind, Scale, ALL_SYSTEMS};
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    thread_sweep_figure(
        "Figure 10: read-only workload, sequential initialization (Mops/s)",
        &ALL_SYSTEMS,
        OperationMix::read_only(),
        InitKind::SequentialHalf,
        /* throttled = */ false,
        /* single_writer = */ false,
        /* metric_keys = */ false,
        &scale,
    );
}
