//! §5.2 (text): the scan fallback rate — how often the heavyweight
//! writer-blocking fallback is invoked, across scan ranges, memory sizes
//! and thread counts.
//!
//! Paper result: "in all of our experiments, the ratio of fallback scans
//! to total completed scans was less than 1%".

use flodb_bench::table::human_bytes;
use flodb_bench::{make_env, make_store, InitKind, Scale, SystemKind, Table};
use flodb_workloads::driver::{run_workload, WorkloadConfig};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut table = Table::new(&[
        "scan range",
        "memory",
        "threads",
        "scans",
        "restarts",
        "fallbacks",
        "fallback %",
    ]);
    for scan_len in [10u64, 100, 1_000, 10_000] {
        for memory in scale.memory_sweep_from(2, 2) {
            let threads = scale.max_threads.min(8);
            let env = make_env(&scale, true);
            let store = make_store(SystemKind::FloDb, memory, env);
            flodb_bench::init_store(&store, InitKind::RandomHalf, &scale);
            let mut cfg = WorkloadConfig::new(threads, OperationMix::scan_write(0.05), keys);
            cfg.duration = scale.cell_time;
            cfg.scan_len = scan_len;
            cfg.value_bytes = scale.value_bytes;
            let _ = run_workload(&store, &cfg);
            let stats = store.stats();
            let pct = if stats.scans == 0 {
                0.0
            } else {
                100.0 * stats.fallback_scans as f64 / stats.scans as f64
            };
            table.row(vec![
                scan_len.to_string(),
                human_bytes(memory),
                threads.to_string(),
                stats.scans.to_string(),
                stats.scan_restarts.to_string(),
                stats.fallback_scans.to_string(),
                format!("{pct:.2}%"),
            ]);
        }
    }
    table.print("Fallback-scan rate (paper: <1% across all configurations)");
}
