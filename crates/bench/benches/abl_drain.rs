//! Ablation (§4.2): drain configuration — thread count and batch size.
//!
//! The paper requires "one or more dedicated background threads" for
//! draining and leaves the batching policy open; this bench quantifies
//! both knobs on the write path (persistence disabled, Figure 17 style,
//! so the drain is the only bottleneck).

use std::sync::Arc;

use flodb_bench::table::mops;
use flodb_bench::{Scale, Table};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_storage::MemEnv;
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn run(scale: &Scale, drain_threads: usize, batch: usize, writers: usize) -> f64 {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = scale.memory_bytes;
    opts.env = Arc::new(MemEnv::new(None));
    opts.persist_enabled = false;
    opts.drain_threads = drain_threads;
    opts.drain_batch_entries = batch;
    let store: Arc<dyn KvStore> = Arc::new(FloDb::open(opts).expect("flodb open"));
    let report = flodb_bench::run_cell(
        &store,
        writers,
        OperationMix::write_only(),
        KeyDistribution::Uniform { n: scale.dataset },
        scale,
        false,
    );
    report.ops_per_sec()
}

fn main() {
    let scale = Scale::from_env();
    let writers = scale.max_threads.min(4);

    let mut threads_table = Table::new(&["drain threads", "Mops/s"]);
    for drains in [1usize, 2, 4] {
        threads_table.row(vec![
            drains.to_string(),
            mops(run(&scale, drains, 256, writers)),
        ]);
    }
    threads_table.print("Ablation: drain thread count (write-only, no persistence)");

    let mut batch_table = Table::new(&["batch entries", "Mops/s"]);
    for batch in [16usize, 64, 256, 1024] {
        batch_table.row(vec![
            batch.to_string(),
            mops(run(&scale, 1, batch, writers)),
        ]);
    }
    batch_table.print("Ablation: drain batch size (write-only, no persistence)");
}
