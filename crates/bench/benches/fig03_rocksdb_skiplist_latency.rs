//! Figure 3: RocksDB with a *skiplist* memory component — median read and
//! write latency as the memory component grows, normalized to the
//! smallest size (readwhilewriting: 8 readers + 1 writer).
//!
//! Paper result: write latency grows with memory size (logarithmic insert
//! cost into an ever-larger skiplist); read latency stays roughly flat
//! (most reads are served from disk).

use std::time::Duration;

use flodb_baselines::MemtableKind;
use flodb_bench::table::human_bytes;
use flodb_bench::{make_env, make_rocksdb_with_memtable, InitKind, Scale, Table};
use flodb_workloads::driver::{run_workload, WorkloadConfig};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn run(memtable: MemtableKind, title: &str) {
    let scale = Scale::from_env();
    // The paper uses a 1M-entry database; scale via FLODB_BENCH_DATASET.
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut table = Table::new(&[
        "memory",
        "read p50 (norm)",
        "write p50 (norm)",
        "write p99 (norm)",
    ]);
    let mut base: Option<(f64, f64, f64)> = None;
    for memory in scale.memory_sweep_from(8, 6) {
        let env = make_env(&scale, true);
        let store = make_rocksdb_with_memtable(memtable, memory, env);
        flodb_bench::init_store(&store, InitKind::RandomHalf, &scale);

        let readers = (scale.max_threads.saturating_sub(1)).clamp(1, 8);
        let mut cfg = WorkloadConfig::new(readers + 1, OperationMix::read_only(), keys);
        cfg.duration = Duration::from_millis(
            (scale.cell_time.as_millis() as u64).max(200),
        );
        cfg.single_writer = true; // Thread 0 writes, the rest read.
        cfg.measure_latency = true;
        cfg.value_bytes = scale.value_bytes;
        let report = run_workload(&store, &cfg);

        let read_p50 = report.read_latency.median_ns() as f64;
        let write_p50 = report.write_latency.median_ns() as f64;
        let write_p99 = report.write_latency.percentile_ns(99.0) as f64;
        let (rb, wb, tb) = *base.get_or_insert((
            read_p50.max(1.0),
            write_p50.max(1.0),
            write_p99.max(1.0),
        ));
        table.row(vec![
            human_bytes(memory),
            format!("{:.2}", read_p50 / rb),
            format!("{:.2}", write_p50 / wb),
            format!("{:.2}", write_p99 / tb),
        ]);
    }
    table.print(title);
}

fn main() {
    run(
        MemtableKind::SkipList,
        "Figure 3: RocksDB skiplist memtable, median latency vs memory size",
    );
}
