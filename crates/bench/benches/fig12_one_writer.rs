//! Figure 12: one writer thread, all other threads reading.
//!
//! Paper result: FloDB leads; the single writer cannot saturate any
//! system, so read-path synchronization dominates.

use flodb_bench::{thread_sweep_figure, InitKind, Scale, ALL_SYSTEMS};
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    thread_sweep_figure(
        "Figure 12: one writer, many readers (Mops/s)",
        &ALL_SYSTEMS,
        OperationMix::read_only(), // Overridden per-thread by single_writer.
        InitKind::RandomHalf,
        /* throttled = */ true,
        /* single_writer = */ true,
        /* metric_keys = */ false,
        &scale,
    );
}
