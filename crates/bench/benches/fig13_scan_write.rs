//! Figure 13: mixed scan-write workload (95% updates, 5% scans of 100
//! keys), throughput in keys accessed per second vs. thread count.
//!
//! Paper result: FloDB leads; HyperLevelDB comes within 43-90% thanks to
//! its compaction producing far fewer files.

use flodb_bench::{thread_sweep_figure, InitKind, Scale, ALL_SYSTEMS};
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    thread_sweep_figure(
        "Figure 13: mixed scan-write workload, 5% scans of 100 keys (Mkeys/s)",
        &ALL_SYSTEMS,
        OperationMix::scan_write(0.05),
        InitKind::RandomHalf,
        /* throttled = */ true,
        /* single_writer = */ false,
        /* metric_keys = */ true,
        &scale,
    );
}
