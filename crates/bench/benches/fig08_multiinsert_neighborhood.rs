//! Figure 8: skiplist simple inserts vs. 5-key multi-inserts as a function
//! of key neighborhood size (paper: 100M-element initial skiplist;
//! neighborhood n means batch keys lie within distance 2n).
//!
//! Paper result: multi-insert wins everywhere, and its advantage grows as
//! the neighborhood shrinks (more path reuse) — up to ~2x at size 10.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use flodb_bench::{Scale, Table};
use flodb_memtable::{BatchEntry, SkipList};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BATCH: usize = 5;
/// Grid spacing: prefilled keys sit on multiples, new keys fall between.
const SPACING: u64 = 1024;

fn prefill(n: u64) -> Arc<SkipList> {
    let list = Arc::new(SkipList::new());
    let batch: Vec<BatchEntry> = (0..n)
        .map(|i| BatchEntry {
            key: Box::from((i * SPACING).to_be_bytes().as_slice()),
            value: Some(Box::from(&b"prefill!"[..])),
            seq: i + 1,
        })
        .collect();
    list.multi_insert(batch);
    list
}

/// One measurement: insert fresh keys, batched or not, with batch keys
/// confined to a window of `neighborhood` grid slots (None = anywhere).
fn run_cell(
    list: &Arc<SkipList>,
    n: u64,
    threads: usize,
    neighborhood: Option<u64>,
    multi: bool,
    scale: &Scale,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let seq = Arc::new(AtomicU64::new(n * 2 + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let list = Arc::clone(list);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let seq = Arc::clone(&seq);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(t as u64 + 99);
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let base = rng.gen_range(0..n);
                let window = neighborhood.map_or(n, |w| (2 * w).max(1));
                let mut keys = [[0u8; 8]; BATCH];
                for slot in keys.iter_mut() {
                    let grid = (base + rng.gen_range(0..window)) % n;
                    // Fresh keys: offset 1..SPACING keeps them between
                    // prefilled grid points.
                    let key = grid * SPACING + rng.gen_range(1..SPACING);
                    *slot = key.to_be_bytes();
                }
                if multi {
                    let s0 = seq.fetch_add(BATCH as u64, Ordering::Relaxed);
                    let batch: Vec<BatchEntry> = keys
                        .iter()
                        .enumerate()
                        .map(|(i, k)| BatchEntry {
                            key: Box::from(k.as_slice()),
                            value: Some(Box::from(&b"fresh-kv"[..])),
                            seq: s0 + i as u64,
                        })
                        .collect();
                    list.multi_insert(batch);
                } else {
                    for k in &keys {
                        let s = seq.fetch_add(1, Ordering::Relaxed);
                        list.insert(k, Some(b"fresh-kv"), s);
                    }
                }
                ops += BATCH as u64;
            }
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(scale.cell_time);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed) as f64 / scale.cell_time.as_secs_f64()
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.dataset.max(100_000);
    let threads = scale.max_threads.min(4);
    let mut table = Table::new(&["neighborhood", "simple (Mops/s)", "multi (Mops/s)", "speedup"]);
    for neighborhood in [Some(10u64), Some(100), Some(1_000), Some(10_000), None] {
        // A fresh prefilled list per cell keeps sizes comparable.
        let simple = {
            let list = prefill(n);
            run_cell(&list, n, threads, neighborhood, false, &scale)
        };
        let multi = {
            let list = prefill(n);
            run_cell(&list, n, threads, neighborhood, true, &scale)
        };
        table.row(vec![
            neighborhood.map_or("None".into(), |w| w.to_string()),
            format!("{:.3}", simple / 1e6),
            format!("{:.3}", multi / 1e6),
            format!("{:.2}x", multi / simple.max(1.0)),
        ]);
    }
    table.print("Figure 8: simple insert vs 5-key multi-insert by neighborhood size");
}
