//! Figure 15: write-only burst throughput as the memory component grows
//! (paper: 128 MB → 192 GB, 16 threads, 10-second bursts so the
//! persistence bottleneck does not dominate).
//!
//! Paper result: the baselines *degrade* as memory grows (larger skiplist
//! → slower inserts); FloDB scales, ≥2.3x the best baseline everywhere and
//! ~10x above 4 GB.

use flodb_bench::table::{human_bytes, mops};
use flodb_bench::{make_env, make_store, InitKind, Scale, Table, ALL_SYSTEMS};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.max_threads.min(16);
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut header = vec!["memory".to_string()];
    header.extend(ALL_SYSTEMS.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for memory in scale.memory_sweep_from(8, 6) {
        let mut row = vec![human_bytes(memory)];
        for kind in ALL_SYSTEMS {
            let env = make_env(&scale, true);
            let store = make_store(kind, memory, env);
            flodb_bench::init_store(&store, InitKind::Fresh, &scale);
            let report = flodb_bench::run_cell(
                &store,
                threads,
                OperationMix::write_only(),
                keys,
                &scale,
                false,
            );
            row.push(mops(report.ops_per_sec()));
        }
        table.row(row);
    }
    table.print("Figure 15: write-only burst vs memory component size (Mops/s)");
}
