//! Criterion micro-benchmarks for the two memory-component structures:
//! Membuffer (hash table) and Memtable (skiplist), including multi-insert.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flodb_membuffer::{MemBuffer, MemBufferConfig};
use flodb_memtable::{BatchEntry, SkipList};

fn membuffer_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("membuffer");
    group.sample_size(20);

    let table = MemBuffer::new(MemBufferConfig {
        partition_bits: 4,
        buckets_per_partition: 4096,
    });
    for i in 0..10_000u64 {
        table.add(&(i * (u64::MAX / 10_000)).to_be_bytes(), Some(b"payload!"));
    }
    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            table.get(&(i * (u64::MAX / 10_000)).to_be_bytes())
        })
    });
    group.bench_function("update_in_place", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            table.add(&(i * (u64::MAX / 10_000)).to_be_bytes(), Some(b"payload2"))
        })
    });
    group.finish();
}

fn skiplist_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist");
    group.sample_size(20);

    let list = SkipList::new();
    for i in 0..100_000u64 {
        list.insert(&(i * 1000).to_be_bytes(), Some(b"payload!"), i + 1);
    }
    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            list.get(&(i * 1000).to_be_bytes())
        })
    });

    let mut seq = 1_000_000u64;
    let mut fresh = 1u64;
    group.bench_function("insert_fresh", |b| {
        b.iter(|| {
            seq += 1;
            fresh = fresh.wrapping_mul(6364136223846793005).wrapping_add(1);
            list.insert(&fresh.to_be_bytes(), Some(b"payload!"), seq)
        })
    });

    // Multi-insert of 5 nearby keys (Figure 8's micro-scale counterpart).
    group.bench_function("multi_insert_5_nearby", |b| {
        b.iter_batched(
            || {
                seq += 5;
                fresh = fresh
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                let base = fresh % (100_000 * 1000);
                (0..5u64)
                    .map(|j| BatchEntry {
                        key: Box::from((base + j * 7 + 1).to_be_bytes().as_slice()),
                        value: Some(Box::from(&b"payload!"[..])),
                        seq: seq + j,
                    })
                    .collect::<Vec<_>>()
            },
            |batch| list.multi_insert(batch),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, membuffer_ops, skiplist_ops);
criterion_main!(benches);
