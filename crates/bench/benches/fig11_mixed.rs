//! Figure 11: mixed read-write workload (50% reads, 25% inserts, 25%
//! deletes), random initialization, throughput vs. thread count.
//!
//! Paper result: FloDB outperforms every baseline at all thread counts.

use flodb_bench::{thread_sweep_figure, InitKind, Scale, ALL_SYSTEMS};
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    thread_sweep_figure(
        "Figure 11: mixed read-write workload 50r/25i/25d (Mops/s)",
        &ALL_SYSTEMS,
        OperationMix::mixed_balanced(),
        InitKind::RandomHalf,
        /* throttled = */ true,
        /* single_writer = */ false,
        /* metric_keys = */ false,
        &scale,
    );
}
