//! Figure 14: impact of the scan ratio (2% → 50%) on FloDB's operation
//! throughput and key throughput, at the full thread count.
//!
//! Paper result: raising the scan ratio lowers operations/s (scans are
//! long) but *raises* keys/s (each scan contributes its whole range, and
//! fewer writes interfere).

use flodb_bench::{make_env, make_store, InitKind, Scale, SystemKind, Table};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.max_threads.min(16);
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut table = Table::new(&[
        "scan %",
        "write Mops/s",
        "scan Mops/s",
        "total Mops/s",
        "Mkeys/s",
    ]);
    for pct in [2u32, 5, 10, 25, 50] {
        let env = make_env(&scale, true);
        let store = make_store(SystemKind::FloDb, scale.memory_bytes, env);
        flodb_bench::init_store(&store, InitKind::RandomHalf, &scale);
        let report = flodb_bench::run_cell(
            &store,
            threads,
            OperationMix::scan_write(pct as f64 / 100.0),
            keys,
            &scale,
            false,
        );
        let secs = report.elapsed.as_secs_f64();
        table.row(vec![
            format!("{pct}%"),
            format!("{:.3}", report.writes as f64 / secs / 1e6),
            format!("{:.3}", report.scans as f64 / secs / 1e6),
            format!("{:.3}", report.ops_per_sec() / 1e6),
            format!("{:.3}", report.keys_per_sec() / 1e6),
        ]);
    }
    table.print("Figure 14: scan-ratio impact on operation- and key-throughput (FloDB)");
}
