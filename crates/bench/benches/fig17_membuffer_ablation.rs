//! Figure 17: memory-component ablation with persistence disabled —
//! (1) no Membuffer ("No HT", the classic single-level design),
//! (2) Membuffer + simple-insert draining,
//! (3) Membuffer + multi-insert draining.
//!
//! Paper result: No-HT *degrades* as memory grows; both two-tier variants
//! scale; multi-insert gives 3.1x over single-level and 2x over
//! simple-insert in the single-writer case; the fraction of writes
//! absorbed directly by the Membuffer grows with memory.

use std::sync::Arc;

use flodb_bench::table::{human_bytes, mops};
use flodb_bench::{Scale, Table};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_storage::MemEnv;
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    membuffer: bool,
    multi_insert: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "No HT",
        membuffer: false,
        multi_insert: false,
    },
    Variant {
        name: "HT, simple insert SL",
        membuffer: true,
        multi_insert: false,
    },
    Variant {
        name: "HT, multi-insert SL",
        membuffer: true,
        multi_insert: true,
    },
];

fn build(variant: Variant, memory: usize) -> Arc<dyn KvStore> {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = memory;
    opts.membuffer_enabled = variant.membuffer;
    opts.use_multi_insert = variant.multi_insert;
    if !variant.membuffer {
        opts.drain_threads = 0;
        opts.membuffer_fraction = 0.0;
    }
    // Figure 17 isolates the memory component: the flush machinery runs
    // but immutable Memtables are dropped instead of persisted.
    opts.persist_enabled = false;
    opts.env = Arc::new(MemEnv::new(None));
    Arc::new(FloDb::open(opts).expect("flodb open"))
}

fn main() {
    let scale = Scale::from_env();
    let keys = KeyDistribution::Uniform { n: scale.dataset };
    let mut header = vec!["config"];
    header.extend(VARIANTS.iter().map(|v| v.name));
    header.push("direct-HT write %");
    let mut table = Table::new(&header);
    // The paper's x-axis: {1GB,1t}, {1GB,8t}, {2GB,8t}, {4GB,8t}, {8GB,8t},
    // scaled geometrically from the base memory size.
    let many = scale.max_threads.min(8);
    let mut cells: Vec<(usize, usize)> = vec![(scale.memory_bytes, 1)];
    for mem in scale.memory_sweep_from(8, 5) {
        cells.push((mem, many));
    }
    for (memory, threads) in cells {
        let mut row = vec![format!("{}, {}t", human_bytes(memory), threads)];
        let mut direct_pct = String::from("-");
        for variant in VARIANTS {
            let store = build(variant, memory);
            let report = flodb_bench::run_cell(
                &store,
                threads,
                OperationMix::write_only(),
                keys,
                &scale,
                false,
            );
            row.push(mops(report.ops_per_sec()));
            if variant.multi_insert {
                let stats = store.stats();
                let writes = (stats.puts + stats.deletes).max(1);
                direct_pct = format!(
                    "{:.0}%",
                    100.0 * stats.fast_level_writes as f64 / writes as f64
                );
            }
        }
        row.push(direct_pct);
        table.row(row);
    }
    table.print("Figure 17: Membuffer and multi-insert draining ablation (Mops/s, no persistence)");
}
