//! Benchmark harness regenerating every figure of the FloDB evaluation.
//!
//! Each figure of §5 (and the latency motivation figures of §2.3) has a
//! `[[bench]]` target with `harness = false` whose `main` reruns the
//! experiment at a container-feasible scale and prints the same rows or
//! series the paper reports. `cargo bench --workspace` therefore
//! regenerates the entire evaluation; individual figures run with
//! `cargo bench -p flodb-bench --bench fig09_write_only`.
//!
//! Scaling: the paper's testbed (20-core Xeon, 256 GB RAM, 960 GB SSD,
//! 300 GB dataset) is mapped down via [`scale::Scale`]; every knob can be
//! raised through `FLODB_BENCH_*` environment variables for larger runs.
//! Absolute numbers differ from the paper (different hardware, simulated
//! disk); the *shape* — who wins, by roughly what factor, where crossovers
//! fall — is what EXPERIMENTS.md tracks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod report;
pub mod runner;
pub mod scale;
pub mod systems;
pub mod table;

pub use runner::{init_store, run_cell, thread_sweep_figure, InitKind};
pub use scale::Scale;
pub use systems::{make_env, make_rocksdb_with_memtable, make_store, SystemKind, ALL_SYSTEMS};
pub use table::Table;
