//! Experiment scaling: paper-testbed parameters → container-feasible runs.

use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scale knobs shared by every figure bench.
///
/// Defaults target a ~2-core CI container; override via environment:
///
/// | Variable | Meaning | Default |
/// |---|---|---|
/// | `FLODB_BENCH_DATASET` | dataset size in keys | 200_000 |
/// | `FLODB_BENCH_MS` | measured milliseconds per cell | 800 |
/// | `FLODB_BENCH_MAX_THREADS` | cap on thread sweeps | 8 |
/// | `FLODB_BENCH_MEM_MB` | base memory-component size (MB) | 32 |
/// | `FLODB_BENCH_VALUE` | value size in bytes | 256 |
/// | `FLODB_BENCH_DISK_MBPS` | SimDisk write bandwidth (MB/s) | 64 |
///
/// The memory default matters: the Membuffer is 1/4 of the memory
/// component, and it only absorbs writes if its capacity comfortably
/// exceeds `drain latency x write rate`. Below ~8 MB the hash table is so
/// small that most writes fall through to the Memtable and the two-tier
/// design degenerates (the paper's smallest configuration is 128 MB).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Dataset size in keys (paper: ~1.1 B keys = 300 GB).
    pub dataset: u64,
    /// Measured duration per cell.
    pub cell_time: Duration,
    /// Maximum threads in sweeps (paper sweeps to 16 or 128).
    pub max_threads: usize,
    /// Base memory-component bytes (paper default: 128 MB).
    pub memory_bytes: usize,
    /// Value size (paper: 256 B).
    pub value_bytes: usize,
    /// SimDisk sustained write bandwidth in bytes/s.
    pub disk_bytes_per_sec: u64,
}

impl Scale {
    /// Reads the scale from the environment (see type docs).
    pub fn from_env() -> Self {
        Self {
            dataset: env_u64("FLODB_BENCH_DATASET", 200_000),
            cell_time: Duration::from_millis(env_u64("FLODB_BENCH_MS", 800)),
            max_threads: env_u64("FLODB_BENCH_MAX_THREADS", 8) as usize,
            memory_bytes: env_u64("FLODB_BENCH_MEM_MB", 32) as usize * 1024 * 1024,
            value_bytes: env_u64("FLODB_BENCH_VALUE", 256) as usize,
            disk_bytes_per_sec: env_u64("FLODB_BENCH_DISK_MBPS", 64) * 1024 * 1024,
        }
    }

    /// The paper's thread sweep `[1, 2, 4, 8, 16]`, capped by
    /// `max_threads`.
    pub fn thread_sweep(&self) -> Vec<usize> {
        [1usize, 2, 4, 8, 16, 32, 64, 128]
            .into_iter()
            .filter(|t| *t <= self.max_threads)
            .collect()
    }

    /// A geometric memory-size sweep of `steps` doublings starting at
    /// `memory_bytes`, mirroring the paper's 128 MB → 192 GB progression.
    pub fn memory_sweep(&self, steps: usize) -> Vec<usize> {
        (0..steps).map(|i| self.memory_bytes << i).collect()
    }

    /// A geometric sweep of `steps` doublings starting at
    /// `memory_bytes / div`, for figures whose x-axis must dip *below* the
    /// default size (the paper's memory sweeps start at 128 MB while its
    /// other experiments run at 128 MB — scaled down, the sweep must
    /// bracket the default from below to show the degradation/crossover).
    pub fn memory_sweep_from(&self, div: usize, steps: usize) -> Vec<usize> {
        let base = (self.memory_bytes / div.max(1)).max(1024 * 1024);
        (0..steps).map(|i| base << i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = Scale::from_env();
        assert!(s.dataset > 0);
        assert!(!s.thread_sweep().is_empty());
        assert_eq!(s.memory_sweep(3).len(), 3);
        assert_eq!(s.memory_sweep(3)[1], s.memory_bytes * 2);
    }

    #[test]
    fn thread_sweep_is_capped() {
        let s = Scale {
            dataset: 1,
            cell_time: Duration::from_millis(1),
            max_threads: 4,
            memory_bytes: 1,
            value_bytes: 1,
            disk_bytes_per_sec: 1,
        };
        assert_eq!(s.thread_sweep(), vec![1, 2, 4]);
    }
}
