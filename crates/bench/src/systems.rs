//! Store factory: builds any of the five systems uniformly.

use std::sync::Arc;

use flodb_baselines::{
    BaselineOptions, HyperLevelDbStore, LevelDbStore, MemtableKind, RocksDbClsmStore,
    RocksDbStore,
};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_storage::{DiskOptions, Env, MemEnv, ThrottleConfig};

use crate::scale::Scale;

/// The five evaluated systems (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The paper's contribution.
    FloDb,
    /// LevelDB baseline.
    LevelDb,
    /// HyperLevelDB baseline.
    HyperLevelDb,
    /// RocksDB baseline (skiplist memtable).
    RocksDb,
    /// RocksDB with cLSM features enabled.
    RocksDbClsm,
}

/// Every system, in the paper's legend order.
pub const ALL_SYSTEMS: [SystemKind; 5] = [
    SystemKind::FloDb,
    SystemKind::RocksDb,
    SystemKind::RocksDbClsm,
    SystemKind::HyperLevelDb,
    SystemKind::LevelDb,
];

impl SystemKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FloDb => "FloDB",
            Self::LevelDb => "LevelDB",
            Self::HyperLevelDb => "HyperLevelDB",
            Self::RocksDb => "RocksDB",
            Self::RocksDbClsm => "RocksDB/cLSM",
        }
    }
}

/// Builds a fresh SimDisk env; `throttled` applies the scale's write
/// bandwidth (the paper's persistence bottleneck).
pub fn make_env(scale: &Scale, throttled: bool) -> Arc<dyn Env> {
    let throttle = throttled.then_some(ThrottleConfig {
        write_bytes_per_sec: scale.disk_bytes_per_sec,
        burst_bytes: scale.disk_bytes_per_sec / 8,
    });
    Arc::new(MemEnv::new(throttle))
}

fn disk_options() -> DiskOptions {
    let mut disk = DiskOptions::default();
    disk.compaction.base_level_bytes = 4 * 1024 * 1024;
    disk.compaction.target_file_bytes = 1024 * 1024;
    disk
}

/// Builds a store of `kind` with the given memory-component budget.
pub fn make_store(
    kind: SystemKind,
    memory_bytes: usize,
    env: Arc<dyn Env>,
) -> Arc<dyn KvStore> {
    match kind {
        SystemKind::FloDb => {
            let mut opts = FloDbOptions::default_in_memory();
            opts.memory_bytes = memory_bytes;
            opts.env = env;
            opts.disk = disk_options();
            Arc::new(FloDb::open(opts).expect("flodb open"))
        }
        SystemKind::LevelDb => Arc::new(LevelDbStore::open(baseline_opts(memory_bytes, env))),
        SystemKind::HyperLevelDb => {
            Arc::new(HyperLevelDbStore::open(baseline_opts(memory_bytes, env)))
        }
        SystemKind::RocksDb => Arc::new(RocksDbStore::open(baseline_opts(memory_bytes, env))),
        SystemKind::RocksDbClsm => {
            Arc::new(RocksDbClsmStore::open(baseline_opts(memory_bytes, env)))
        }
    }
}

/// Builds a RocksDB store with an explicit memtable kind (Figures 3-4).
pub fn make_rocksdb_with_memtable(
    memtable: MemtableKind,
    memory_bytes: usize,
    env: Arc<dyn Env>,
) -> Arc<dyn KvStore> {
    let mut opts = baseline_opts(memory_bytes, env);
    opts.memtable = memtable;
    Arc::new(RocksDbStore::open(opts))
}

fn baseline_opts(memory_bytes: usize, env: Arc<dyn Env>) -> BaselineOptions {
    let mut opts = BaselineOptions::default_in_memory();
    opts.memory_bytes = memory_bytes;
    opts.env = env;
    opts.disk = disk_options();
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_and_serve() {
        let scale = Scale::from_env();
        for kind in ALL_SYSTEMS {
            let store = make_store(kind, 1024 * 1024, make_env(&scale, false));
            store.put(b"k", b"v").unwrap();
            assert_eq!(store.get(b"k"), Some(b"v".to_vec()), "{}", kind.name());
            assert_eq!(store.name(), kind.name());
        }
    }
}
