//! The perf-trajectory matrix: WAL pipeline and end-to-end store cells,
//! emitted as `BENCH_pr<N>.json`.
//!
//! Every perf PR is judged against numbers committed to the repo, so the
//! matrix is fixed (workloads × threads × WAL modes) and the output is a
//! stable JSON schema (`flodb-bench-matrix/v1`) that future PRs append
//! to with new files. Two cell families:
//!
//! - **`wal_pipeline`** — multithreaded append throughput through the WAL
//!   layer alone (no store on top): the per-put-mutex pipeline (the
//!   pre-group-commit write path, one record = one frame = one append
//!   under a global mutex) versus the group-commit pipeline
//!   ([`flodb_sync::GroupCommitter`] + [`WalWriter::append_payload`]), on
//!   the in-memory SimDisk and on real files, fsync off and on.
//! - **`store_puts` / `store_mixed` / `store_scan`** — end-to-end
//!   [`FloDb`] operations under each WAL mode, via the workload driver.
//!
//! Run `cargo run --release -p flodb-bench --bin bench_matrix` to emit the
//! file; `--smoke` shrinks the matrix to a seconds-long sanity run and
//! `--check <path>` validates an emitted file against the schema (the CI
//! smoke job does both, so the harness cannot silently rot).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb_core::{FloDb, FloDbOptions, KvStore, ShardedFloDb, ShardedOptions, TelemetryLevel, WalMode};
use flodb_storage::record::encode_record_parts;
use flodb_storage::wal::WalWriter;
use flodb_storage::{Env, FsEnv, MemEnv, Record, StorageError};
use flodb_sync::{GroupCommitConfig, GroupCommitter, SequenceGenerator};
use flodb_workloads::driver::{run_workload, RunReport, WorkloadConfig};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;
use parking_lot::Mutex;

use crate::scale::Scale;

/// One measured cell of the matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell family (`wal_pipeline`, `store_puts`, ...).
    pub bench: &'static str,
    /// WAL mode under test (`off`, `mutex_nosync`, `group_sync`, ...).
    pub wal: &'static str,
    /// Storage environment (`mem` = SimDisk, `fs` = real files).
    pub env: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Operations per second (the headline metric).
    pub ops_per_sec: f64,
    /// Operations completed.
    pub total_ops: u64,
    /// Measured wall-clock seconds.
    pub elapsed_s: f64,
    /// Mean records per commit group (1.0 in per-put modes, 0 when the
    /// WAL is off).
    pub recs_per_group: f64,
    /// Writes acknowledged as group-commit followers (their record rode in
    /// a group another thread committed); 0 in per-put modes or WAL-off.
    pub wal_follower_writes: u64,
    /// WAL segment rotations during the cell (store families only; the
    /// raw `wal_pipeline` family appends to a bare log with no lifecycle).
    pub wal_rotations: u64,
    /// Bytes of WAL segments retired during the cell (store families
    /// only).
    pub wal_retired_bytes: u64,
    /// I/O attempts that failed and were retried by the persist thread
    /// (store families only; 0 in a healthy run — the matrix runs with no
    /// faults armed, so the field exists to make any nonzero count loud).
    pub io_retries: u64,
    /// Persistent background-I/O failures that degraded the store (store
    /// families only; must stay 0 in a benchmark run).
    pub io_degraded: u64,
    /// WAL segment retirements that failed their delete (store families
    /// only; must stay 0 in a benchmark run).
    pub wal_retire_errors: u64,
    /// Shard count of the store under test (1 = unsharded).
    pub shards: usize,
    /// Writes (puts + deletes) absorbed by each shard, indexed by shard —
    /// the imbalance gauge of the `store_sharded` family. Empty for
    /// unsharded cells (and omitted from their JSON).
    pub shard_puts: Vec<u64>,
    /// Engine telemetry level the cell ran under (`off` / `counters` /
    /// `full`). Store families run the engine default (`counters`) except
    /// the `store_telemetry` family, which pins Off vs Full to price the
    /// histograms; `wal_pipeline` has no engine, reported as `off`.
    pub telemetry: &'static str,
    /// Total nanoseconds writers spent stalled on a full memory component
    /// during the cell (store families only; see `StoreStats`).
    pub write_stall_ns: u64,
    /// Total nanoseconds spent in per-append WAL fsync during the cell
    /// (store families only; 0 in the nosync modes the matrix runs).
    pub wal_sync_ns: u64,
    /// Caller-observed latency quantiles per op class, measured by the
    /// workload driver (store families; empty for `wal_pipeline` cells
    /// and omitted from their JSON).
    pub latency: Vec<OpLatency>,
}

/// Caller-observed latency quantiles for one op class of a store cell,
/// from the workload driver's log-linear histograms (≈3% relative error).
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Op class (`read`, `write`, `scan`).
    pub op: &'static str,
    /// Median latency in nanoseconds.
    pub lat_p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub lat_p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub lat_p99_ns: u64,
    /// Maximum observed latency in nanoseconds.
    pub lat_max_ns: u64,
}

/// Extracts the per-op-class quantiles from a driver report, skipping op
/// classes the mix never exercised.
fn latency_from_report(report: &RunReport) -> Vec<OpLatency> {
    let classes = [
        ("read", &report.read_latency),
        ("write", &report.write_latency),
        ("scan", &report.scan_latency),
    ];
    classes
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|&(op, h)| OpLatency {
            op,
            lat_p50_ns: h.percentile_ns(50.0),
            lat_p95_ns: h.percentile_ns(95.0),
            lat_p99_ns: h.percentile_ns(99.0),
            lat_max_ns: h.max_ns(),
        })
        .collect()
}

/// Matrix dimensions; see [`MatrixConfig::full`] and [`MatrixConfig::smoke`].
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Thread counts per cell family.
    pub threads: Vec<usize>,
    /// Measured duration per cell.
    pub cell_time: Duration,
    /// Include the `fs` (real files) pipeline cells and the fsync modes.
    pub with_fs_and_sync: bool,
    /// Include the mixed and scan store families.
    pub with_store_mixes: bool,
    /// Store-cell scale (dataset, value size, memory budget).
    pub scale: Scale,
}

impl MatrixConfig {
    /// The full fixed matrix (what `BENCH_pr*.json` records).
    pub fn full() -> Self {
        Self {
            threads: vec![1, 4, 8],
            cell_time: Duration::from_millis(
                std::env::var("FLODB_BENCH_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1500),
            ),
            with_fs_and_sync: true,
            with_store_mixes: true,
            scale: Scale::from_env(),
        }
    }

    /// A seconds-long sanity matrix for CI.
    pub fn smoke() -> Self {
        Self {
            threads: vec![2],
            cell_time: Duration::from_millis(120),
            with_fs_and_sync: false,
            with_store_mixes: false,
            scale: Scale {
                dataset: 2_000,
                cell_time: Duration::from_millis(120),
                max_threads: 2,
                memory_bytes: 4 * 1024 * 1024,
                value_bytes: 64,
                disk_bytes_per_sec: 64 * 1024 * 1024,
            },
        }
    }
}

fn fs_env_dir(tag: &str) -> String {
    format!(
        "/tmp/flodb-bench-matrix-{}-{tag}",
        std::process::id()
    )
}

/// Raw WAL pipeline cell: `threads` appenders push 8-byte-key /
/// `value_bytes`-value records through the given pipeline for
/// `cell_time`.
fn wal_pipeline_cell(
    env: Arc<dyn Env>,
    env_name: &'static str,
    wal: &'static str,
    group: bool,
    sync: bool,
    threads: usize,
    value_bytes: usize,
    cell_time: Duration,
) -> Cell {
    let writer = Arc::new(Mutex::new(WalWriter::new(
        env.new_writable("matrix.log").expect("wal file"),
        sync,
    )));
    let committer: Arc<Option<GroupCommitter<StorageError>>> = Arc::new(group.then(|| {
        GroupCommitter::new(GroupCommitConfig {
            frame_prefix: flodb_storage::wal::FRAME_HEADER_BYTES,
            ..GroupCommitConfig::default()
        })
    }));
    let seq = Arc::new(SequenceGenerator::starting_at(1));
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let groups = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let writer = Arc::clone(&writer);
        let committer = Arc::clone(&committer);
        let seq = Arc::clone(&seq);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let groups = Arc::clone(&groups);
        handles.push(std::thread::spawn(move || {
            let value = vec![0x5Au8; value_bytes];
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                let key = (t as u64 * (1 << 40) + n).to_be_bytes();
                match committer.as_ref() {
                    Some(gc) => {
                        gc.submit(
                            |buf| {
                                encode_record_parts(buf, &key, seq.next(), Some(&value));
                            },
                            |frame| {
                                groups.fetch_add(1, Ordering::Relaxed);
                                writer.lock().append_group_frame(frame)
                            },
                        )
                        .expect("group append");
                    }
                    None => {
                        let record = Record {
                            key: Box::from(key.as_slice()),
                            seq: seq.next(),
                            value: Some(Box::from(value.as_slice())),
                        };
                        groups.fetch_add(1, Ordering::Relaxed);
                        writer
                            .lock()
                            .append_batch(std::slice::from_ref(&record))
                            .expect("append");
                    }
                }
                n += 1;
            }
            total.fetch_add(n, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(cell_time);
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("appender");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let ops = total.load(Ordering::Relaxed);
    let committed_groups = groups.load(Ordering::Relaxed).max(1);
    Cell {
        bench: "wal_pipeline",
        wal,
        env: env_name,
        threads,
        ops_per_sec: ops as f64 / elapsed,
        total_ops: ops,
        elapsed_s: elapsed,
        recs_per_group: ops as f64 / committed_groups as f64,
        // Every submission either led its group or rode one.
        wal_follower_writes: if group {
            ops.saturating_sub(committed_groups)
        } else {
            0
        },
        wal_rotations: 0,
        wal_retired_bytes: 0,
        io_retries: 0,
        io_degraded: 0,
        wal_retire_errors: 0,
        shards: 1,
        shard_puts: Vec::new(),
        telemetry: "off",
        write_stall_ns: 0,
        wal_sync_ns: 0,
        latency: Vec::new(),
    }
}

/// Applies a store-family WAL mode tag to `opts`.
fn apply_wal_mode(opts: &mut FloDbOptions, wal: &str) {
    match wal {
        "off" => opts.wal = WalMode::Disabled,
        "mutex_nosync" => {
            opts.wal = WalMode::Enabled { sync: false };
            opts.wal_group_commit = false;
        }
        "group_nosync" => {
            opts.wal = WalMode::Enabled { sync: false };
            opts.wal_group_commit = true;
        }
        other => panic!("unknown store wal mode {other}"),
    }
}

/// End-to-end store cell via the workload driver, at the engine's
/// default telemetry level.
fn store_cell(
    bench: &'static str,
    wal: &'static str,
    mix: OperationMix,
    threads: usize,
    cfg: &MatrixConfig,
) -> Cell {
    store_cell_at(bench, wal, mix, threads, cfg, None)
}

/// `store_cell` with the telemetry level pinned (`None` = engine
/// default): the shared body of the default store families and the
/// Off-vs-Full `store_telemetry` overhead pair.
fn store_cell_at(
    bench: &'static str,
    wal: &'static str,
    mix: OperationMix,
    threads: usize,
    cfg: &MatrixConfig,
    level: Option<TelemetryLevel>,
) -> Cell {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = cfg.scale.memory_bytes;
    opts.env = Arc::new(MemEnv::new(None));
    apply_wal_mode(&mut opts, wal);
    if let Some(level) = level {
        opts.telemetry = level;
    }
    let telemetry = opts.telemetry.name();
    let db = Arc::new(FloDb::open(opts).expect("open"));
    let store: Arc<dyn KvStore> = Arc::clone(&db) as Arc<dyn KvStore>;
    let mut wl = WorkloadConfig::new(
        threads,
        mix,
        KeyDistribution::Uniform {
            n: cfg.scale.dataset,
        },
    );
    wl.duration = cfg.cell_time;
    wl.value_bytes = cfg.scale.value_bytes;
    wl.measure_latency = true;
    let report = run_workload(&store, &wl);
    assert_eq!(
        report.write_failures, 0,
        "{bench}/{wal}: store rejected writes mid-benchmark"
    );
    let stats = db.stats();
    let recs_per_group = if stats.wal_groups > 0 {
        stats.wal_group_records as f64 / stats.wal_groups as f64
    } else {
        0.0
    };
    Cell {
        bench,
        wal,
        env: "mem",
        threads,
        ops_per_sec: report.ops_per_sec(),
        total_ops: report.total_ops,
        elapsed_s: report.elapsed.as_secs_f64(),
        recs_per_group,
        wal_follower_writes: stats.wal_follower_writes,
        wal_rotations: stats.wal_rotations,
        wal_retired_bytes: stats.wal_retired_bytes,
        io_retries: stats.io_retries,
        io_degraded: stats.io_degraded,
        wal_retire_errors: stats.wal_retire_errors,
        shards: 1,
        shard_puts: Vec::new(),
        telemetry,
        write_stall_ns: stats.write_stall_ns,
        wal_sync_ns: stats.wal_sync_ns,
        latency: latency_from_report(&report),
    }
}

/// End-to-end sharded store cell: the same mixed workload as
/// `store_mixed`, but through a [`ShardedFloDb`] router over `shards`
/// FloDB instances. The per-shard memory budget divides the scale's
/// total, so `shards = 1` vs `shards = N` compares equal aggregate
/// resources; `shard_puts` records each shard's absorbed writes, making
/// routing imbalance visible right in the committed trajectory file.
fn store_sharded_cell(wal: &'static str, shards: u32, threads: usize, cfg: &MatrixConfig) -> Cell {
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = (cfg.scale.memory_bytes / shards as usize).max(64 * 1024);
    opts.env = Arc::new(MemEnv::new(None));
    apply_wal_mode(&mut opts, wal);
    let telemetry = opts.telemetry.name();
    let db =
        Arc::new(ShardedFloDb::open(ShardedOptions::new(shards, opts)).expect("open sharded"));
    let store: Arc<dyn KvStore> = Arc::clone(&db) as Arc<dyn KvStore>;
    let mut wl = WorkloadConfig::new(
        threads,
        OperationMix::mixed_balanced(),
        KeyDistribution::Uniform {
            n: cfg.scale.dataset,
        },
    );
    wl.duration = cfg.cell_time;
    wl.value_bytes = cfg.scale.value_bytes;
    wl.shards = shards;
    wl.measure_latency = true;
    let report = run_workload(&store, &wl);
    assert_eq!(
        report.write_failures, 0,
        "store_sharded/{wal}: store rejected writes mid-benchmark"
    );
    let stats = db.stats();
    let recs_per_group = if stats.wal_groups > 0 {
        stats.wal_group_records as f64 / stats.wal_groups as f64
    } else {
        0.0
    };
    let shard_puts = db
        .per_shard_stats()
        .iter()
        .map(|s| s.puts + s.deletes)
        .collect();
    Cell {
        bench: "store_sharded",
        wal,
        env: "mem",
        threads,
        ops_per_sec: report.ops_per_sec(),
        total_ops: report.total_ops,
        elapsed_s: report.elapsed.as_secs_f64(),
        recs_per_group,
        wal_follower_writes: stats.wal_follower_writes,
        wal_rotations: stats.wal_rotations,
        wal_retired_bytes: stats.wal_retired_bytes,
        io_retries: stats.io_retries,
        io_degraded: stats.io_degraded,
        wal_retire_errors: stats.wal_retire_errors,
        shards: shards as usize,
        shard_puts,
        telemetry,
        write_stall_ns: stats.write_stall_ns,
        wal_sync_ns: stats.wal_sync_ns,
        latency: latency_from_report(&report),
    }
}

/// Runs the whole matrix.
pub fn run_matrix(cfg: &MatrixConfig) -> Vec<Cell> {
    let mut cells = Vec::new();

    // WAL pipeline family.
    let mut pipeline_modes: Vec<(&'static str, bool, bool)> = vec![
        ("mutex_nosync", false, false),
        ("group_nosync", true, false),
    ];
    if cfg.with_fs_and_sync {
        pipeline_modes.push(("mutex_sync", false, true));
        pipeline_modes.push(("group_sync", true, true));
    }
    for &(wal, group, sync) in &pipeline_modes {
        for &threads in &cfg.threads {
            cells.push(wal_pipeline_cell(
                Arc::new(MemEnv::new(None)),
                "mem",
                wal,
                group,
                sync,
                threads,
                cfg.scale.value_bytes,
                cfg.cell_time,
            ));
            if cfg.with_fs_and_sync {
                let dir = fs_env_dir(&format!("{wal}-{threads}"));
                let _ = std::fs::remove_dir_all(&dir);
                cells.push(wal_pipeline_cell(
                    Arc::new(FsEnv::new(&dir).expect("fs env")),
                    "fs",
                    wal,
                    group,
                    sync,
                    threads,
                    cfg.scale.value_bytes,
                    cfg.cell_time,
                ));
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    // End-to-end store families.
    let store_wals: [&'static str; 3] = ["off", "mutex_nosync", "group_nosync"];
    for &wal in &store_wals {
        for &threads in &cfg.threads {
            cells.push(store_cell(
                "store_puts",
                wal,
                OperationMix::write_only(),
                threads,
                cfg,
            ));
        }
    }
    if cfg.with_store_mixes {
        for &wal in &store_wals {
            for &threads in &cfg.threads {
                cells.push(store_cell(
                    "store_mixed",
                    wal,
                    OperationMix::mixed_balanced(),
                    threads,
                    cfg,
                ));
            }
            cells.push(store_cell(
                "store_scan",
                wal,
                OperationMix::scan_write(0.05),
                cfg.threads.last().copied().unwrap_or(1),
                cfg,
            ));
        }
    }

    // Sharded router family: the mixed workload through a ShardedFloDb at
    // N=1 (router overhead over a plain store) and N=4 (the multi-core
    // layout on a sliced memory budget), same aggregate resources.
    for &shards in &[1u32, 4] {
        for &threads in &cfg.threads {
            cells.push(store_sharded_cell("group_nosync", shards, threads, cfg));
        }
    }

    // Telemetry overhead family: the write-heavy store cell under the
    // group-commit WAL with the engine's telemetry pinned Off vs Full.
    // The committed pair is the acceptance bound for the in-engine
    // histograms (Full within 5% of Off on write-heavy cells). Each
    // Off/Full pair runs back-to-back (threads outer, level inner) so
    // host-load drift over the minutes a matrix takes lands inside a
    // pair as little as possible rather than between the two halves of
    // the comparison.
    for &threads in &cfg.threads {
        for &level in &[TelemetryLevel::Off, TelemetryLevel::Full] {
            cells.push(store_cell_at(
                "store_telemetry",
                "group_nosync",
                OperationMix::write_only(),
                threads,
                cfg,
                Some(level),
            ));
        }
    }
    cells
}

/// Runs the matrix `repeat` times and keeps, per cell, the run with the
/// highest throughput. Best-of-N: cell comparisons on a shared/throttled
/// host are dominated by interference noise (identical configurations
/// measured minutes apart can differ by tens of percent), and the best
/// run is the least-interfered measurement of the same fixed work.
pub fn run_matrix_best_of(cfg: &MatrixConfig, repeat: usize) -> Vec<Cell> {
    let mut best = run_matrix(cfg);
    for _ in 1..repeat.max(1) {
        // Cell order is deterministic, so runs zip index-by-index.
        for (seen, fresh) in best.iter_mut().zip(run_matrix(cfg)) {
            debug_assert_eq!(
                (seen.bench, seen.wal, seen.env, seen.threads, seen.shards, seen.telemetry),
                (fresh.bench, fresh.wal, fresh.env, fresh.threads, fresh.shards, fresh.telemetry)
            );
            if fresh.ops_per_sec > seen.ops_per_sec {
                *seen = fresh;
            }
        }
    }
    best
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes cells (plus provenance metadata) to the
/// `flodb-bench-matrix/v1` JSON document.
pub fn to_json(cells: &[Cell], note: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"flodb-bench-matrix/v1\",\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"cpus\": {}}},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    out.push_str(&format!("  \"note\": \"{}\",\n", json_escape(note)));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let shard_puts = if c.shard_puts.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = c.shard_puts.iter().map(u64::to_string).collect();
            format!(", \"shard_puts\": [{}]", entries.join(", "))
        };
        let latency = if c.latency.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = c
                .latency
                .iter()
                .map(|l| {
                    format!(
                        "{{\"op\": \"{}\", \"lat_p50_ns\": {}, \"lat_p95_ns\": {}, \
                         \"lat_p99_ns\": {}, \"lat_max_ns\": {}}}",
                        l.op, l.lat_p50_ns, l.lat_p95_ns, l.lat_p99_ns, l.lat_max_ns
                    )
                })
                .collect();
            format!(", \"latency\": [{}]", entries.join(", "))
        };
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"wal\": \"{}\", \"env\": \"{}\", \"threads\": {}, \
             \"shards\": {}, \"ops_per_sec\": {:.0}, \"total_ops\": {}, \"elapsed_s\": {:.3}, \
             \"recs_per_group\": {:.2}, \"wal_follower_writes\": {}, \
             \"wal_rotations\": {}, \"wal_retired_bytes\": {}, \
             \"io_retries\": {}, \"io_degraded\": {}, \"wal_retire_errors\": {}, \
             \"telemetry\": \"{}\", \"write_stall_ns\": {}, \"wal_sync_ns\": {}{}{}}}{}\n",
            c.bench,
            c.wal,
            c.env,
            c.threads,
            c.shards,
            c.ops_per_sec,
            c.total_ops,
            c.elapsed_s,
            c.recs_per_group,
            c.wal_follower_writes,
            c.wal_rotations,
            c.wal_retired_bytes,
            c.io_retries,
            c.io_degraded,
            c.wal_retire_errors,
            c.telemetry,
            c.write_stall_ns,
            c.wal_sync_ns,
            shard_puts,
            latency,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of an emitted matrix document: syntactically
/// valid JSON, correct schema tag, non-empty `cells`, every cell carrying
/// the required numeric fields. Used by the CI smoke step (`--check`) and
/// the unit tests, so the emitter cannot drift from the schema silently.
pub fn validate_matrix_json(text: &str) -> Result<(), String> {
    let value = json::parse(text)?;
    let json::Value::Object(top) = &value else {
        return Err("top level must be an object".into());
    };
    match top.iter().find(|(k, _)| k == "schema") {
        Some((_, json::Value::String(s))) if s == "flodb-bench-matrix/v1" => {}
        other => return Err(format!("bad schema tag: {other:?}")),
    }
    let Some((_, json::Value::Array(cells))) = top.iter().find(|(k, _)| k == "cells") else {
        return Err("missing cells array".into());
    };
    if cells.is_empty() {
        return Err("cells array is empty".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let json::Value::Object(fields) = cell else {
            return Err(format!("cell {i} is not an object"));
        };
        for required in ["bench", "wal", "env"] {
            match fields.iter().find(|(k, _)| k == required) {
                Some((_, json::Value::String(_))) => {}
                other => return Err(format!("cell {i}: bad {required}: {other:?}")),
            }
        }
        for required in ["threads", "ops_per_sec", "total_ops", "elapsed_s"] {
            match fields.iter().find(|(k, _)| k == required) {
                Some((_, json::Value::Number(n))) if *n >= 0.0 => {}
                other => return Err(format!("cell {i}: bad {required}: {other:?}")),
            }
        }
        // Sharded cells additionally carry the shard layout and a
        // per-shard write breakdown sized to it. Pre-sharding documents
        // (PR 3 / PR 5) have neither field and stay valid.
        let is_sharded = matches!(
            fields.iter().find(|(k, _)| k == "bench"),
            Some((_, json::Value::String(s))) if s == "store_sharded"
        );
        let shards = match fields.iter().find(|(k, _)| k == "shards") {
            Some((_, json::Value::Number(n))) if *n >= 1.0 => Some(*n as usize),
            Some(other) => return Err(format!("cell {i}: bad shards: {other:?}")),
            None if is_sharded => return Err(format!("cell {i}: store_sharded without shards")),
            None => None,
        };
        match fields.iter().find(|(k, _)| k == "shard_puts") {
            Some((_, json::Value::Array(puts))) => {
                let Some(shards) = shards else {
                    return Err(format!("cell {i}: shard_puts without shards"));
                };
                if puts.len() != shards {
                    return Err(format!(
                        "cell {i}: shard_puts has {} entries for {shards} shards",
                        puts.len()
                    ));
                }
                if !puts.iter().all(|p| matches!(p, json::Value::Number(n) if *n >= 0.0)) {
                    return Err(format!("cell {i}: non-numeric shard_puts entry"));
                }
            }
            Some((_, other)) => return Err(format!("cell {i}: bad shard_puts: {other:?}")),
            None if is_sharded => {
                return Err(format!("cell {i}: store_sharded without shard_puts"))
            }
            None => {}
        }
        // Telemetry fields (PR 10): all optional — pre-telemetry
        // documents carry none — but shape-checked when present.
        match fields.iter().find(|(k, _)| k == "telemetry") {
            Some((_, json::Value::String(s)))
                if matches!(s.as_str(), "off" | "counters" | "full") => {}
            Some((_, other)) => return Err(format!("cell {i}: bad telemetry: {other:?}")),
            None => {}
        }
        for optional in ["write_stall_ns", "wal_sync_ns"] {
            match fields.iter().find(|(k, _)| k == optional) {
                Some((_, json::Value::Number(n))) if *n >= 0.0 => {}
                Some((_, other)) => return Err(format!("cell {i}: bad {optional}: {other:?}")),
                None => {}
            }
        }
        match fields.iter().find(|(k, _)| k == "latency") {
            Some((_, json::Value::Array(entries))) => {
                for entry in entries {
                    let json::Value::Object(lat) = entry else {
                        return Err(format!("cell {i}: latency entry is not an object"));
                    };
                    match lat.iter().find(|(k, _)| k == "op") {
                        Some((_, json::Value::String(_))) => {}
                        other => return Err(format!("cell {i}: bad latency op: {other:?}")),
                    }
                    for q in ["lat_p50_ns", "lat_p95_ns", "lat_p99_ns", "lat_max_ns"] {
                        match lat.iter().find(|(k, _)| k == q) {
                            Some((_, json::Value::Number(n))) if *n >= 0.0 => {}
                            other => return Err(format!("cell {i}: bad {q}: {other:?}")),
                        }
                    }
                }
            }
            Some((_, other)) => return Err(format!("cell {i}: bad latency: {other:?}")),
            None => {}
        }
    }
    Ok(())
}

/// A minimal JSON parser — just enough structure to validate the matrix
/// document without external dependencies (the container has no serde).
mod json {
    /// A parsed JSON value (numbers as `f64`, objects as ordered pairs).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string (escapes decoded except `\u`, kept verbatim).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, insertion-ordered.
        Object(Vec<(String, Value)>),
    }

    /// Parses `text` as a single JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", ch as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(&c) => {
                            out.push('\\');
                            out.push(c as char);
                        }
                        None => return Err("unterminated escape".into()),
                    }
                    *pos += 1;
                }
                Some(&c) if c >= 0x20 => {
                    out.push(c as char);
                    *pos += 1;
                }
                Some(&c) => {
                    return Err(format!(
                        "raw control character 0x{c:02x} in string at byte {pos}"
                    ))
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_emits_valid_schema() {
        let mut cfg = MatrixConfig::smoke();
        cfg.cell_time = Duration::from_millis(30);
        cfg.threads = vec![1];
        let cells = run_matrix(&cfg);
        assert!(cells.len() >= 4, "smoke matrix too small: {}", cells.len());
        assert!(cells.iter().all(|c| c.total_ops > 0));
        let doc = to_json(&cells, "unit-test run");
        validate_matrix_json(&doc).expect("emitted document must validate");
        // The WAL-lifecycle counters ride along in every cell (the
        // validator keeps them optional so pre-PR5 documents stay valid).
        assert!(doc.contains("\"wal_rotations\""));
        assert!(doc.contains("\"wal_retired_bytes\""));
        // Resilience counters ride along too (also optional for the
        // validator — pre-PR8 documents have none), and a benchmark run
        // with no faults armed must report a clean bill of health.
        assert!(doc.contains("\"io_retries\""));
        assert!(doc.contains("\"wal_retire_errors\""));
        for c in &cells {
            assert_eq!(c.io_degraded, 0, "{}: store degraded mid-benchmark", c.bench);
            assert_eq!(c.wal_retire_errors, 0, "{}: retire errors", c.bench);
        }
        // The sharded family runs even in smoke mode, and its cells carry
        // the per-shard breakdown the validator enforces.
        assert!(doc.contains("\"shards\""));
        let sharded: Vec<&Cell> = cells.iter().filter(|c| c.bench == "store_sharded").collect();
        assert!(sharded.iter().any(|c| c.shards == 1));
        assert!(sharded.iter().any(|c| c.shards == 4));
        for cell in sharded {
            assert_eq!(cell.shard_puts.len(), cell.shards);
            assert!(cell.shard_puts.iter().sum::<u64>() > 0);
        }
        // Telemetry fields (PR 10): store cells measure caller latency,
        // and the Off-vs-Full overhead pair runs even in smoke mode.
        assert!(doc.contains("\"telemetry\""));
        assert!(doc.contains("\"wal_sync_ns\""));
        assert!(doc.contains("\"lat_p99_ns\""));
        let tele: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.bench == "store_telemetry")
            .collect();
        assert!(tele.iter().any(|c| c.telemetry == "off"));
        assert!(tele.iter().any(|c| c.telemetry == "full"));
        for cell in cells.iter().filter(|c| c.bench.starts_with("store")) {
            assert!(
                cell.latency.iter().any(|l| l.op == "write"),
                "{}: no write latency measured",
                cell.bench
            );
            for l in &cell.latency {
                assert!(l.lat_p50_ns <= l.lat_max_ns);
                assert!(l.lat_p99_ns <= l.lat_max_ns);
            }
        }
    }

    #[test]
    fn validator_enforces_sharded_cell_shape() {
        let base = "{\"bench\": \"store_sharded\", \"wal\": \"off\", \"env\": \"mem\", \
                    \"threads\": 1, \"ops_per_sec\": 10.0, \"total_ops\": 5, \
                    \"elapsed_s\": 0.5";
        let doc = |cell: String| {
            format!("{{\"schema\": \"flodb-bench-matrix/v1\", \"cells\": [{cell}]}}")
        };
        // Well-formed sharded cell passes.
        validate_matrix_json(&doc(format!(
            "{base}, \"shards\": 2, \"shard_puts\": [3, 2]}}"
        )))
        .unwrap();
        // store_sharded without the layout fields is rejected.
        assert!(validate_matrix_json(&doc(format!("{base}}}"))).is_err());
        assert!(validate_matrix_json(&doc(format!("{base}, \"shards\": 2}}"))).is_err());
        // Breakdown length must match the shard count, entries numeric.
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"shards\": 2, \"shard_puts\": [3]}}"
        )))
        .is_err());
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"shards\": 2, \"shard_puts\": [3, \"x\"]}}"
        )))
        .is_err());
        // shard_puts on a non-sharded cell needs a shards field too.
        assert!(validate_matrix_json(&doc(
            "{\"bench\": \"b\", \"wal\": \"off\", \"env\": \"mem\", \"threads\": 1, \
             \"ops_per_sec\": 10.0, \"total_ops\": 5, \"elapsed_s\": 0.5, \
             \"shard_puts\": [1]}"
                .to_string()
        ))
        .is_err());
    }

    #[test]
    fn validator_enforces_telemetry_shapes() {
        let base = "{\"bench\": \"store_puts\", \"wal\": \"off\", \"env\": \"mem\", \
                    \"threads\": 1, \"ops_per_sec\": 10.0, \"total_ops\": 5, \
                    \"elapsed_s\": 0.5";
        let doc = |cell: String| {
            format!("{{\"schema\": \"flodb-bench-matrix/v1\", \"cells\": [{cell}]}}")
        };
        // All telemetry fields are optional (old documents stay valid)...
        validate_matrix_json(&doc(format!("{base}}}"))).unwrap();
        // ...and well-formed when present.
        validate_matrix_json(&doc(format!(
            "{base}, \"telemetry\": \"full\", \"write_stall_ns\": 12, \"wal_sync_ns\": 0, \
             \"latency\": [{{\"op\": \"write\", \"lat_p50_ns\": 100, \"lat_p95_ns\": 200, \
             \"lat_p99_ns\": 300, \"lat_max_ns\": 400}}]}}"
        )))
        .unwrap();
        // Unknown level, non-numeric durations, and malformed latency
        // entries are rejected.
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"telemetry\": \"verbose\"}}"
        )))
        .is_err());
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"write_stall_ns\": \"many\"}}"
        )))
        .is_err());
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"latency\": [{{\"op\": \"write\", \"lat_p50_ns\": 100}}]}}"
        )))
        .is_err());
        assert!(validate_matrix_json(&doc(format!(
            "{base}, \"latency\": [{{\"lat_p50_ns\": 1, \"lat_p95_ns\": 2, \
             \"lat_p99_ns\": 3, \"lat_max_ns\": 4}}]}}"
        )))
        .is_err());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_matrix_json("").is_err());
        assert!(validate_matrix_json("{}").is_err());
        assert!(validate_matrix_json("{\"schema\": \"flodb-bench-matrix/v1\"}").is_err());
        assert!(validate_matrix_json(
            "{\"schema\": \"flodb-bench-matrix/v1\", \"cells\": []}"
        )
        .is_err());
        assert!(validate_matrix_json(
            "{\"schema\": \"flodb-bench-matrix/v1\", \"cells\": [{\"bench\": \"x\"}]}"
        )
        .is_err());
        // Unbalanced / trailing garbage.
        assert!(validate_matrix_json("{\"a\": 1} junk").is_err());
        // Raw control characters inside strings are not JSON.
        assert!(validate_matrix_json("{\"schema\": \"a\nb\"}").is_err());
    }

    #[test]
    fn notes_with_control_characters_stay_valid_json() {
        let doc = to_json(&[], "line one\nline two\ttabbed \"quoted\" \\ \u{1}");
        // Escaping must keep the document parseable (empty cells then
        // fails the semantic check, which is fine — syntax must hold).
        assert_eq!(
            validate_matrix_json(&doc).unwrap_err(),
            "cells array is empty"
        );
    }

    #[test]
    fn validator_accepts_minimal_document() {
        let doc = "{\"schema\": \"flodb-bench-matrix/v1\", \"cells\": [\
                   {\"bench\": \"b\", \"wal\": \"off\", \"env\": \"mem\", \
                    \"threads\": 1, \"ops_per_sec\": 10.0, \"total_ops\": 5, \
                    \"elapsed_s\": 0.5}]}";
        validate_matrix_json(doc).unwrap();
    }

    #[test]
    fn group_pipeline_cell_batches_under_contention() {
        let cell = wal_pipeline_cell(
            Arc::new(MemEnv::new(None)),
            "mem",
            "group_nosync",
            true,
            false,
            2,
            64,
            Duration::from_millis(50),
        );
        assert!(cell.total_ops > 0);
        assert!(cell.recs_per_group >= 1.0);
    }
}
