//! Shared experiment runners used by the figure benches.

use std::sync::Arc;

use flodb_core::KvStore;
use flodb_workloads::{
    driver::{run_workload, RunReport, WorkloadConfig},
    init,
    keys::KeyDistribution,
    mix::OperationMix,
};

use crate::scale::Scale;
use crate::systems::{make_env, make_store, SystemKind};
use crate::table::{mops, Table};

/// How the database is initialized before measuring (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitKind {
    /// Fresh, empty store (write-only experiments).
    Fresh,
    /// Half the dataset inserted in random order (mixed workloads).
    RandomHalf,
    /// Half the dataset inserted in sorted order (read-only workloads).
    SequentialHalf,
}

/// Initializes `store` according to `kind` and waits for background work.
pub fn init_store(store: &Arc<dyn KvStore>, kind: InitKind, scale: &Scale) {
    match kind {
        InitKind::Fresh => {}
        InitKind::RandomHalf => {
            init::fill_random(store.as_ref(), scale.dataset, scale.value_bytes);
            store.quiesce();
        }
        InitKind::SequentialHalf => {
            init::fill_sequential(store.as_ref(), scale.dataset, scale.value_bytes);
            store.quiesce();
        }
    }
}

/// Runs one measured cell.
pub fn run_cell(
    store: &Arc<dyn KvStore>,
    threads: usize,
    mix: OperationMix,
    keys: KeyDistribution,
    scale: &Scale,
    single_writer: bool,
) -> RunReport {
    let mut cfg = WorkloadConfig::new(threads, mix, keys);
    cfg.duration = scale.cell_time;
    cfg.value_bytes = scale.value_bytes;
    cfg.single_writer = single_writer;
    run_workload(store, &cfg)
}

/// The standard figure shape: thread sweep (rows) × systems (columns),
/// reporting Mops/s. `metric_keys` switches the metric to keys/s
/// (Figure 13).
#[allow(clippy::too_many_arguments)]
pub fn thread_sweep_figure(
    title: &str,
    systems: &[SystemKind],
    mix: OperationMix,
    init_kind: InitKind,
    throttled: bool,
    single_writer: bool,
    metric_keys: bool,
    scale: &Scale,
) -> Table {
    let mut header = vec!["threads".to_string()];
    header.extend(systems.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let keys = KeyDistribution::Uniform { n: scale.dataset };
    for threads in scale.thread_sweep() {
        let mut row = vec![threads.to_string()];
        for kind in systems {
            let env = make_env(scale, throttled);
            let store = make_store(*kind, scale.memory_bytes, env);
            init_store(&store, init_kind, scale);
            let report = run_cell(&store, threads, mix, keys, scale, single_writer);
            let metric = if metric_keys {
                report.keys_per_sec()
            } else {
                report.ops_per_sec()
            };
            row.push(mops(metric));
        }
        table.row(row);
    }
    table.print(title);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_against_flodb() {
        let scale = Scale {
            dataset: 1000,
            cell_time: std::time::Duration::from_millis(50),
            max_threads: 2,
            memory_bytes: 1024 * 1024,
            value_bytes: 64,
            disk_bytes_per_sec: 64 * 1024 * 1024,
        };
        let store = make_store(SystemKind::FloDb, scale.memory_bytes, make_env(&scale, false));
        init_store(&store, InitKind::RandomHalf, &scale);
        let report = run_cell(
            &store,
            2,
            OperationMix::mixed_balanced(),
            KeyDistribution::Uniform { n: 1000 },
            &scale,
            false,
        );
        assert!(report.total_ops > 0);
    }
}
