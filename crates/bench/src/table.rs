//! Aligned-table printing for figure outputs.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a figure title.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

/// Formats a throughput as Mops/s with 3 decimals.
pub fn mops(ops_per_sec: f64) -> String {
    format!("{:.3}", ops_per_sec / 1e6)
}

/// Formats a byte count in human units.
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 * 1024 {
        format!("{}GB", bytes / (1024 * 1024 * 1024))
    } else if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / (1024 * 1024))
    } else {
        format!("{}KB", bytes / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["sys", "ops"]);
        t.row(vec!["FloDB".into(), "1.234".into()]);
        t.row(vec!["LevelDB".into(), "0.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sys"));
        assert!(lines[2].contains("FloDB"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(2048), "2KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3MB");
        assert_eq!(human_bytes(2 * 1024 * 1024 * 1024), "2GB");
    }
}
