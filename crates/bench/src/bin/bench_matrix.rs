//! Emits the fixed write/read/scan × threads × WAL-mode matrix as a
//! `flodb-bench-matrix/v1` JSON document (the repo's perf trajectory).
//!
//! ```text
//! bench_matrix [--smoke] [--repeat N] [--out PATH] [--check PATH] [--note TEXT]
//! ```
//!
//! - default: run the full matrix and write `BENCH.json` (override with
//!   `--out`); cell duration honors `FLODB_BENCH_MS`.
//! - `--smoke`: a seconds-long tiny matrix (CI sanity).
//! - `--repeat N`: run the matrix N times and keep each cell's best run
//!   (noise suppression on shared hosts; use for committed trajectories).
//! - `--check PATH`: validate an existing document against the schema and
//!   exit non-zero on violation (no benchmarks run).

use flodb_bench::report::{run_matrix_best_of, to_json, validate_matrix_json, MatrixConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH.json");
    let mut check: Option<String> = None;
    let mut note = String::new();
    let mut repeat = 1usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path"),
            "--check" => check = Some(it.next().expect("--check needs a path")),
            "--note" => note = it.next().expect("--note needs text"),
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat needs a count")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_matrix_json(&text) {
            Ok(()) => {
                println!("{path}: valid flodb-bench-matrix/v1 document");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    let cfg = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    eprintln!(
        "running {} matrix ({} thread sweeps, {:?} per cell, best of {repeat})...",
        if smoke { "smoke" } else { "full" },
        cfg.threads.len(),
        cfg.cell_time
    );
    let cells = run_matrix_best_of(&cfg, repeat);
    for c in &cells {
        eprintln!(
            "  {:<12} {:<14} env={:<3} t={} {:>12.0} ops/s (recs/group {:.1}, followers {}, \
             rotations {}, retired {} B)",
            c.bench, c.wal, c.env, c.threads, c.ops_per_sec, c.recs_per_group,
            c.wal_follower_writes, c.wal_rotations, c.wal_retired_bytes
        );
    }
    let doc = to_json(&cells, &note);
    validate_matrix_json(&doc).expect("emitted document failed self-validation");
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out} ({} cells)", cells.len());
}
