//! Diagnostic repro for scan snapshot tearing (not a benchmark).
//!
//! One writer sweeps keys 0..N in rounds; scanners assert each snapshot is
//! a prefix cut of the writer's history. Command-line flags isolate
//! subsystems: `--no-membuffer`, `--no-persist`, `--drains N`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flodb_core::{FloDb, FloDbOptions, KvStore};

const KEYS: u64 = 64;

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = FloDbOptions::small_for_tests();
    if args.iter().any(|a| a == "--no-membuffer") {
        opts.membuffer_enabled = false;
        opts.drain_threads = 0;
    }
    if args.iter().any(|a| a == "--no-persist") {
        opts.persist_enabled = false;
    }
    if let Some(i) = args.iter().position(|a| a == "--drains") {
        opts.drain_threads = args[i + 1].parse().unwrap();
    }
    if args.iter().any(|a| a == "--no-piggyback") {
        opts.piggyback_chain_limit = 0;
    }
    let secs: u64 = args
        .iter()
        .position(|a| a == "--secs")
        .map(|i| args[i + 1].parse().unwrap())
        .unwrap_or(10);

    let db = Arc::new(FloDb::open(opts).unwrap());
    for i in 0..KEYS {
        db.put(&key(i), &0u64.to_le_bytes()).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..KEYS {
                    db.put(&key(i), &round.to_le_bytes()).unwrap();
                }
                round += 1;
            }
        })
    };

    let mut scanners = Vec::new();
    let torn = Arc::new(AtomicBool::new(false));
    for s in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let torn = Arc::clone(&torn);
        scanners.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) && !torn.load(Ordering::Relaxed) {
                let out = db.scan(&key(0), &key(KEYS - 1));
                let rounds: Vec<u64> = out
                    .iter()
                    .map(|(_, v)| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                    .collect();
                checked += 1;
                if rounds.len() != KEYS as usize {
                    println!("scanner {s}: MISSING KEYS: {} of {KEYS}", rounds.len());
                    torn.store(true, Ordering::Relaxed);
                    break;
                }
                let max = *rounds.iter().max().unwrap();
                let min = *rounds.iter().min().unwrap();
                let mut bad = max - min > 1;
                let mut dropped = false;
                for &r in &rounds {
                    if dropped && r != min {
                        bad = true;
                    } else if r == min && max != min {
                        dropped = true;
                    }
                }
                if bad {
                    println!("scanner {s}: TORN after {checked} scans: {rounds:?}");
                    let st = db.stats();
                    println!(
                        "  stats: scans={} restarts={} fallbacks={} fast={} slow-ish={}",
                        st.scans,
                        st.scan_restarts,
                        st.fallback_scans,
                        st.fast_level_writes,
                        st.puts - st.fast_level_writes,
                    );
                    torn.store(true, Ordering::Relaxed);
                    break;
                }
            }
            checked
        }));
    }

    let start = std::time::Instant::now();
    while start.elapsed() < Duration::from_secs(secs) && !torn.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let total: u64 = scanners.into_iter().map(|s| s.join().unwrap()).sum();
    if torn.load(Ordering::Relaxed) {
        println!("RESULT: TORN (after {total} scans)");
        std::process::exit(1);
    }
    println!("RESULT: CLEAN ({total} scans)");
}
