//! Diagnostic: sustained write-only throughput accounting for FloDB and
//! one baseline — where does the persistence-bound pipeline lose time?

use std::sync::Arc;
use std::time::{Duration, Instant};

use flodb_baselines::{BaselineOptions, HyperLevelDbStore};
use flodb_bench::{make_env, Scale};
use flodb_core::{FloDb, FloDbOptions, KvStore};
use flodb_workloads::driver::{run_workload, WorkloadConfig};
use flodb_workloads::keys::KeyDistribution;
use flodb_workloads::mix::OperationMix;

fn main() {
    let scale = Scale::from_env();
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let secs: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    // --- FloDB -------------------------------------------------------------
    let env = make_env(&scale, true);
    let mut opts = FloDbOptions::default_in_memory();
    opts.memory_bytes = scale.memory_bytes;
    opts.env = Arc::clone(&env);
    let db = Arc::new(FloDb::open(opts).unwrap());
    let store: Arc<dyn KvStore> = Arc::clone(&db) as Arc<dyn KvStore>;

    let mut cfg = WorkloadConfig::new(
        threads,
        OperationMix::write_only(),
        KeyDistribution::Uniform { n: scale.dataset },
    );
    cfg.duration = Duration::from_secs(secs);
    cfg.value_bytes = scale.value_bytes;
    let t0 = Instant::now();
    let report = run_workload(&store, &cfg);
    let elapsed = t0.elapsed().as_secs_f64();

    let s = db.flodb_stats();
    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    let disk = db.disk_stats();
    println!("=== FloDB ({threads} threads, {secs}s, mem {} MB, disk {} MB/s) ===",
        scale.memory_bytes / 1024 / 1024, scale.disk_bytes_per_sec / 1024 / 1024);
    println!("ops/s             {:>12.0}", report.total_ops as f64 / elapsed);
    println!("puts+deletes      {:>12}", load(&s.puts) + load(&s.deletes));
    println!("fast path         {:>12} ({:.1}%)", load(&s.membuffer_writes),
        100.0 * load(&s.membuffer_writes) as f64 / (load(&s.puts) + load(&s.deletes)) as f64);
    println!("memtable writes   {:>12}", load(&s.memtable_writes));
    println!("write stalls      {:>12}", load(&s.write_stalls));
    println!("drained entries   {:>12}", load(&s.drained_entries));
    println!("drain batches     {:>12}", load(&s.drain_batches));
    println!("persists          {:>12}", load(&s.persists));
    println!("env bytes written {:>12} ({:.1} MB/s)", disk.env_bytes_written,
        disk.env_bytes_written as f64 / elapsed / 1024.0 / 1024.0);
    println!("bytes per op      {:>12.0}", disk.env_bytes_written as f64 / report.total_ops as f64);

    // --- HyperLevelDB (best-performing baseline) ---------------------------
    let env = make_env(&scale, true);
    let mut opts = BaselineOptions::default_in_memory();
    opts.memory_bytes = scale.memory_bytes;
    opts.env = Arc::clone(&env);
    let store: Arc<dyn KvStore> = Arc::new(HyperLevelDbStore::open(opts));
    let t0 = Instant::now();
    let report = run_workload(&store, &cfg);
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = store.stats();
    println!("\n=== HyperLevelDB ({threads} threads, {secs}s) ===");
    println!("ops/s             {:>12.0}", report.total_ops as f64 / elapsed);
    println!("persists          {:>12}", stats.persists);
}
